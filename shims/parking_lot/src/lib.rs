//! Offline shim for `parking_lot`: non-poisoning lock wrappers over
//! `std::sync`. See `shims/README.md`.
//!
//! Like the real crate, `lock()` returns the guard directly (no
//! `Result`); a poisoned std lock is recovered transparently, matching
//! parking_lot's no-poisoning semantics.

use std::sync;

/// Mutual exclusion primitive (non-poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock (non-poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified; the guard is reacquired before returning.
    /// parking_lot mutates the guard in place rather than returning it.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety-free re-implementation over std: temporarily move the
        // guard out and back in.
        replace_with(guard, |g| {
            self.inner
                .wait(g)
                .unwrap_or_else(sync::PoisonError::into_inner)
        });
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Moves out of `slot`, applies `f`, and moves the result back.
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    // A panic inside `f` would leave `slot` logically uninitialized; abort
    // in that case by re-entering the unwinding path via a bomb guard.
    struct Bomb;
    impl Drop for Bomb {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = Bomb;
    // SAFETY-free version: use Option dance via ptr-less std::mem swaps is
    // impossible for !Default T; rely on catch_unwind-free discipline:
    // std Condvar::wait only panics on poison, which we map away.
    let value = unsafe { std::ptr::read(slot) };
    let new = f(value);
    unsafe { std::ptr::write(slot, new) };
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
