//! Value-generation strategies for the proptest shim.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree: `generate` draws a
/// sample directly and failures are not shrunk.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy (used by `prop_oneof!` so arm types unify).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Weighted union over strategies of a common value type; built by
/// `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Union over `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (weight, strat) in &self.arms {
            let w = u64::from(*weight);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait ArbitraryPrim {
    /// Draws an unconstrained sample.
    fn sample(rng: &mut TestRng) -> Self;
}

impl ArbitraryPrim for bool {
    fn sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arb_int {
    ($($t:ty),*) => {$(
        impl ArbitraryPrim for $t {
            fn sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryPrim for f64 {
    fn sample(rng: &mut TestRng) -> f64 {
        // Finite values only, spread over a wide magnitude range.
        let mag = rng.next_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag)
    }
}

/// Canonical strategy of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: ArbitraryPrim>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryPrim> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy {:?}", self);
                let span = (hi - lo) as u128;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(hi >= lo, "empty range strategy {:?}", self);
                let span = (hi - lo) as u128 + 1;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy {:?}", self);
                let unit = rng.next_f64() as $t;
                let v = self.start + unit * (self.end - self.start);
                // f64 rounding can land exactly on `end`; stay inside.
                if v >= self.end { self.start } else { v }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(hi >= lo, "empty range strategy {:?}", self);
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

// ---------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------

/// `&str` patterns act as string strategies over a regex subset:
/// literals, `.`, `\PC` (printable, i.e. not category C), `\d`, char
/// classes `[a-z0-9\-\.]`, and quantifiers `*`, `+`, `?`, `{n}`,
/// `{n,m}`. Unbounded quantifiers draw up to 32 repeats.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    Literal(char),
    /// `.` — any char except newline (sampled from printables).
    Dot,
    /// `\PC` — any non-control char.
    Printable,
    /// `\d`
    Digit,
    /// `[...]` — ranges and singletons.
    Class(Vec<(char, char)>),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    let cat = chars
                        .next()
                        .expect("proptest shim: \\P needs a category letter");
                    assert!(
                        cat == 'C',
                        "proptest shim: only \\PC is supported, got \\P{cat}"
                    );
                    Atom::Printable
                }
                Some('d') => Atom::Digit,
                Some(esc) => Atom::Literal(esc),
                None => panic!("proptest shim: dangling backslash in pattern {pattern:?}"),
            },
            '[' => Atom::Class(parse_class(&mut chars, pattern)),
            '.' => Atom::Dot,
            c => Atom::Literal(c),
        };
        let (lo, hi) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 32)
            }
            Some('+') => {
                chars.next();
                (1, 32)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                parse_counts(&mut chars, pattern)
            }
            _ => (1, 1),
        };
        let n = lo + rng.below(hi - lo + 1);
        for _ in 0..n {
            out.push(sample_atom(&atom, rng));
        }
    }
    out
}

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<(char, char)> {
    let mut entries: Vec<(char, char)> = Vec::new();
    loop {
        let c = match chars.next() {
            Some(']') => return entries,
            Some('\\') => chars
                .next()
                .unwrap_or_else(|| panic!("proptest shim: dangling backslash in {pattern:?}")),
            Some(c) => c,
            None => panic!("proptest shim: unterminated class in {pattern:?}"),
        };
        // A `-` between two chars forms a range; literal `-` is escaped
        // or trailing.
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next();
            match ahead.peek() {
                Some(&']') | None => entries.push((c, c)),
                _ => {
                    chars.next();
                    let end = match chars.next() {
                        Some('\\') => chars.next().unwrap_or(c),
                        Some(e) => e,
                        None => panic!("proptest shim: unterminated class in {pattern:?}"),
                    };
                    entries.push((c, end));
                }
            }
        } else {
            entries.push((c, c));
        }
    }
}

fn parse_counts(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    let mut body = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let parse = |s: &str| {
                s.parse::<usize>()
                    .unwrap_or_else(|_| panic!("proptest shim: bad count in {pattern:?}"))
            };
            return match body.split_once(',') {
                None => {
                    let n = parse(&body);
                    (n, n)
                }
                Some((lo, "")) => (parse(lo), parse(lo) + 32),
                Some((lo, hi)) => (parse(lo), parse(hi)),
            };
        }
        body.push(c);
    }
    panic!("proptest shim: unterminated count in {pattern:?}")
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Digit => char::from(b'0' + rng.below(10) as u8),
        Atom::Dot | Atom::Printable => {
            // Mostly ASCII printables, with occasional non-ASCII to keep
            // parsers honest about UTF-8.
            const EXOTIC: &[char] = &['é', 'λ', '→', '‰', '𝛑', '\u{00a0}'];
            if rng.below(20) == 0 {
                EXOTIC[rng.below(EXOTIC.len())]
            } else {
                char::from(b' ' + rng.below(95) as u8)
            }
        }
        Atom::Class(entries) => {
            let total: u32 = entries.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
            let mut pick = rng.below(total as usize) as u32;
            for (a, b) in entries {
                let span = *b as u32 - *a as u32 + 1;
                if pick < span {
                    return char::from_u32(*a as u32 + pick).expect("class range within chars");
                }
                pick -= span;
            }
            unreachable!("pick < total")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (0u64..=1u64 << 48).generate(&mut rng);
            assert!(w <= 1 << 48);
            let x = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn union_and_map_compose() {
        let strat = crate::prop_oneof![
            3 => (0u32..10).prop_map(|x| x as u64),
            1 => Just(99u64),
        ];
        let mut rng = TestRng::from_seed(2);
        let mut saw_big = false;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 10 || v == 99);
            saw_big |= v == 99;
        }
        assert!(saw_big);
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let s = "[a-z0-9p\\-\\.]{0,12}".generate(&mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '.'));
            let t = "\\PC*".generate(&mut rng);
            assert!(t.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let strat = crate::collection::vec((0u8..4, 0u8..4), 1..40);
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..40).contains(&v.len()));
        }
    }

    #[test]
    fn proptest_macro_compiles_and_runs() {
        crate::proptest! {
            #![proptest_config(crate::test_runner::ProptestConfig::with_cases(8))]
            fn inner((a, b) in (0u32..5, 0u32..5), mut v in crate::collection::vec(0u8..3, 0..4)) {
                v.sort();
                crate::prop_assert!(a < 5 && b < 5);
                crate::prop_assert_eq!(v.len(), v.len());
            }
        }
        inner();
    }
}
