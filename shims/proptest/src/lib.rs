//! Offline shim for `proptest`: deterministic random property testing.
//!
//! API-compatible with the subset of proptest this workspace uses
//! (`proptest!`, `prop_oneof!`, `prop_map`, ranges, tuples, `Just`,
//! `any`, `collection::vec`, regex-subset string strategies,
//! `ProptestConfig::with_cases`). Semantic differences from the real
//! crate: no shrinking — a failing case panics immediately and the
//! failure banner reports the deterministic seed and case index; set
//! `PROPTEST_SHIM_SEED` to vary the seed. See `shims/README.md`.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Number-of-elements bound for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s of elements from an inner strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. No shrinking: failures report the seed and case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!({$config} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!({$crate::test_runner::ProptestConfig::default()} $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ({$config:expr}) => {};
    ({$config:expr}
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let __guard = $crate::test_runner::FailureGuard::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                    __rng.seed(),
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
                __guard.disarm();
            }
        }
        $crate::__proptest_fns!({$config} $($rest)*);
    };
}

/// Weighted or unweighted choice between strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Assertion inside `proptest!` bodies (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}
