//! Deterministic RNG and runner configuration for the proptest shim.

/// Runner configuration; only `cases` is supported.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (the real crate defaults to 256; the shim favours fast
    /// tier-1 runs — heavyweight properties set explicit counts anyway).
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator, seeded per test from the test's
/// fully-qualified name (FNV-1a) so failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    seed: u64,
}

impl TestRng {
    /// RNG for the named test; `PROPTEST_SHIM_SEED` (u64) perturbs the
    /// seed to explore a different deterministic sequence.
    pub fn for_test(name: &str) -> TestRng {
        let mut seed = fnv1a(name.as_bytes());
        if let Ok(var) = std::env::var("PROPTEST_SHIM_SEED") {
            if let Ok(extra) = var.trim().parse::<u64>() {
                seed ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        TestRng::from_seed(seed)
    }

    /// RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed, seed }
    }

    /// The seed this generator started from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Prints the failing case's coordinates if the property body panics,
/// substituting for proptest's shrink report.
pub struct FailureGuard {
    name: &'static str,
    case: u32,
    seed: u64,
    armed: bool,
}

impl FailureGuard {
    /// Arms the guard for one case.
    pub fn new(name: &'static str, case: u32, seed: u64) -> FailureGuard {
        FailureGuard {
            name,
            case,
            seed,
            armed: true,
        }
    }

    /// The case passed; suppress the report.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for FailureGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: property `{}` failed at case {} (seed {:#018x}); \
                 the sequence is deterministic — rerun the test to reproduce",
                self.name, self.case, self.seed
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_seed(fnv1a(b"t"));
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_seed(fnv1a(b"t"));
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = TestRng::from_seed(fnv1a(b"u"));
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = TestRng::from_seed(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
