//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! generating `to_value`/`from_value` impls for the shim `serde` crate.
//!
//! Written without `syn`/`quote`: the input token stream is scanned just
//! far enough to recover the type name and its field/variant names —
//! field *types* never need to be parsed because the generated code lets
//! inference pick the right `Serialize`/`Deserialize` impl. Supports the
//! shapes this workspace uses: named-field structs, newtype structs, and
//! enums whose variants are unit, newtype, or struct-like (serde's
//! default externally-tagged representation).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// `struct T { a: A, b: B }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct T(Inner);`
    NewtypeStruct { name: String },
    /// `enum T { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Named(Vec<String>),
}

/// Extracts the field names from a `{ ... }` struct body group.
fn named_fields(body: &proc_macro::Group) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.stream().into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    // optional pub(...) restriction
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(other) => panic!("serde_derive shim: expected field name, found {other}"),
            None => break,
        }
        // Skip `: Type` up to the next top-level comma. Generic types
        // contain commas, so track angle-bracket depth.
        let mut depth = 0i32;
        for tok in tokens.by_ref() {
            match &tok {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                _ => {}
            }
        }
    }
    fields
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes, doc comments, and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kw = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    match tokens.next() {
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
            if kw == "struct" {
                Shape::NamedStruct {
                    name,
                    fields: named_fields(&body),
                }
            } else {
                Shape::Enum {
                    name,
                    variants: parse_variants(&body),
                }
            }
        }
        Some(TokenTree::Group(body))
            if body.delimiter() == Delimiter::Parenthesis && kw == "struct" =>
        {
            // Tuple struct: only the 1-field (newtype) form is supported.
            let commas = body
                .stream()
                .into_iter()
                .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                .count();
            // A single trailing comma is still a newtype.
            let has_second_field = {
                let mut depth = 0i32;
                let mut seen_comma = false;
                let mut after_comma = false;
                for tok in body.stream() {
                    if let TokenTree::Punct(p) = &tok {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => {
                                seen_comma = true;
                                continue;
                            }
                            _ => {}
                        }
                    }
                    if seen_comma {
                        after_comma = true;
                    }
                }
                let _ = commas;
                after_comma
            };
            assert!(
                !has_second_field,
                "serde_derive shim: only newtype tuple structs are supported ({name})"
            );
            Shape::NewtypeStruct { name }
        }
        other => panic!("serde_derive shim: unsupported type shape for {name}: {other:?}"),
    }
}

fn parse_variants(body: &proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.stream().into_iter().peekable();
    loop {
        // Skip attributes / doc comments before the variant name.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive shim: expected variant name, found {other}"),
            None => break,
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g);
                tokens.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                tokens.next();
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Consume the separating comma if present.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
    }
    variants
}

/// Derives `serde::Serialize` (shim semantics: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                        ),
                        VariantKind::Newtype => format!(
                            "{name}::{vname}(inner) => ::serde::Value::Object(vec![\
                             (\"{vname}\".to_string(), ::serde::Serialize::to_value(inner))]),\n"
                        ),
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (\"{vname}\".to_string(), \
                                 ::serde::Value::Object(vec![{entries}]))]),\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated code must parse")
}

/// Derives `serde::Deserialize` (shim semantics:
/// `fn from_value(&Value) -> Result<Self, DeError>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::obj_field(v, \"{f}\", \"{name}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            // Externally tagged: a bare string selects a unit variant; an
            // object with exactly one key selects a data-carrying variant.
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),\n", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Newtype => Some(format!(
                            "\"{vname}\" => return Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(payload)?)),\n"
                        )),
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::obj_field(payload, \"{f}\", \"{name}\")?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => return Ok({name}::{vname} {{ {inits} }}),\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::String(tag) = v {{\n\
                             match tag.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => return Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                             }}\n\
                         }}\n\
                         if let ::serde::Value::Object(pairs) = v {{\n\
                             if pairs.len() == 1 {{\n\
                                 let (tag, payload) = (&pairs[0].0, &pairs[0].1);\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => return Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError::expected(\"variant tag\", \"{name}\", v))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated code must parse")
}
