//! Offline shim for `crossbeam`: scoped threads over `std::thread::scope`.
//! See `shims/README.md`.

/// Scoped thread spawning, API-compatible with `crossbeam::thread`.
pub mod thread {
    /// Handle passed to the `scope` closure; spawns threads that may
    /// borrow from the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before `scope` returns.
    ///
    /// Matching crossbeam's signature, the result is a `Result` carrying
    /// a panic payload if any non-joined child panicked; with
    /// `std::thread::scope` underneath, child panics propagate on join
    /// instead, so `Ok` is returned whenever `f` itself returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Minimal mpmc channel, API-compatible with `crossbeam::channel` for
/// the unbounded case.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<ChanState<T>>,
        ready: Condvar,
    }

    struct ChanState<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending half.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned when every receiver is gone (never reported by this
    /// shim's unbounded channel) or on send after close.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by `recv` once the channel is empty and closed.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.queue.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.chan.queue.lock().unwrap().items.push_back(value);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.ready.wait(st).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            self.chan.queue.lock().unwrap().items.pop_front()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(ChanState {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn channel_drains_after_senders_drop() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }
}
