//! Offline shim for the `bytes` crate: contiguous byte buffers.
//!
//! Implements the subset used by TiTR (`BytesMut` building + `freeze`
//! into a cheaply clonable `Bytes`). See `shims/README.md`.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::new(v) }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends `src`.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"abc");
        b.put_u8(b'\n');
        assert_eq!(b.len(), 4);
        let f = b.freeze();
        assert_eq!(&f[..], b"abc\n");
        let g = f.clone();
        assert_eq!(g.as_ref(), b"abc\n");
    }
}
