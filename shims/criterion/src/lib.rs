//! Offline shim for `criterion`: wall-clock micro-benchmarking with the
//! same bench-definition API, minus the statistics machinery.
//!
//! Each benchmark prints one stable, machine-parseable line:
//!
//! ```text
//! BENCH <group>/<name> median_ns=<u128> mean_ns=<u128> min_ns=<u128> [thrpt=<f64> elems/s]
//! ```
//!
//! `--test` (as passed by `cargo bench -- --test`) runs every routine
//! once as a smoke test without timing loops. See `shims/README.md`.

use std::time::Instant;

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim times every routine
/// call individually, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Things accepted as a benchmark name.
pub trait IntoBenchId {
    /// The rendered name.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    smoke: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            smoke: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (`--test` for smoke
    /// mode; a positional argument filters benchmarks by substring;
    /// cargo-injected flags such as `--bench` are ignored).
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.smoke = true,
                a if a.starts_with('-') => {}
                a => c.filter = Some(a.to_string()),
            }
        }
        c
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 50,
        }
    }

    /// Prints a trailing marker (stands in for criterion's summary).
    pub fn final_summary(&mut self) {
        println!("BENCH_DONE");
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the throughput used for rate reporting by subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the target number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Defines one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_bench_id());
        if let Some(filter) = &self.criterion.filter {
            if !label.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            smoke: self.criterion.smoke,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&label, self.throughput);
        self
    }

    /// Defines one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    smoke: bool,
    sample_size: usize,
    samples: Vec<u128>,
}

/// Total wall-clock budget per benchmark, excluding setup (ns).
const TIME_BUDGET_NS: u128 = 2_500_000_000;
/// Minimum timed window per sample for `iter` batching (ns).
const MIN_WINDOW_NS: u128 = 100_000;

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.smoke {
            black_box(routine());
            return;
        }
        // Warmup + estimate of a single iteration.
        let start = Instant::now();
        black_box(routine());
        let est = start.elapsed().as_nanos().max(1);
        // Batch enough iterations per sample for a readable window.
        let iters = (MIN_WINDOW_NS / est).max(1);
        let samples = self.plan_samples(est * iters);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed().as_nanos() / iters);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup and drop are
    /// excluded from the timed window.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke {
            black_box(routine(setup()));
            return;
        }
        let input = setup();
        let start = Instant::now();
        let out = black_box(routine(input));
        let est = start.elapsed().as_nanos().max(1);
        drop(out);
        let samples = self.plan_samples(est);
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            let out = black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos());
            drop(out);
        }
    }

    /// Sample count fitting the time budget given a per-sample estimate.
    fn plan_samples(&self, est_ns: u128) -> usize {
        let affordable = (TIME_BUDGET_NS / est_ns.max(1)).min(self.sample_size as u128);
        (affordable as usize).clamp(2, self.sample_size)
    }

    fn report(&mut self, label: &str, throughput: Option<Throughput>) {
        if self.smoke {
            println!("BENCH_SMOKE {label} ok");
            return;
        }
        if self.samples.is_empty() {
            // bench_function body never called iter/iter_batched.
            println!("BENCH {label} median_ns=0 mean_ns=0 min_ns=0");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<u128>() / self.samples.len() as u128;
        let min = self.samples[0];
        let rate = |per_iter: u64| per_iter as f64 / (median as f64 * 1e-9);
        match throughput {
            Some(Throughput::Elements(n)) => println!(
                "BENCH {label} median_ns={median} mean_ns={mean} min_ns={min} thrpt={:.6e} elems/s",
                rate(n)
            ),
            Some(Throughput::Bytes(n)) => println!(
                "BENCH {label} median_ns={median} mean_ns={mean} min_ns={min} thrpt={:.6e} bytes/s",
                rate(n)
            ),
            None => println!("BENCH {label} median_ns={median} mean_ns={mean} min_ns={min}"),
        }
    }
}

/// Groups benchmark functions into one callable registration.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            smoke: true,
            filter: None,
        };
        let mut calls = 0u32;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.bench_function("f", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn timed_mode_collects_samples() {
        let mut c = Criterion {
            smoke: false,
            filter: None,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("f", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn filter_skips_benchmarks() {
        let mut c = Criterion {
            smoke: true,
            filter: Some("other".into()),
        };
        let mut calls = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 0);
    }
}
