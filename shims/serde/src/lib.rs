//! Offline shim for `serde`: a value-tree serialization framework.
//!
//! Unlike real serde's visitor architecture, this shim serializes
//! through an explicit [`Value`] tree (the JSON data model). The derive
//! macros (re-exported from the sibling `serde_derive` shim) generate
//! `to_value`/`from_value` implementations matching serde's default
//! externally-tagged representation, so JSON written by the real crate
//! parses identically here and vice versa for the types this workspace
//! uses. See `shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-model value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers are exact up to 2^53).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// "expected X while deserializing T, found Y".
    pub fn expected(what: &str, ty: &str, found: &Value) -> DeError {
        DeError {
            msg: format!("expected {what} for {ty}, found {}", found.kind()),
        }
    }

    /// Unknown enum variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> DeError {
        DeError {
            msg: format!("unknown variant `{variant}` for {ty}"),
        }
    }

    /// Missing struct field.
    pub fn missing_field(field: &str, ty: &str) -> DeError {
        DeError {
            msg: format!("missing field `{field}` for {ty}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types serializable to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: looks up a required field of an object.
pub fn obj_field<'a>(v: &'a Value, field: &str, ty: &str) -> Result<&'a Value, DeError> {
    match v {
        Value::Object(_) => v
            .get(field)
            .ok_or_else(|| DeError::missing_field(field, ty)),
        other => Err(DeError::expected("object", ty, other)),
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => {
                        let min = <$t>::MIN as f64;
                        let max = <$t>::MAX as f64;
                        if *n >= min && *n <= max {
                            Ok(*n as $t)
                        } else {
                            Err(DeError::custom(format!(
                                "number {n} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(DeError::expected("integer", stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("array", "tuple", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(u32::from_value(&7u32.to_value()), Ok(7));
        assert_eq!(f64::from_value(&1.25e8.to_value()), Ok(1.25e8));
        assert_eq!(
            String::from_value(&"x".to_string().to_value()),
            Ok("x".to_string())
        );
        let v: Vec<(String, f64)> = vec![("a".into(), 1.0)];
        assert_eq!(Vec::<(String, f64)>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn integer_checks() {
        assert!(u8::from_value(&Value::Number(300.0)).is_err());
        assert!(u32::from_value(&Value::Number(1.5)).is_err());
        assert!(u32::from_value(&Value::String("7".into())).is_err());
    }

    #[test]
    fn option_null_mapping() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::Number(3.0)), Ok(Some(3)));
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }
}
