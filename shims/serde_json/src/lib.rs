//! Offline shim for `serde_json`: JSON text ⇄ the shim `serde::Value`
//! tree. See `shims/README.md`.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON parse / conversion error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, level, items.len(), '[', ']', |out, lvl| {
            for (i, item) in items.iter().enumerate() {
                sep(out, indent, lvl, i);
                write_value(out, item, indent, lvl);
            }
        }),
        Value::Object(pairs) => write_seq(out, indent, level, pairs.len(), '{', '}', |out, lvl| {
            for (i, (k, item)) in pairs.iter().enumerate() {
                sep(out, indent, lvl, i);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, lvl);
            }
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    body: impl FnOnce(&mut String, usize),
) {
    out.push(open);
    if len > 0 {
        body(out, level + 1);
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn sep(out: &mut String, indent: Option<usize>, level: usize, i: usize) {
    if i > 0 {
        out.push(',');
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        // serde_json rejects non-finite floats at the serializer layer;
        // emitting null keeps the output valid JSON instead of panicking.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest-roundtrip form; its exponent spelling
        // (e.g. 1e300) is valid JSON.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null").map(|()| Value::Null),
            b't' => self.eat_keyword("true").map(|()| Value::Bool(true)),
            b'f' => self.eat_keyword("false").map(|()| Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pair handling for non-BMP chars.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width =
                        utf8_width(b).ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 in string"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_width(b: u8) -> Option<usize> {
    match b {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&1.25e9f64).unwrap(), "1250000000");
        assert_eq!(from_str::<f64>("1.25e9").unwrap(), 1.25e9);
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, 6.02e23, 1e-300, 12.125] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
    }

    #[test]
    fn nested_structures() {
        let v: Vec<(String, f64)> = vec![("pi".into(), 3.5), ("e".into(), 2.0)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"[["pi",3.5],["e",2]]"#);
        assert_eq!(from_str::<Vec<(String, f64)>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_format() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("4 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<f64>("nope").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""é""#).unwrap(), "é");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        assert_eq!(from_str::<String>("\"héllo\"").unwrap(), "héllo");
    }
}
