//! Differential tests of the conservative parallel replay engine: the
//! partitioned execution must be *bit-identical* to the sequential one
//! at any thread count — simulated times, per-rank times, unified
//! metrics, and the byte-for-byte observability exports.

use proptest::prelude::*;
use std::sync::Arc;

use tit_replay::platform::topology::{cabinet_cluster, CabinetClusterSpec};
use tit_replay::prelude::*;
use tit_replay::replay::{replay_observed, ReplayReport};
use tit_replay::simkernel::FelImpl;

/// A cabinet cluster whose intra-cabinet traffic decomposes into one
/// coupling island per cabinet (intra-cabinet routes don't share
/// links; see `replay::partition`).
fn cabinets(cabs: u32, per: u32) -> Platform {
    cabinet_cluster(&CabinetClusterSpec {
        name: "c".into(),
        cabinets: cabs,
        nodes_per_cabinet: per,
        host_speed: 1e9,
        cores: 1,
        cache_bytes: 1 << 20,
        link_bandwidth: 1.25e9,
        link_latency: 1e-5,
        cabinet_bandwidth: 1e10,
        cabinet_latency: 2e-6,
        backbone_bandwidth: 1e11,
        backbone_latency: 1e-6,
    })
}

fn cfg(engine: ReplayEngine, threads: usize) -> ReplayConfig {
    ReplayConfig {
        engine,
        rate: 1e9,
        placement: Placement::OnePerNode,
        copy_model: None,
        sharing: tit_replay::netmodel::SharingPolicy::Bottleneck,
        fel: FelImpl::default(),
        threads,
        window_s: None,
        collective_agg: false,
    }
}

/// Intra-cabinet ring exchange: every rank swaps `bytes` with both
/// neighbours inside its own cabinet each iteration, then computes.
/// Deadlock-free (receives pre-posted) and multi-island by design.
fn halo_trace(cabs: u32, per: u32, iters: u32, bytes: u64) -> Trace {
    let ranks = cabs * per;
    let mut trace = Trace::new(ranks);
    for r in 0..ranks {
        let cab = r / per;
        let right = Rank(cab * per + (r % per + 1) % per);
        let left = Rank(cab * per + (r % per + per - 1) % per);
        let rank = Rank(r);
        trace.push(rank, Action::Init);
        for _ in 0..iters {
            trace.push(rank, Action::Irecv { src: left, bytes });
            trace.push(rank, Action::Irecv { src: right, bytes });
            trace.push(rank, Action::Isend { dst: right, bytes });
            trace.push(rank, Action::Isend { dst: left, bytes });
            trace.push(rank, Action::WaitAll);
            trace.push(rank, Action::Compute { amount: 1e5 });
        }
        trace.push(rank, Action::Finalize);
    }
    trace
}

/// Asserts that two observed replays are indistinguishable: identical
/// result bits, identical metrics, byte-identical exports.
fn assert_identical(base: &ReplayReport, other: &ReplayReport, what: &str) {
    assert_eq!(
        base.result.time.to_bits(),
        other.result.time.to_bits(),
        "{what}: simulated time differs"
    );
    let base_bits: Vec<u64> = base.result.rank_times.iter().map(|t| t.to_bits()).collect();
    let other_bits: Vec<u64> = other
        .result
        .rank_times
        .iter()
        .map(|t| t.to_bits())
        .collect();
    assert_eq!(base_bits, other_bits, "{what}: rank times differ");
    assert_eq!(base.result, other.result, "{what}: results differ");
    // The ladder's restructuring counters (spills, bucket sorts,
    // reseeds) measure the *data structure*, not the simulation: one
    // merged FEL and N island FELs legitimately restructure at
    // different points. They are compiled in only under the opt-in
    // `profile` feature; every semantic counter must still match.
    let mut other_metrics = other.metrics.clone();
    other_metrics.fel.spills = base.metrics.fel.spills;
    other_metrics.fel.bucket_sorts = base.metrics.fel.bucket_sorts;
    other_metrics.fel.reseeds = base.metrics.fel.reseeds;
    // Live-flow high-water marks are per-network-model figures: the
    // sequential replay sees every island's flows in one model while the
    // parallel replay folds per-island maxima, so the marks legitimately
    // differ. They measure occupancy, not simulation semantics.
    other_metrics.live_flow_hwm = base.metrics.live_flow_hwm;
    other_metrics.live_entity_hwm = base.metrics.live_entity_hwm;
    assert_eq!(base.metrics, other_metrics, "{what}: metrics differ");
    match (&base.spans, &other.spans) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(
                chrome_trace(a),
                chrome_trace(b),
                "{what}: chrome trace differs"
            );
            assert_eq!(state_csv(a), state_csv(b), "{what}: state csv differs");
        }
        _ => panic!("{what}: span presence differs"),
    }
}

/// The headline guarantee on a multi-island workload: both engines,
/// every thread count, full observability — indistinguishable from the
/// sequential replay.
#[test]
fn parallel_replay_is_bit_identical_across_thread_counts() {
    let platform = cabinets(4, 4);
    let trace = Arc::new(halo_trace(4, 4, 20, 1 << 10));
    for engine in [ReplayEngine::Smpi, ReplayEngine::Msg] {
        let base = replay_observed(&platform, &trace, &cfg(engine, 1), true).unwrap();
        assert!(base.result.time > 0.0);
        for threads in [2, 4, 7] {
            let par = replay_observed(&platform, &trace, &cfg(engine, threads), true).unwrap();
            assert_identical(&base, &par, &format!("{engine:?} threads={threads}"));
        }
    }
}

/// Mixed eager/rendezvous traffic (the 64 KiB threshold) partitions
/// and merges identically.
#[test]
fn parallel_replay_handles_rendezvous_traffic() {
    let platform = cabinets(3, 4);
    let trace = Arc::new(halo_trace(3, 4, 6, 1 << 20));
    let base = replay_observed(&platform, &trace, &cfg(ReplayEngine::Smpi, 1), true).unwrap();
    let par = replay_observed(&platform, &trace, &cfg(ReplayEngine::Smpi, 4), true).unwrap();
    assert!(
        base.metrics.rendezvous_messages > 0,
        "trace should exercise rendezvous"
    );
    assert_identical(&base, &par, "rendezvous threads=4");
}

/// The windowed conservative schedule (a testing knob) is provably
/// identical to free-running workers; check it really is.
#[test]
fn windowed_execution_matches_free_running() {
    let platform = cabinets(4, 4);
    let trace = Arc::new(halo_trace(4, 4, 10, 1 << 12));
    let free = replay_observed(&platform, &trace, &cfg(ReplayEngine::Smpi, 4), true).unwrap();
    for window_s in [1e-5, 1e-3, 10.0] {
        let mut windowed_cfg = cfg(ReplayEngine::Smpi, 4);
        windowed_cfg.window_s = Some(window_s);
        let windowed = replay_observed(&platform, &trace, &windowed_cfg, true).unwrap();
        assert_identical(&free, &windowed, &format!("window {window_s}"));
    }
}

/// Wall-clock profiling is observational only: a profiled run carries
/// a per-worker breakdown whose components fit inside the measured
/// wall interval, and every simulated output bit matches the
/// unprofiled run.
#[test]
fn profiled_replay_is_consistent_and_changes_nothing() {
    use tit_replay::replay::replay_input_profiled;
    use tit_replay::titrace::TraceInput;

    let platform = cabinets(4, 4);
    let input = TraceInput::Memory(Arc::new(halo_trace(4, 4, 10, 1 << 12)));
    for window_s in [None, Some(1e-3)] {
        let mut config = cfg(ReplayEngine::Smpi, 4);
        config.window_s = window_s;
        let plain = replay_input_profiled(&platform, &input, 16, &config, true, false).unwrap();
        assert!(
            plain.profile.is_none(),
            "unprofiled run must not carry a profile"
        );
        let profiled = replay_input_profiled(&platform, &input, 16, &config, true, true).unwrap();
        assert_identical(&plain, &profiled, "profile on vs off");

        let prof = profiled.profile.expect("profiled run carries a profile");
        assert_eq!(prof.mode, "islands");
        assert!(prof.wall_s > 0.0, "wall clock must have advanced");
        assert!(prof.workers.len() >= 2, "profile: {prof:?}");
        assert!(prof.imbalance() >= 1.0, "profile: {prof:?}");
        if window_s.is_some() {
            assert!(prof.windows > 0, "window schedule must count rounds");
        }
        let ranks: usize = prof.workers.iter().map(|w| w.ranks).sum();
        assert_eq!(ranks, 16, "workers must cover every rank once");
        for w in &prof.workers {
            // The sections were timed inside the per-worker wall
            // interval, so work + wait must fit within it (small slack
            // for the uninstrumented loop glue between sections).
            let parts = w.work_s + w.barrier_s + w.mailbox_s;
            assert!(parts > 0.0, "worker {} timed nothing", w.worker);
            assert!(
                parts <= w.wall_s + 5e-3,
                "worker {}: work {} + barrier {} + mailbox {} exceeds wall {}",
                w.worker,
                w.work_s,
                w.barrier_s,
                w.mailbox_s,
                w.wall_s
            );
            assert!(w.advances > 0, "worker {} never advanced", w.worker);
        }
    }
}

/// A deadlocked partition reports the failure instead of hanging the
/// worker pool — including under a window barrier schedule.
#[test]
fn parallel_replay_reports_partition_deadlock() {
    let platform = cabinets(2, 2);
    let mut trace = Trace::new(4);
    for r in 0..4u32 {
        trace.push(Rank(r), Action::Init);
    }
    // Cabinet 0 is fine; cabinet 1 has a receive nobody sends to.
    trace.push(
        Rank(0),
        Action::Send {
            dst: Rank(1),
            bytes: 64,
        },
    );
    trace.push(
        Rank(1),
        Action::Recv {
            src: Rank(0),
            bytes: 64,
        },
    );
    trace.push(
        Rank(2),
        Action::Recv {
            src: Rank(3),
            bytes: 64,
        },
    );
    for r in 0..4u32 {
        trace.push(Rank(r), Action::Finalize);
    }
    let trace = Arc::new(trace);
    for window_s in [None, Some(1e-4)] {
        let mut config = cfg(ReplayEngine::Smpi, 2);
        config.window_s = window_s;
        let err = replay_observed(&platform, &trace, &config, false).unwrap_err();
        assert!(err.contains("deadlock"), "unexpected error: {err}");
        assert!(
            err.contains("partition"),
            "should name the partition: {err}"
        );
    }
}

/// LU end-to-end: collectives couple all ranks into one island, so any
/// thread count takes the sequential fallback — and must be
/// indistinguishable from it, across both FEL implementations.
#[test]
fn lu_replay_is_identical_across_threads_and_fels() {
    let lu = LuConfig::new(LuClass::B, 8).with_steps(4);
    let trace =
        Arc::new(acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 42).trace);
    let platform = tit_replay::platform::clusters::graphene();
    for fel in [FelImpl::Heap, FelImpl::Ladder] {
        let mut base_cfg = cfg(ReplayEngine::Smpi, 1);
        base_cfg.fel = fel;
        let base = replay_observed(&platform, &trace, &base_cfg, true).unwrap();
        for threads in [2, 4] {
            let mut par_cfg = base_cfg.clone();
            par_cfg.threads = threads;
            let par = replay_observed(&platform, &trace, &par_cfg, true).unwrap();
            assert_identical(&base, &par, &format!("LU {fel:?} threads={threads}"));
        }
    }
}

/// Strategy: a random multi-island workload — per-cabinet ring traffic
/// with randomised iteration counts, message sizes (straddling the
/// eager threshold), and compute grain.
fn arb_halo() -> impl Strategy<Value = (u32, u32, u32, u64, f64)> {
    (2u32..5, 2u32..5, 1u32..12, 6u32..22, 1e3f64..1e7).prop_map(
        |(cabs, per, iters, log_bytes, compute)| (cabs, per, iters, 1u64 << log_bytes, compute),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random multi-island traces replay bit-identically at threads
    /// 1, 2, 4 and 7, for both engines.
    #[test]
    fn random_traces_replay_identically_at_any_thread_count(
        (cabs, per, iters, bytes, compute) in arb_halo(),
        engine_pick in 0u8..2,
    ) {
        let platform = cabinets(cabs, per);
        let mut trace = halo_trace(cabs, per, iters, bytes);
        // Perturb the compute grain so runs differ across cases.
        for r in 0..trace.ranks() {
            trace.push(Rank(r), Action::Compute { amount: compute });
        }
        let trace = Arc::new(trace);
        let engine = [ReplayEngine::Smpi, ReplayEngine::Msg][engine_pick as usize];
        let base = replay_observed(&platform, &trace, &cfg(engine, 1), true).unwrap();
        for threads in [2, 4, 7] {
            let par = replay_observed(&platform, &trace, &cfg(engine, threads), true).unwrap();
            assert_identical(&base, &par, &format!("{engine:?} threads={threads}"));
        }
    }
}
