//! Differential tests of the windowed-PDES engine: parallel replay
//! *inside* one coupled component. When the sub-shard certificate holds
//! (eager-only cross traffic, exclusive link ownership, positive
//! lookahead — see `replay::partition::plan_subshards`), the component
//! is replayed across threads through window-barrier mailboxes and must
//! stay bit-identical to the sequential replay; when it does not hold
//! (collectives, shared fabric), the engine must fall back and stay
//! byte-identical to the pre-existing paths, exports included.

use proptest::prelude::*;
use std::sync::Arc;

use tit_replay::platform::topology::{direct_cluster, DirectClusterSpec};
use tit_replay::prelude::*;
use tit_replay::replay::replay_observed;
use tit_replay::simkernel::FelImpl;

/// A non-blocking crossbar: every route is a dedicated NIC-link pair,
/// so a ring trace certifies a sub-shard plan (no shared fabric links,
/// one sender per receiver link).
fn direct(nodes: u32) -> Platform {
    direct_cluster(&DirectClusterSpec {
        name: "xbar".into(),
        nodes,
        host_speed: 1e9,
        cores: 1,
        cache_bytes: 1 << 20,
        link_bandwidth: 1.25e8,
        link_latency: 1e-5,
    })
}

fn cfg(engine: ReplayEngine, threads: usize) -> ReplayConfig {
    ReplayConfig {
        engine,
        rate: 1e9,
        placement: Placement::OnePerNode,
        copy_model: None,
        sharing: tit_replay::netmodel::SharingPolicy::Bottleneck,
        fel: FelImpl::default(),
        threads,
        window_s: None,
        collective_agg: false,
    }
}

/// A fully coupled ring without collectives: every rank exchanges
/// `bytes` with both ring neighbours each iteration, then computes a
/// rank-dependent amount (so event times never tie across ranks).
fn ring_trace(ranks: u32, iters: u32, bytes: u64) -> Trace {
    let mut trace = Trace::new(ranks);
    for r in 0..ranks {
        let next = Rank((r + 1) % ranks);
        let prev = Rank((r + ranks - 1) % ranks);
        let rank = Rank(r);
        trace.push(rank, Action::Init);
        for i in 0..iters {
            trace.push(rank, Action::Irecv { src: prev, bytes });
            trace.push(rank, Action::Isend { dst: next, bytes });
            trace.push(rank, Action::WaitAll);
            trace.push(
                rank,
                Action::Compute {
                    amount: 1e5 + (r as f64) * 1.7e3 + (i as f64) * 3.1e2,
                },
            );
        }
        trace.push(rank, Action::Finalize);
    }
    trace
}

/// Asserts two reports are indistinguishable in everything the
/// execution path may not change: result bits, semantic metrics,
/// exports. (FEL restructuring counters and live-occupancy high-water
/// marks measure the data structures, not the simulation — same
/// exclusions as the island-parallel differential tests.)
fn assert_identical(base: &ReplayReport, other: &ReplayReport, what: &str) {
    assert_eq!(
        base.result.time.to_bits(),
        other.result.time.to_bits(),
        "{what}: simulated time differs"
    );
    let base_bits: Vec<u64> = base.result.rank_times.iter().map(|t| t.to_bits()).collect();
    let other_bits: Vec<u64> = other
        .result
        .rank_times
        .iter()
        .map(|t| t.to_bits())
        .collect();
    assert_eq!(base_bits, other_bits, "{what}: rank times differ");
    assert_eq!(base.result, other.result, "{what}: results differ");
    let mut other_metrics = other.metrics.clone();
    other_metrics.fel.spills = base.metrics.fel.spills;
    other_metrics.fel.bucket_sorts = base.metrics.fel.bucket_sorts;
    other_metrics.fel.reseeds = base.metrics.fel.reseeds;
    other_metrics.live_flow_hwm = base.metrics.live_flow_hwm;
    other_metrics.live_entity_hwm = base.metrics.live_entity_hwm;
    // Match-queue depth HWMs (profile builds only): the windowed engine
    // injects cross envelopes at the window boundary, not at their
    // simulated arrival instant, so an envelope can transiently sit
    // unexpected where the merged run matched it directly. The matching
    // *outcome* — which recv pairs with which send, and when — is
    // covered by the result/time/flow equality above.
    other_metrics.max_unexpected_depth = base.metrics.max_unexpected_depth;
    other_metrics.max_posted_depth = base.metrics.max_posted_depth;
    assert_eq!(base.metrics, other_metrics, "{what}: metrics differ");
    match (&base.spans, &other.spans) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(
                chrome_trace(a),
                chrome_trace(b),
                "{what}: chrome trace differs"
            );
            assert_eq!(state_csv(a), state_csv(b), "{what}: state csv differs");
        }
        _ => panic!("{what}: span presence differs"),
    }
}

/// The tentpole guarantee: a fully coupled ring — one island, which the
/// island engine could never parallelise — replays bit-identically
/// through the windowed sub-shard engine at any thread count, and the
/// engine really engages (the report carries PDES figures).
#[test]
fn coupled_ring_is_bit_identical_across_thread_counts() {
    let platform = direct(8);
    let trace = Arc::new(ring_trace(8, 12, 1 << 10));
    let base = replay_observed(&platform, &trace, &cfg(ReplayEngine::Smpi, 1), false).unwrap();
    assert!(base.result.time > 0.0);
    assert!(base.pdes.is_none(), "sequential path must not report PDES");
    for threads in [2, 4, 7] {
        let par =
            replay_observed(&platform, &trace, &cfg(ReplayEngine::Smpi, threads), false).unwrap();
        assert_identical(&base, &par, &format!("ring threads={threads}"));
        let pdes = par.pdes.expect("windowed engine should engage");
        assert_eq!(pdes.shards, threads.min(8));
        assert!(pdes.windows > 0, "no window rounds counted");
        assert!(pdes.mailbox_envelopes > 0, "no cross-shard envelopes");
        assert_eq!(
            pdes.mailbox_envelopes, pdes.mailbox_arrivals,
            "every envelope has exactly one arrival"
        );
        // Direct route: two 10µs NIC hops; the window is half of it.
        assert!((pdes.lookahead_s - 2e-5).abs() < 1e-12);
        assert!((pdes.window_s - 1e-5).abs() < 1e-12);
    }
}

/// Bit-identity holds across both FEL implementations and a
/// user-tightened window (a wider user window must be clamped to the
/// safe half-lookahead, never widening the horizon).
#[test]
fn windowed_ring_is_identical_across_fels_and_windows() {
    let platform = direct(6);
    let trace = Arc::new(ring_trace(6, 8, 1 << 12));
    for fel in [FelImpl::Heap, FelImpl::Ladder] {
        let mut base_cfg = cfg(ReplayEngine::Smpi, 1);
        base_cfg.fel = fel;
        let base = replay_observed(&platform, &trace, &base_cfg, false).unwrap();
        for window_s in [None, Some(1e-6), Some(10.0)] {
            let mut par_cfg = base_cfg.clone();
            par_cfg.threads = 3;
            par_cfg.window_s = window_s;
            let par = replay_observed(&platform, &trace, &par_cfg, false).unwrap();
            assert_identical(&base, &par, &format!("{fel:?} window={window_s:?}"));
            let pdes = par.pdes.expect("windowed engine should engage");
            assert!(
                pdes.window_s <= pdes.lookahead_s / 2.0 + 1e-18,
                "window {} exceeds safe bound {}",
                pdes.window_s,
                pdes.lookahead_s / 2.0
            );
        }
    }
}

/// Span recording is a documented windowed-engine gate: the run must
/// fall back to the sequential path (identical, spans present, no PDES
/// figures).
#[test]
fn span_recording_falls_back_to_sequential() {
    let platform = direct(6);
    let trace = Arc::new(ring_trace(6, 4, 1 << 10));
    let base = replay_observed(&platform, &trace, &cfg(ReplayEngine::Smpi, 1), true).unwrap();
    let par = replay_observed(&platform, &trace, &cfg(ReplayEngine::Smpi, 4), true).unwrap();
    assert_identical(&base, &par, "spans threads=4");
    assert!(par.pdes.is_none(), "recording must disable the engine");
    assert!(par.spans.is_some());
}

/// A deadlocked shard must surface the failure (naming the shard)
/// instead of hanging the window barriers.
#[test]
fn windowed_deadlock_is_reported() {
    let platform = direct(4);
    let mut trace = Trace::new(4);
    for r in 0..4u32 {
        trace.push(Rank(r), Action::Init);
    }
    // A ring of sends so the certificate sees cross-shard traffic...
    for r in 0..4u32 {
        trace.push(
            Rank(r),
            Action::Isend {
                dst: Rank((r + 1) % 4),
                bytes: 64,
            },
        );
        trace.push(
            Rank(r),
            Action::Recv {
                src: Rank((r + 3) % 4),
                bytes: 64,
            },
        );
        trace.push(Rank(r), Action::Wait);
    }
    // ... and one receive nobody ever sends to.
    trace.push(
        Rank(2),
        Action::Recv {
            src: Rank(0),
            bytes: 64,
        },
    );
    for r in 0..4u32 {
        trace.push(Rank(r), Action::Finalize);
    }
    let err = replay_observed(
        &platform,
        &Arc::new(trace),
        &cfg(ReplayEngine::Smpi, 2),
        false,
    )
    .unwrap_err();
    assert!(err.contains("deadlock"), "unexpected error: {err}");
    assert!(err.contains("shard"), "should name the shard: {err}");
}

/// LU (collectives ⇒ certificate fails) must take the byte-identical
/// fallback at every thread count, on both engines and both FELs —
/// including the observability exports and the critical path.
#[test]
fn lu_falls_back_identically_across_engines_fels_threads() {
    let lu = LuConfig::new(LuClass::B, 8).with_steps(3);
    let trace =
        Arc::new(acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 42).trace);
    let platform = tit_replay::platform::clusters::graphene();
    for engine in [ReplayEngine::Smpi, ReplayEngine::Msg] {
        for fel in [FelImpl::Heap, FelImpl::Ladder] {
            let mut base_cfg = cfg(engine, 1);
            base_cfg.fel = fel;
            let base = replay_observed(&platform, &trace, &base_cfg, true).unwrap();
            let base_cp = base.critical_path().expect("spans recorded");
            for threads in [2, 4, 7] {
                let mut par_cfg = base_cfg.clone();
                par_cfg.threads = threads;
                let par = replay_observed(&platform, &trace, &par_cfg, true).unwrap();
                assert_identical(&base, &par, &format!("LU {engine:?} {fel:?} t={threads}"));
                assert!(par.pdes.is_none(), "collectives must gate the engine");
                let par_cp = par.critical_path().expect("spans recorded");
                assert_eq!(
                    format!("{base_cp:?}"),
                    format!("{par_cp:?}"),
                    "critical path differs"
                );
            }
        }
    }
}

/// Allreduce at P=128: the same fallback guarantee for a pure
/// collective workload at scale.
#[test]
fn allreduce_128_falls_back_identically() {
    let ranks = 128u32;
    let mut trace = Trace::new(ranks);
    for r in 0..ranks {
        let rank = Rank(r);
        trace.push(rank, Action::Init);
        for i in 0..3 {
            trace.push(
                rank,
                Action::Compute {
                    amount: 1e5 + (r as f64) * 1.3e3 + (i as f64) * 7e2,
                },
            );
            trace.push(rank, Action::Allreduce { bytes: 1 << 10 });
        }
        trace.push(rank, Action::Finalize);
    }
    let trace = Arc::new(trace);
    let platform = tit_replay::platform::clusters::graphene();
    for engine in [ReplayEngine::Smpi, ReplayEngine::Msg] {
        for fel in [FelImpl::Heap, FelImpl::Ladder] {
            let mut base_cfg = cfg(engine, 1);
            base_cfg.fel = fel;
            let base = replay_observed(&platform, &trace, &base_cfg, true).unwrap();
            for threads in [2, 4, 7] {
                let mut par_cfg = base_cfg.clone();
                par_cfg.threads = threads;
                let par = replay_observed(&platform, &trace, &par_cfg, true).unwrap();
                assert_identical(
                    &base,
                    &par,
                    &format!("allreduce {engine:?} {fel:?} t={threads}"),
                );
                assert!(par.pdes.is_none(), "collectives must gate the engine");
            }
        }
    }
}

/// Strategy: a random coupled ring — rank count, iterations, per-size
/// eager messages, compute grain, and whether iterations use the
/// pre-posted (`Irecv`/`Isend`/`WaitAll`) or the send-first
/// (`Isend`/`Recv`/`Wait`) shape.
fn arb_ring() -> impl Strategy<Value = (u32, u32, u64, f64, bool)> {
    (4u32..9, 1u32..8, 6u32..16, 1e3f64..1e6, any::<bool>()).prop_map(
        |(ranks, iters, log_bytes, compute, preposted)| {
            (ranks, iters, 1u64 << log_bytes, compute, preposted)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random coupled rings with cross-shard traffic replay
    /// bit-identically through the windowed engine at threads 2, 4, 7.
    #[test]
    fn random_coupled_rings_replay_identically(
        (ranks, iters, bytes, compute, preposted) in arb_ring(),
    ) {
        let platform = direct(ranks);
        let mut trace = Trace::new(ranks);
        for r in 0..ranks {
            let next = Rank((r + 1) % ranks);
            let prev = Rank((r + ranks - 1) % ranks);
            let rank = Rank(r);
            trace.push(rank, Action::Init);
            for i in 0..iters {
                if preposted {
                    trace.push(rank, Action::Irecv { src: prev, bytes });
                    trace.push(rank, Action::Isend { dst: next, bytes });
                    trace.push(rank, Action::WaitAll);
                } else {
                    trace.push(rank, Action::Isend { dst: next, bytes });
                    trace.push(rank, Action::Recv { src: prev, bytes });
                    trace.push(rank, Action::Wait);
                }
                trace.push(rank, Action::Compute {
                    amount: compute * (1.0 + 0.13 * r as f64 + 0.017 * i as f64),
                });
            }
            trace.push(rank, Action::Finalize);
        }
        let trace = Arc::new(trace);
        let base = replay_observed(&platform, &trace, &cfg(ReplayEngine::Smpi, 1), false).unwrap();
        for threads in [2, 4, 7] {
            let par = replay_observed(
                &platform, &trace, &cfg(ReplayEngine::Smpi, threads), false,
            ).unwrap();
            assert_identical(&base, &par, &format!("random ring threads={threads}"));
            prop_assert!(par.pdes.is_some(), "windowed engine should engage");
        }
    }
}
