//! Differential tests of collective flow aggregation: with
//! `ReplayConfig::collective_agg` on, the deferred/aggregated network
//! path must be *bit-identical* to the constituent per-flow path —
//! simulated end time, per-rank completion times, critical path, and
//! the byte-for-byte observability exports — while the sharing-work
//! counters (the point of the optimisation) are allowed to shrink.

use proptest::prelude::*;
use std::sync::Arc;

use tit_replay::platform::spec::SpecKind;
use tit_replay::prelude::*;
use tit_replay::replay::ReplayReport;
use tit_replay::simkernel::FelImpl;

/// A flat switched cluster: every rank on its own node, so each
/// collective phase puts P uniform flows through the shared backbone —
/// the shape aggregation collapses to O(1).
fn flat(nodes: u32) -> Platform {
    PlatformSpec {
        name: "agg-flat".into(),
        kind: SpecKind::Flat {
            nodes,
            host_speed: 2e9,
            cores: 1,
            cache_bytes: 1 << 20,
            link_bandwidth: 1.25e9,
            link_latency: 1e-5,
            backbone_bandwidth: 1e10,
            backbone_latency: 1e-6,
        },
    }
    .build()
}

fn cfg(engine: ReplayEngine, fel: FelImpl, threads: usize, agg: bool) -> ReplayConfig {
    ReplayConfig {
        engine,
        rate: 2e9,
        placement: Placement::OnePerNode,
        copy_model: None,
        sharing: tit_replay::netmodel::SharingPolicy::Bottleneck,
        fel,
        threads,
        window_s: None,
        collective_agg: agg,
    }
}

/// A collective-dense loop: compute, then allreduce, every iteration.
fn allreduce_trace(ranks: u32, iters: u32, bytes: u64) -> Trace {
    let mut trace = Trace::new(ranks);
    for r in 0..ranks {
        let rank = Rank(r);
        trace.push(rank, Action::Init);
        for _ in 0..iters {
            trace.push(rank, Action::Compute { amount: 1e5 });
            trace.push(rank, Action::Allreduce { bytes });
        }
        trace.push(rank, Action::Finalize);
    }
    trace
}

/// Asserts the aggregated replay is indistinguishable from the
/// constituent one in every simulated-time quantity and export, with
/// only the sharing-work and kernel-event counters allowed to differ
/// (the deferred path schedules flush timers and batches re-solves —
/// that *is* the measured win, not a divergence).
fn assert_agg_identical(base: &ReplayReport, agg: &ReplayReport, what: &str) {
    assert_eq!(
        base.result.time.to_bits(),
        agg.result.time.to_bits(),
        "{what}: simulated time differs"
    );
    let base_bits: Vec<u64> = base.result.rank_times.iter().map(|t| t.to_bits()).collect();
    let agg_bits: Vec<u64> = agg.result.rank_times.iter().map(|t| t.to_bits()).collect();
    assert_eq!(base_bits, agg_bits, "{what}: rank times differ");
    let mut agg_metrics = agg.metrics.clone();
    agg_metrics.events_processed = base.metrics.events_processed;
    agg_metrics.queue_compactions = base.metrics.queue_compactions;
    agg_metrics.fel = base.metrics.fel;
    agg_metrics.sharing_resolves = base.metrics.sharing_resolves;
    agg_metrics.sharing_rate_updates = base.metrics.sharing_rate_updates;
    agg_metrics.sharing_flushes = base.metrics.sharing_flushes;
    agg_metrics.live_entity_hwm = base.metrics.live_entity_hwm;
    agg_metrics.agg_formed = base.metrics.agg_formed;
    agg_metrics.agg_members = base.metrics.agg_members;
    agg_metrics.agg_splits = base.metrics.agg_splits;
    assert_eq!(base.metrics, agg_metrics, "{what}: semantic metrics differ");
    match (&base.spans, &agg.spans) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(
                chrome_trace(a),
                chrome_trace(b),
                "{what}: chrome trace differs"
            );
            assert_eq!(state_csv(a), state_csv(b), "{what}: state csv differs");
            let cp_a = critical_path(a, &base.result.rank_times);
            let cp_b = critical_path(b, &agg.result.rank_times);
            assert_eq!(
                cp_a.to_json(),
                cp_b.to_json(),
                "{what}: critical path differs"
            );
        }
        _ => panic!("{what}: span presence differs"),
    }
}

/// The headline matrix: both engines, both FEL implementations, threads
/// 1 and 4 — aggregation on vs off, indistinguishable everywhere.
#[test]
fn allreduce_aggregation_is_bit_identical_across_engines_fels_threads() {
    let platform = flat(16);
    let trace = Arc::new(allreduce_trace(16, 12, 1 << 16));
    for engine in [ReplayEngine::Smpi, ReplayEngine::Msg] {
        for fel in [FelImpl::Heap, FelImpl::Ladder] {
            for threads in [1, 4] {
                let base =
                    replay_observed(&platform, &trace, &cfg(engine, fel, threads, false), true)
                        .unwrap();
                let agg =
                    replay_observed(&platform, &trace, &cfg(engine, fel, threads, true), true)
                        .unwrap();
                assert!(base.result.time > 0.0);
                assert_agg_identical(
                    &base,
                    &agg,
                    &format!("allreduce {engine:?} {fel:?} threads={threads}"),
                );
            }
        }
    }
}

/// Aggregation must actually *happen* on the collective-dense workload:
/// entities collapse to O(1), sharing work shrinks, and nothing in the
/// run ever increases.
#[test]
fn allreduce_aggregation_reduces_sharing_work() {
    let platform = flat(16);
    let trace = Arc::new(allreduce_trace(16, 12, 1 << 16));
    let fel = FelImpl::default();
    let base = replay_observed(
        &platform,
        &trace,
        &cfg(ReplayEngine::Smpi, fel, 1, false),
        false,
    )
    .unwrap();
    let agg = replay_observed(
        &platform,
        &trace,
        &cfg(ReplayEngine::Smpi, fel, 1, true),
        false,
    )
    .unwrap();
    assert!(agg.metrics.agg_formed > 0, "no aggregates formed");
    assert!(
        agg.metrics.live_entity_hwm < agg.metrics.live_flow_hwm,
        "entity HWM {} should undercut flow HWM {}",
        agg.metrics.live_entity_hwm,
        agg.metrics.live_flow_hwm
    );
    assert!(
        agg.metrics.sharing_resolves <= base.metrics.sharing_resolves,
        "aggregation increased resolves: {} > {}",
        agg.metrics.sharing_resolves,
        base.metrics.sharing_resolves
    );
    assert!(
        agg.metrics.sharing_rate_updates <= base.metrics.sharing_rate_updates,
        "aggregation increased rate updates: {} > {}",
        agg.metrics.sharing_rate_updates,
        base.metrics.sharing_rate_updates
    );
    // The flat allreduce phases are perfectly uniform, so the O(P)→O(1)
    // collapse is total: one live entity at the high-water mark.
    assert_eq!(agg.metrics.live_entity_hwm, 1, "collapse should be total");
    assert_eq!(agg.metrics.live_flow_hwm, 16);
}

/// LU end-to-end (p2p-dominated with interspersed collectives): the
/// mixed traffic exercises aggregate splits and non-uniform batches,
/// and must still be bit-identical across both engines and FELs.
#[test]
fn lu_aggregation_is_bit_identical() {
    let lu = LuConfig::new(LuClass::B, 8).with_steps(4);
    let trace =
        Arc::new(acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 42).trace);
    let platform = tit_replay::platform::clusters::graphene();
    for engine in [ReplayEngine::Smpi, ReplayEngine::Msg] {
        for fel in [FelImpl::Heap, FelImpl::Ladder] {
            let base =
                replay_observed(&platform, &trace, &cfg(engine, fel, 1, false), true).unwrap();
            let agg = replay_observed(&platform, &trace, &cfg(engine, fel, 1, true), true).unwrap();
            assert_agg_identical(&base, &agg, &format!("LU {engine:?} {fel:?}"));
        }
    }
}

/// Strategy: a random collective schedule — every rank runs the same
/// sequence of collectives (as MPI requires) drawn from the full op
/// set, with random sizes straddling the eager threshold and random
/// compute grain between them.
fn arb_schedule() -> impl Strategy<Value = (u32, Vec<(u8, u64, f64)>)> {
    let op = (0u8..5, 8u32..20, 1e3f64..1e6)
        .prop_map(|(kind, log_bytes, compute)| (kind, 1u64 << log_bytes, compute));
    (2u32..9, proptest::collection::vec(op, 1..8))
}

fn push_collective(trace: &mut Trace, rank: Rank, kind: u8, bytes: u64) {
    let op = match kind {
        0 => Action::Allreduce { bytes },
        1 => Action::Bcast {
            root: Rank(0),
            bytes,
        },
        2 => Action::Reduce {
            root: Rank(0),
            bytes,
        },
        3 => Action::Alltoall { bytes },
        _ => Action::Barrier,
    };
    trace.push(rank, op);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random collective schedules replay bit-identically with
    /// aggregation on, for both engines.
    #[test]
    fn random_collective_schedules_are_agg_invariant(
        (ranks, schedule) in arb_schedule(),
        engine_pick in 0u8..2,
    ) {
        let platform = flat(ranks);
        let mut trace = Trace::new(ranks);
        for r in 0..ranks {
            let rank = Rank(r);
            trace.push(rank, Action::Init);
            for &(kind, bytes, compute) in &schedule {
                trace.push(rank, Action::Compute { amount: compute });
                push_collective(&mut trace, rank, kind, bytes);
            }
            trace.push(rank, Action::Finalize);
        }
        let trace = Arc::new(trace);
        let engine = [ReplayEngine::Smpi, ReplayEngine::Msg][engine_pick as usize];
        let fel = FelImpl::default();
        let base = replay_observed(&platform, &trace, &cfg(engine, fel, 1, false), true).unwrap();
        let agg = replay_observed(&platform, &trace, &cfg(engine, fel, 1, true), true).unwrap();
        assert_agg_identical(&base, &agg, &format!("{engine:?} schedule"));
    }
}
