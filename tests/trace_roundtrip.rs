//! Property tests of the trace artifact across crate boundaries:
//! generator → acquisition → text/binary formats → parser → replay.

use proptest::prelude::*;
use std::sync::Arc;

use tit_replay::prelude::*;
use tit_replay::titrace::{binfmt, files, parse, stream, validate, write};

/// Strategy: a small LU instance configuration.
fn arb_lu() -> impl Strategy<Value = LuConfig> {
    (0u32..3, 2u32..6).prop_map(|(c, log_p)| {
        let class = [LuClass::S, LuClass::W, LuClass::A][c as usize];
        LuConfig::new(class, 1 << log_p).with_steps(2)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any acquired LU trace survives the text round-trip exactly and
    /// validates cleanly.
    #[test]
    fn acquired_trace_roundtrips(lu in arb_lu(), seed in 0u64..1000) {
        let acq = acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, seed);
        prop_assert!(validate::is_valid(&acq.trace));
        let text = write::to_string(&acq.trace);
        let back = parse::parse_merged(&text, lu.procs).unwrap();
        prop_assert_eq!(back, acq.trace);
    }

    /// text ⇄ binary ⇄ Trace agree on any acquired trace: the binary
    /// encoding is lossless, and parallel text decode at any worker
    /// count equals the sequential parse.
    #[test]
    fn acquired_trace_survives_binary_and_parallel_ingestion(
        lu in arb_lu(),
        seed in 0u64..1000,
        workers in 2usize..9,
    ) {
        let acq = acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, seed);
        let from_bin = binfmt::decode(&binfmt::encode(&acq.trace)).unwrap();
        prop_assert_eq!(&from_bin, &acq.trace);
        let text = write::to_string(&acq.trace);
        let parallel =
            stream::parse_merged_parallel(text.as_bytes(), lu.procs, workers).unwrap();
        prop_assert_eq!(&parallel, &acq.trace);
        prop_assert_eq!(write::to_string(&from_bin), text);
    }

    /// Replay is bit-identical whether the trace is ingested from
    /// memory, merged text, a split description, or the binary format.
    #[test]
    fn replay_is_identical_across_ingestion_paths(lu in arb_lu(), seed in 0u64..1000) {
        let trace = Arc::new(
            acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, seed).trace,
        );
        let dir = std::env::temp_dir()
            .join(format!("titr-rt-{}-{seed}-{}", lu.label(), std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let merged = dir.join("lu.trace");
        files::write_merged(&trace, &merged).unwrap();
        let desc = files::write_split(&trace, &dir, "lu").unwrap();
        let bin = dir.join("lu.titb");
        binfmt::write_file(&trace, &bin, None).unwrap();
        let platform = tit_replay::platform::clusters::graphene();
        let cfg = ReplayConfig::improved(2e9);
        let base = replay(&platform, &trace, &cfg).unwrap();
        for input in [
            TraceInput::Memory(Arc::clone(&trace)),
            TraceInput::MergedText(merged),
            TraceInput::Description(desc),
            TraceInput::Binary(bin),
        ] {
            let r = replay_input(&platform, &input, trace.ranks(), &cfg).unwrap();
            prop_assert_eq!(r.time.to_bits(), base.time.to_bits(),
                "{:?}: {} != {}", input, r.time, base.time);
            prop_assert_eq!(&r.rank_times, &base.rank_times, "{:?}", input);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Replay of any valid LU trace terminates (no deadlock) on both
    /// engines, and higher calibrated rates never slow it down.
    #[test]
    fn replay_terminates_and_is_monotone(lu in arb_lu(), seed in 0u64..1000) {
        let trace = Arc::new(
            acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, seed).trace,
        );
        let platform = tit_replay::platform::clusters::graphene();
        for engine in [ReplayEngine::Msg, ReplayEngine::Smpi] {
            let slow = replay(&platform, &trace, &ReplayConfig {
                engine, rate: 1e9, placement: Placement::OnePerNode, copy_model: None,
                sharing: tit_replay::netmodel::SharingPolicy::Bottleneck,
                fel: tit_replay::simkernel::FelImpl::default(),
                threads: ReplayConfig::default_threads(),
                window_s: None,
                collective_agg: false,
            }).unwrap();
            let fast = replay(&platform, &trace, &ReplayConfig {
                engine, rate: 4e9, placement: Placement::OnePerNode, copy_model: None,
                sharing: tit_replay::netmodel::SharingPolicy::Bottleneck,
                fel: tit_replay::simkernel::FelImpl::default(),
                threads: ReplayConfig::default_threads(),
                window_s: None,
                collective_agg: false,
            }).unwrap();
            prop_assert!(slow.time > 0.0);
            prop_assert!(fast.time <= slow.time * (1.0 + 1e-9),
                "{engine:?}: rate 4e9 slower ({} vs {})", fast.time, slow.time);
        }
    }

    /// Counter inflation is never negative in expectation: instrumented
    /// acquisitions measure at least the coarse volume (up to jitter).
    #[test]
    fn instrumented_counters_dominate_coarse(lu in arb_lu()) {
        let coarse = acquire(lu.sources(), Instrumentation::Coarse, CompilerOpt::O0, 1);
        for mode in [Instrumentation::Minimal, Instrumentation::legacy_default()] {
            let inst = acquire(lu.sources(), mode, CompilerOpt::O0, 1);
            let c: f64 = coarse.rank_counters.iter().sum();
            let i: f64 = inst.rank_counters.iter().sum();
            prop_assert!(i > c * 0.995, "{mode:?} measured less than coarse");
        }
    }

    /// The emulated time is invariant under re-runs (determinism) and
    /// strictly positive for any instance.
    #[test]
    fn emulation_determinism(lu in arb_lu()) {
        let tb = Testbed::graphene();
        let a = tb.run_lu(&lu, Instrumentation::None, CompilerOpt::O3).unwrap();
        let b = tb.run_lu(&lu, Instrumentation::None, CompilerOpt::O3).unwrap();
        prop_assert!(a.time > 0.0);
        prop_assert_eq!(a.time, b.time);
        prop_assert_eq!(a.rank_times, b.rank_times);
    }
}
