//! Shape assertions for the paper's experiments, at reduced scale.
//!
//! These tests pin the *qualitative* claims of every figure and table so
//! that regressions in any model parameter are caught: who wins, in what
//! direction errors move, where bands sit. The full-resolution numbers
//! live in EXPERIMENTS.md and are produced by the bench binaries.

use tit_replay::acquisition::mean_rank_counters;
use tit_replay::emulator::Testbed;
use tit_replay::metrics::ErrorBand;
use tit_replay::prelude::*;

const STEPS: u32 = 8;

fn inst(class: LuClass, procs: u32) -> LuConfig {
    LuConfig::new(class, procs).with_steps(STEPS)
}

fn mean_discrepancy(lu: &LuConfig, mode: Instrumentation, opt: CompilerOpt) -> f64 {
    let coarse = mean_rank_counters(|| lu.sources(), Instrumentation::Coarse, opt, 1, 3);
    let inst = mean_rank_counters(|| lu.sources(), mode, opt, 99, 3);
    inst.iter()
        .zip(coarse.iter())
        .map(|(i, c)| (i - c) / c * 100.0)
        .sum::<f64>()
        / coarse.len() as f64
}

/// Table 1/2 shape: instrumentation overhead is positive, grows with the
/// process count, and the modified acquisition (minimal + -O3) reduces it.
#[test]
fn overhead_shrinks_with_the_modifications_and_grows_with_p() {
    let tb = Testbed::bordereau();
    let mut last_old = 0.0;
    for procs in [8u32, 32] {
        let lu = inst(LuClass::B, procs);
        let old = tb
            .overhead_lu(&lu, Instrumentation::legacy_default(), CompilerOpt::O0)
            .unwrap();
        let new = tb
            .overhead_lu(&lu, Instrumentation::Minimal, CompilerOpt::O3)
            .unwrap();
        assert!(old.overhead_percent() > 0.0);
        assert!(
            new.overhead_percent() < old.overhead_percent(),
            "B-{procs}: new {:.1}% !< old {:.1}%",
            new.overhead_percent(),
            old.overhead_percent()
        );
        assert!(
            old.overhead_percent() > last_old,
            "old overhead should grow with P"
        );
        // -O3 shortens the original run (the acquisition-time win).
        assert!(new.original < old.original);
        last_old = old.overhead_percent();
    }
}

/// Figures 1/2 shape: fine-grain instrumentation inflates counters by
/// roughly 10-20%, more for smaller per-rank workloads.
#[test]
fn fine_grain_counter_inflation_band() {
    let b8 = mean_discrepancy(
        &inst(LuClass::B, 8),
        Instrumentation::legacy_default(),
        CompilerOpt::O0,
    );
    let b64 = mean_discrepancy(
        &inst(LuClass::B, 64),
        Instrumentation::legacy_default(),
        CompilerOpt::O0,
    );
    assert!((8.0..18.0).contains(&b8), "B-8 fine inflation {b8}%");
    assert!((10.0..25.0).contains(&b64), "B-64 fine inflation {b64}%");
    assert!(b64 > b8, "inflation should grow with P");
}

/// Figures 4/5 shape: minimal instrumentation drops the inflation to a
/// few percent except for the communication-dominated B-64.
#[test]
fn minimal_counter_inflation_band() {
    let b8 = mean_discrepancy(
        &inst(LuClass::B, 8),
        Instrumentation::Minimal,
        CompilerOpt::O3,
    );
    let b64 = mean_discrepancy(
        &inst(LuClass::B, 64),
        Instrumentation::Minimal,
        CompilerOpt::O3,
    );
    let c8 = mean_discrepancy(
        &inst(LuClass::C, 8),
        Instrumentation::Minimal,
        CompilerOpt::O3,
    );
    assert!(b8 < 6.0, "B-8 minimal inflation {b8}%");
    assert!(
        c8 < 2.0,
        "C-8 minimal inflation {c8}% (paper: close to zero)"
    );
    assert!((4.0..16.0).contains(&b64), "B-64 minimal inflation {b64}%");
    let b8_fine = mean_discrepancy(
        &inst(LuClass::B, 8),
        Instrumentation::legacy_default(),
        CompilerOpt::O0,
    );
    assert!(b8 < b8_fine, "minimal must beat fine");
}

/// Figure 3 shape: legacy error grows strongly (roughly linearly) with
/// the process count.
#[test]
fn legacy_error_grows_with_p() {
    let tb = Testbed::bordereau();
    let predictor = Predictor::new(&tb, Pipeline::legacy(), 5).unwrap();
    let mut errs = Vec::new();
    for procs in [8u32, 16, 32, 64] {
        let p = predictor.predict(&inst(LuClass::B, procs), 6).unwrap();
        errs.push(p.relative_error_percent());
    }
    assert!(
        errs.windows(2).all(|w| w[1] > w[0]),
        "legacy B errors not increasing: {errs:?}"
    );
    assert!(
        errs[3] - errs[0] > 15.0,
        "legacy error growth too weak: {errs:?}"
    );
}

/// Figures 6/7 shape: the improved pipeline's error band is narrow and
/// does not grow with P.
#[test]
fn improved_error_band_is_narrow_and_stable() {
    for tb in [Testbed::bordereau(), Testbed::graphene()] {
        let predictor = Predictor::new(&tb, Pipeline::improved(), 5).unwrap();
        let mut band = ErrorBand::new();
        let mut by_p = Vec::new();
        for procs in [8u32, 16, 32, 64] {
            let p = predictor.predict(&inst(LuClass::B, procs), 6).unwrap();
            band.add(p.relative_error_percent());
            by_p.push(p.relative_error_percent());
        }
        assert!(
            band.within(-20.0, 20.0),
            "{}: improved band {band}",
            tb.platform.name
        );
        // No linear growth: the last point must not continue a steep
        // upward slope (the paper even observes the opposite trend).
        assert!(
            by_p[3] - by_p[0] < 10.0,
            "{}: improved errors still grow: {by_p:?}",
            tb.platform.name
        );
    }
}

/// Figure 7 extra: on graphene, the improved replay slightly
/// *underestimates* (the unmodeled eager copy time).
#[test]
fn graphene_improved_underestimates_slightly() {
    let tb = Testbed::graphene();
    let predictor = Predictor::new(&tb, Pipeline::improved(), 5).unwrap();
    for (class, procs) in [(LuClass::B, 8), (LuClass::C, 16)] {
        let p = predictor.predict(&inst(class, procs), 6).unwrap();
        let e = p.relative_error_percent();
        assert!(
            (-15.0..2.0).contains(&e),
            "{}: expected slight underestimation, got {e:+.1}%",
            p.instance
        );
    }
}

/// The ablation ordering: each individual fix moves the B-grid error
/// band's width no wider than the full legacy configuration.
#[test]
fn ablations_sit_between_legacy_and_improved() {
    use tit_replay::pipeline::AblationKnob;
    let tb = Testbed::bordereau();
    let grid = [(LuClass::B, 8u32), (LuClass::B, 32)];
    let band_of = |pipeline: Pipeline| {
        let predictor = Predictor::new(&tb, pipeline, 5).unwrap();
        let mut band = ErrorBand::new();
        for (c, p) in grid {
            band.add(
                predictor
                    .predict(&inst(c, p), 6)
                    .unwrap()
                    .relative_error_percent()
                    .abs(),
            );
        }
        band
    };
    let improved = band_of(Pipeline::improved());
    let legacy = band_of(Pipeline::legacy());
    assert!(improved.max < legacy.max, "improved must beat legacy");
    // Reverting the SMPI back-end alone must hurt (it is the paper's
    // biggest single contributor on this communication-bound grid).
    let no_smpi = band_of(Pipeline::improved_without(AblationKnob::SmpiBackend));
    assert!(
        no_smpi.max > improved.max,
        "dropping the SMPI back-end should cost accuracy ({} vs {})",
        no_smpi.max,
        improved.max
    );
}

/// The implemented future work: automatic calibration removes the B-8
/// class-proxy outlier of Figure 6.
#[test]
fn future_work_fixes_the_b8_outlier() {
    let tb = Testbed::bordereau();
    let improved = Predictor::new(&tb, Pipeline::improved(), 5).unwrap();
    let future = Predictor::new(&tb, Pipeline::future_work(), 5).unwrap();
    let b8 = inst(LuClass::B, 8);
    let e_improved = improved.predict(&b8, 6).unwrap().relative_error_percent();
    let e_future = future.predict(&b8, 6).unwrap().relative_error_percent();
    assert!(
        e_future.abs() < e_improved.abs(),
        "future-work B-8 {e_future:+.1}% should beat improved {e_improved:+.1}%"
    );
}
