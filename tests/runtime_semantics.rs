//! Cross-crate semantic checks of the two runtimes on hand-crafted
//! communication patterns — the MPI behaviours the paper's analysis
//! hinges on, asserted end-to-end through the public replay API.

use std::sync::Arc;

use tit_replay::prelude::*;
use tit_replay::titrace::Trace;

fn platform() -> Platform {
    PlatformSpec::from_json(
        r#"{
        "name": "sem",
        "kind": { "Flat": {
            "nodes": 8, "host_speed": 1.0e9, "cores": 1, "cache_bytes": 1048576,
            "link_bandwidth": 1.0e8, "link_latency": 1e-5,
            "backbone_bandwidth": 1.0e9, "backbone_latency": 0.0 } }
    }"#,
    )
    .unwrap()
    .build()
}

fn run(trace: Trace, engine: ReplayEngine) -> replay::ReplayResult {
    replay(
        &platform(),
        &Arc::new(trace),
        &ReplayConfig {
            engine,
            rate: 1e9,
            placement: Placement::OnePerNode,
            copy_model: None,
            sharing: tit_replay::netmodel::SharingPolicy::Bottleneck,
            fel: tit_replay::simkernel::FelImpl::default(),
            threads: ReplayConfig::default_threads(),
            window_s: None,
            collective_agg: false,
        },
    )
    .expect("replay failed")
}

/// The defining divergence (Section 3.3): a small message sent long
/// before the receive is posted is (nearly) free for the SMPI receiver
/// — the data is already in memory — while the MSG receiver pays the
/// full transfer after matching.
#[test]
fn late_receiver_semantics_differ_between_engines() {
    let mut t = Trace::new(2);
    t.push(
        Rank(0),
        Action::Send {
            dst: Rank(1),
            bytes: 1024,
        },
    );
    t.push(Rank(1), Action::Compute { amount: 1e9 }); // 1s of local work
    t.push(
        Rank(1),
        Action::Recv {
            src: Rank(0),
            bytes: 1024,
        },
    );
    let smpi = run(t.clone(), ReplayEngine::Smpi);
    let msg = run(t, ReplayEngine::Msg);
    // SMPI: the recv returns essentially at t=1.
    assert!(
        smpi.time < 1.0 + 1e-4,
        "SMPI late recv cost {}",
        smpi.time - 1.0
    );
    // MSG: the transfer starts at t=1 and costs latency + size/bandwidth.
    assert!(
        msg.time > 1.0 + 1e-5,
        "MSG late recv too cheap: {}",
        msg.time - 1.0
    );
    assert!(msg.time > smpi.time);
}

/// Rendezvous: both engines must serialize a large transfer after the
/// receive posts, and the sender blocks until completion.
#[test]
fn rendezvous_blocks_sender_on_both_engines() {
    let bytes = 256 * 1024;
    let mut t = Trace::new(2);
    t.push(
        Rank(0),
        Action::Send {
            dst: Rank(1),
            bytes,
        },
    );
    t.push(Rank(0), Action::Compute { amount: 1.0 }); // sender epilogue
    t.push(Rank(1), Action::Compute { amount: 5e8 });
    t.push(
        Rank(1),
        Action::Recv {
            src: Rank(0),
            bytes,
        },
    );
    let transfer = bytes as f64 / 1e8; // ≥ 2.6ms
    for engine in [ReplayEngine::Smpi, ReplayEngine::Msg] {
        let r = run(t.clone(), engine);
        assert!(
            r.rank_times[0] >= 0.5 + transfer * 0.9,
            "{engine:?}: sender unblocked too early at {}",
            r.rank_times[0]
        );
    }
}

/// Collective agreement: both engines synchronize every rank inside a
/// barrier (nobody exits before the last entry).
#[test]
fn barrier_synchronizes_on_both_engines() {
    let mut t = Trace::new(4);
    for r in 0..4u32 {
        t.push(
            Rank(r),
            Action::Compute {
                amount: (r as f64 + 1.0) * 2.5e8,
            },
        );
        t.push(Rank(r), Action::Barrier);
    }
    for engine in [ReplayEngine::Smpi, ReplayEngine::Msg] {
        let res = run(t.clone(), engine);
        let min = res.rank_times.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            min >= 1.0 - 1e-9,
            "{engine:?}: a rank left the barrier at {min}"
        );
    }
}

/// Wait/WaitAll honour request order: a wait resolves the *oldest*
/// pending request; the program below deadlocks if the runtime resolves
/// the newest instead (the second irecv's message never arrives before
/// the matching send, which happens after the wait).
#[test]
fn wait_resolves_oldest_request() {
    let mut t = Trace::new(2);
    t.push(
        Rank(0),
        Action::Irecv {
            src: Rank(1),
            bytes: 8,
        },
    );
    t.push(
        Rank(0),
        Action::Irecv {
            src: Rank(1),
            bytes: 16,
        },
    );
    t.push(Rank(0), Action::Wait); // must complete the 8-byte irecv
    t.push(
        Rank(0),
        Action::Send {
            dst: Rank(1),
            bytes: 4,
        },
    );
    t.push(Rank(0), Action::Wait); // completes the 16-byte irecv
    t.push(
        Rank(1),
        Action::Send {
            dst: Rank(0),
            bytes: 8,
        },
    );
    t.push(
        Rank(1),
        Action::Recv {
            src: Rank(0),
            bytes: 4,
        },
    );
    t.push(
        Rank(1),
        Action::Send {
            dst: Rank(0),
            bytes: 16,
        },
    );
    for engine in [ReplayEngine::Smpi, ReplayEngine::Msg] {
        let r = run(t.clone(), engine);
        assert!(r.time > 0.0, "{engine:?} completed");
    }
}

/// Contention: two simultaneous flows into the same receiver share its
/// downlink; the makespan must exceed a single transfer's time.
#[test]
fn incast_contention_is_modeled() {
    let bytes = 1_000_000; // rendezvous-sized payload
    let mut t = Trace::new(3);
    t.push(
        Rank(0),
        Action::Irecv {
            src: Rank(1),
            bytes,
        },
    );
    t.push(
        Rank(0),
        Action::Irecv {
            src: Rank(2),
            bytes,
        },
    );
    t.push(Rank(0), Action::WaitAll);
    t.push(
        Rank(1),
        Action::Send {
            dst: Rank(0),
            bytes,
        },
    );
    t.push(
        Rank(2),
        Action::Send {
            dst: Rank(0),
            bytes,
        },
    );
    let r = run(t, ReplayEngine::Smpi);
    let single = bytes as f64 / 1e8;
    assert!(
        r.time > 1.7 * single,
        "incast not contended: {} vs single {}",
        r.time,
        single
    );
}

/// An intentionally deadlocking trace is reported as an error, not a
/// hang or a panic.
#[test]
fn cyclic_rendezvous_deadlock_is_reported() {
    let bytes = 512 * 1024;
    let mut t = Trace::new(2);
    // Both send rendezvous-sized messages first: classic deadlock.
    t.push(
        Rank(0),
        Action::Send {
            dst: Rank(1),
            bytes,
        },
    );
    t.push(
        Rank(0),
        Action::Recv {
            src: Rank(1),
            bytes,
        },
    );
    t.push(
        Rank(1),
        Action::Send {
            dst: Rank(0),
            bytes,
        },
    );
    t.push(
        Rank(1),
        Action::Recv {
            src: Rank(0),
            bytes,
        },
    );
    let err = replay(&platform(), &Arc::new(t), &ReplayConfig::improved(1e9)).unwrap_err();
    assert!(err.contains("deadlock"), "{err}");
}

/// Placement matters: packing all ranks on one node turns every message
/// into a loopback copy and must be faster than crossing the switch for
/// a communication-heavy trace.
#[test]
fn packed_placement_uses_loopback() {
    let mut t = Trace::new(2);
    for _ in 0..200 {
        t.push(
            Rank(0),
            Action::Send {
                dst: Rank(1),
                bytes: 32 * 1024,
            },
        );
        t.push(
            Rank(1),
            Action::Recv {
                src: Rank(0),
                bytes: 32 * 1024,
            },
        );
        t.push(
            Rank(1),
            Action::Send {
                dst: Rank(0),
                bytes: 32 * 1024,
            },
        );
        t.push(
            Rank(0),
            Action::Recv {
                src: Rank(1),
                bytes: 32 * 1024,
            },
        );
    }
    let trace = Arc::new(t);
    let p = platform();
    let spread = replay(&p, &trace, &ReplayConfig::improved(1e9)).unwrap();
    // A dual-core node lets PackCores co-locate both ranks.
    let fat = PlatformSpec::from_json(
        r#"{
        "name": "fat",
        "kind": { "Flat": {
            "nodes": 2, "host_speed": 1.0e9, "cores": 2, "cache_bytes": 1048576,
            "link_bandwidth": 1.0e8, "link_latency": 1e-5,
            "backbone_bandwidth": 1.0e9, "backbone_latency": 0.0 } }
    }"#,
    )
    .unwrap()
    .build();
    let packed = replay(
        &fat,
        &trace,
        &ReplayConfig {
            engine: ReplayEngine::Smpi,
            rate: 1e9,
            placement: Placement::PackCores,
            copy_model: None,
            sharing: tit_replay::netmodel::SharingPolicy::Bottleneck,
            fel: tit_replay::simkernel::FelImpl::default(),
            threads: ReplayConfig::default_threads(),
            window_s: None,
            collective_agg: false,
        },
    )
    .unwrap();
    assert!(
        packed.time < spread.time,
        "loopback {} should beat network {}",
        packed.time,
        spread.time
    );
}

/// The fast bottleneck sharing model must stay close to the exact
/// max-min reference on a real workload (it may only *under*-allocate,
/// so replay times are never shorter).
#[test]
fn fast_sharing_model_bounds_the_exact_one() {
    use tit_replay::netmodel::SharingPolicy;
    use tit_replay::smpi::{run_smpi, FixedRateHooks, SmpiConfig};
    let lu = LuConfig::new(LuClass::S, 8).with_steps(3);
    let p = tit_replay::platform::clusters::graphene();
    let hosts: Vec<tit_replay::platform::HostId> =
        (0..8).map(tit_replay::platform::HostId).collect();
    let time_with = |policy| {
        let cfg = SmpiConfig {
            sharing: policy,
            ..SmpiConfig::ground_truth()
        };
        run_smpi(
            &p,
            &hosts,
            lu.sources(),
            cfg,
            Box::new(FixedRateHooks::uniform(2e9, 8)),
        )
        .unwrap()
        .total_time
    };
    let fast = time_with(SharingPolicy::Bottleneck);
    let exact = time_with(SharingPolicy::MaxMin);
    assert!(
        fast >= exact * (1.0 - 1e-9),
        "fast model allocated more than max-min allows: {fast} < {exact}"
    );
    let gap = (fast - exact) / exact;
    assert!(
        gap < 0.05,
        "fast-model divergence {:.2}% too large",
        gap * 100.0
    );
}

/// The ladder-queue FEL must not change results at all: an LU B-8
/// replay's simulated times, per-rank finish times, and event counts are
/// bit-identical to the binary-heap FEL on both back-ends.
#[test]
fn lu_b8_replay_is_bit_identical_across_fel_impls() {
    use tit_replay::msgsim::{run_msg, MsgConfig};
    use tit_replay::simkernel::FelImpl;
    use tit_replay::smpi::{run_smpi, FixedRateHooks, SmpiConfig};

    let p = tit_replay::platform::clusters::graphene();
    let hosts: Vec<tit_replay::platform::HostId> =
        (0..8).map(tit_replay::platform::HostId).collect();
    let lu = LuConfig::new(LuClass::B, 8).with_steps(2);
    let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<u64>>();

    let smpi_with = |fel| {
        let cfg = SmpiConfig {
            fel,
            ..SmpiConfig::smpi_replay()
        };
        run_smpi(
            &p,
            &hosts,
            lu.sources(),
            cfg,
            Box::new(FixedRateHooks::uniform(2e9, 8)),
        )
        .unwrap()
    };
    let heap = smpi_with(FelImpl::Heap);
    let ladder = smpi_with(FelImpl::Ladder);
    assert_eq!(heap.total_time.to_bits(), ladder.total_time.to_bits());
    assert_eq!(bits(&heap.rank_times), bits(&ladder.rank_times));
    assert_eq!(heap.events, ladder.events);

    let msg_with = |fel| {
        let cfg = MsgConfig {
            fel,
            ..MsgConfig::legacy()
        };
        run_msg(
            &p,
            &hosts,
            lu.sources(),
            cfg,
            Box::new(FixedRateHooks::uniform(2e9, 8)),
        )
        .unwrap()
    };
    let heap = msg_with(FelImpl::Heap);
    let ladder = msg_with(FelImpl::Ladder);
    assert_eq!(heap.total_time.to_bits(), ladder.total_time.to_bits());
    assert_eq!(bits(&heap.rank_times), bits(&ladder.rank_times));
    assert_eq!(heap.events, ladder.events);
}
