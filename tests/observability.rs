//! End-to-end checks of the observability surface: the `titreplay`
//! CLI's export flags, the `inspect` mode, and the prelude-level
//! observed-replay API.

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use tit_replay::prelude::*;

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("titr-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes an LU S-8 trace (text) plus a platform spec, returning their
/// paths.
fn stage_inputs(dir: &std::path::Path) -> (PathBuf, PathBuf) {
    let lu = LuConfig::new(LuClass::S, 8).with_steps(3);
    let acq = acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1);
    let trace_path = dir.join("lu.trace");
    tit_replay::titrace::files::write_merged(&acq.trace, &trace_path).unwrap();
    let spec = tit_replay::platform::PlatformSpec {
        name: "bordereau".into(),
        kind: tit_replay::platform::spec::SpecKind::Flat {
            nodes: 93,
            host_speed: tit_replay::platform::clusters::BORDEREAU_SPEED,
            cores: 4,
            cache_bytes: 1 << 20,
            link_bandwidth: 1.21e8,
            link_latency: 12e-6,
            backbone_bandwidth: 1.2e9,
            backbone_latency: 4e-6,
        },
    };
    let spec_path = dir.join("platform.json");
    std::fs::write(&spec_path, spec.to_json()).unwrap();
    (trace_path, spec_path)
}

fn titreplay() -> Command {
    Command::new(env!("CARGO_BIN_EXE_titreplay"))
}

fn stdout_field(stdout: &str, key: &str) -> String {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("missing '{key}' in output:\n{stdout}"))
        .to_string()
}

#[test]
fn cli_replay_emits_observability_artifacts() {
    let dir = workdir("cli");
    let (trace, plat) = stage_inputs(&dir);
    let trace_out = dir.join("chrome.json");
    let csv_out = dir.join("states.csv");
    let metrics_out = dir.join("metrics.json");
    let manifest_out = dir.join("manifest.json");
    let cp_out = dir.join("critical_path.json");
    let output = titreplay()
        .args([
            "replay",
            "--platform",
            plat.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--ranks",
            "8",
            "--rate",
            "2e9",
            "--engine",
            "smpi",
            "--no-cache",
            "--trace-out",
            trace_out.to_str().unwrap(),
            "--state-csv",
            csv_out.to_str().unwrap(),
            "--metrics",
            metrics_out.to_str().unwrap(),
            "--manifest",
            manifest_out.to_str().unwrap(),
            "--critical-path",
            cp_out.to_str().unwrap(),
        ])
        .output()
        .expect("titreplay failed to launch");
    assert!(
        output.status.success(),
        "titreplay failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    // The critical path must end exactly at the reported simulated time
    // (same formatting, same value to the printed precision).
    let sim = stdout_field(&stdout, "simulated_time_s");
    let cp = stdout_field(&stdout, "critical_path_end_s");
    assert_eq!(sim, cp, "critical path end differs from simulated time");

    let chrome = std::fs::read_to_string(&trace_out).unwrap();
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"ph\":\"X\""));
    assert!(chrome.contains("compute"));
    let csv = std::fs::read_to_string(&csv_out).unwrap();
    assert!(csv.starts_with("rank,start_s,end_s,state,peer,bytes"));
    assert!(csv.lines().count() > 8);
    let metrics = std::fs::read_to_string(&metrics_out).unwrap();
    assert!(metrics.contains("\"engine\": \"smpi\""));
    assert!(metrics.contains("\"fel_profile\""));
    assert!(metrics.contains("\"network\""));
    let manifest = std::fs::read_to_string(&manifest_out).unwrap();
    assert!(manifest.contains("\"trace_signature\""));
    assert!(manifest.contains("\"wall_time_s\""));
    assert!(manifest.contains("\"metrics\": {"));
    let cp_json = std::fs::read_to_string(&cp_out).unwrap();
    assert!(cp_json.contains("\"end_s\""));
    assert!(cp_json.contains("\"steps\""));
    assert!(cp_json.contains("\"breakdown\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_trace_export_is_stable_across_runs() {
    let dir = workdir("stable");
    let (trace, plat) = stage_inputs(&dir);
    let mut exports = Vec::new();
    for i in 0..2 {
        let out = dir.join(format!("chrome{i}.json"));
        let status = titreplay()
            .args([
                "--platform",
                plat.to_str().unwrap(),
                "--trace",
                trace.to_str().unwrap(),
                "--ranks",
                "8",
                "--rate",
                "2e9",
                "--no-cache",
                "--trace-out",
                out.to_str().unwrap(),
            ])
            .output()
            .expect("titreplay failed to launch");
        assert!(status.status.success());
        exports.push(std::fs::read(&out).unwrap());
    }
    assert_eq!(exports[0], exports[1], "chrome trace differs across runs");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_inspect_summarises_without_replaying() {
    let dir = workdir("inspect");
    let (trace, _plat) = stage_inputs(&dir);
    let output = titreplay()
        .args([
            "inspect",
            "--trace",
            trace.to_str().unwrap(),
            "--ranks",
            "8",
        ])
        .output()
        .expect("titreplay failed to launch");
    assert!(
        output.status.success(),
        "inspect failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert_eq!(stdout_field(&stdout, "ranks"), "8");
    assert!(stdout_field(&stdout, "actions").parse::<u64>().unwrap() > 100);
    assert!(stdout_field(&stdout, "sends").parse::<u64>().unwrap() > 0);
    assert!(
        stdout_field(&stdout, "payload_bytes")
            .parse::<u64>()
            .unwrap()
            > 0
    );
    assert_eq!(stdout_field(&stdout, "validation_issues"), "0");
    assert!(stdout_field(&stdout, "trace_signature").starts_with("text:"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prelude_exposes_observed_replay() {
    let lu = LuConfig::new(LuClass::S, 4).with_steps(3);
    let trace = Arc::new(acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace);
    let p = tit_replay::platform::clusters::bordereau();
    let cfg = ReplayConfig::improved(2e9);
    let report: ReplayReport = replay_observed(&p, &trace, &cfg, true).unwrap();
    assert_eq!(report.metrics.engine, "smpi");
    let path: CriticalPath = report.critical_path().unwrap();
    assert_eq!(path.end_s.to_bits(), report.result.time.to_bits());
    let log = report.spans.as_ref().unwrap();
    assert!(!chrome_trace(log).is_empty());
    assert!(state_csv(log).lines().count() > 1);
    assert!(report.metrics.to_json().contains("\"simulated_time_s\""));
}
