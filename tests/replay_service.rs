//! End-to-end tests for `titserved`: the service must answer a what-if
//! query with exactly the bytes a direct `titreplay --manifest` run
//! produces (modulo the wall-time line), deduplicate concurrent
//! identical queries into one execution, and serve memoized repeats
//! byte-identically without replaying.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use tit_replay::prelude::*;
use tit_replay::replay;
use tit_replay::titrace::{files, TraceInput};
use titserved::client;
use titserved::server::{Server, ServerConfig};

/// Writes a small LU trace as merged text and returns its path.
fn trace_file(dir: &Path) -> PathBuf {
    let lu = LuConfig::new(LuClass::S, 4).with_steps(3);
    let trace = acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace;
    let path = dir.join("lu.trace");
    files::write_merged(&trace, &path).unwrap();
    path
}

fn spec(host_speed: f64) -> PlatformSpec {
    PlatformSpec {
        name: "svc-test".into(),
        kind: tit_replay::platform::spec::SpecKind::Flat {
            nodes: 4,
            host_speed,
            cores: 2,
            cache_bytes: 1 << 20,
            link_bandwidth: 1.25e8,
            link_latency: 2.5e-5,
            backbone_bandwidth: 1.25e9,
            backbone_latency: 5e-6,
        },
    }
}

fn start_server(workers: usize) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            sidecar: true,
            access_log: false,
        },
    )
    .unwrap();
    let addr = format!("127.0.0.1:{}", server.addr().port());
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

fn query_body(trace: &Path, spec: &PlatformSpec, rate: f64) -> String {
    format!(
        "{{\"trace\": \"{}\", \"ranks\": 4, \"platform\": {}, \"config\": {{\"rate\": {rate}}}}}",
        trace.display(),
        spec.to_json()
    )
}

/// Drops the one non-deterministic manifest line.
fn without_wall_time(manifest: &str) -> String {
    manifest
        .lines()
        .filter(|l| !l.contains("\"wall_time_s\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The manifest a direct CLI run of the same inputs writes, assembled
/// through the identical library path `titreplay` uses.
fn cli_manifest(trace_path: &Path, spec: &PlatformSpec, rate: f64) -> String {
    let platform = spec.build();
    let input = TraceInput::detect(trace_path).unwrap();
    let signature = replay::trace_signature(&input, 4);
    let trace = tit_replay::titrace::stream::load_trace(&input, 4).unwrap();
    let input = TraceInput::Memory(Arc::new(trace));
    let config = ReplayConfig {
        engine: ReplayEngine::Smpi,
        rate,
        placement: Placement::OnePerNode,
        copy_model: None,
        sharing: tit_replay::netmodel::SharingPolicy::Bottleneck,
        fel: tit_replay::simkernel::FelImpl::default(),
        threads: ReplayConfig::default_threads(),
        window_s: None,
        collective_agg: false,
    };
    let report = replay_input_observed(&platform, &input, 4, &config, false).unwrap();
    replay::manifest(&platform, &signature, &config, &report, 0.0).to_json()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("titserved-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reads one sample's value out of a Prometheus text scrape.
fn metric_value(metrics: &str, series: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| {
            l.strip_prefix(series)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metrics missing series {series}:\n{metrics}"))
}

#[test]
fn concurrent_identical_queries_execute_once_and_byte_match_the_cli() {
    let dir = temp_dir("dedup");
    let trace = trace_file(&dir);
    let spec = spec(1e9);
    let (addr, handle) = start_server(4);
    let body = query_body(&trace, &spec, 2e9);

    // N identical queries in flight at once.
    const N: usize = 6;
    let responses: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| s.spawn(|| client::predict(&addr, &body).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &responses {
        assert_eq!(r.status, 200, "body: {}", String::from_utf8_lossy(&r.body));
    }
    // All N bodies are byte-identical: one execution's bytes, shared.
    let first = &responses[0].body;
    for r in &responses[1..] {
        assert_eq!(&r.body, first);
    }
    // Exactly one replay ran; the other N-1 joined or hit.
    let stats = client::get(&addr, "/stats").unwrap();
    let stats = String::from_utf8(stats.body).unwrap();
    assert!(stats.contains("\"executions\": 1"), "stats: {stats}");
    assert!(
        stats.contains(&format!("\"queries\": {N}")),
        "stats: {stats}"
    );
    // The two unbounded caches report their growth.
    assert!(stats.contains("\"uptime_s\":"), "stats: {stats}");
    assert!(stats.contains("\"memo_bytes\":"), "stats: {stats}");
    assert!(stats.contains("\"trace_cache_bytes\":"), "stats: {stats}");
    // Every response names the request that produced it.
    for r in &responses {
        assert!(
            r.headers.contains_key("x-titserved-request-id"),
            "missing request id header"
        );
    }

    // The Prometheus scrape tells the same story in valid
    // text-exposition shape.
    let scrape = client::get(&addr, "/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    assert!(
        scrape
            .headers
            .get("content-type")
            .is_some_and(|c| c.starts_with("text/plain")),
        "metrics content type: {:?}",
        scrape.headers.get("content-type")
    );
    let metrics = String::from_utf8(scrape.body).unwrap();
    for header in [
        "# TYPE titserved_requests_total counter",
        "# TYPE titserved_request_duration_seconds histogram",
        "# TYPE titserved_cache_total counter",
        "# TYPE titserved_queue_depth gauge",
    ] {
        assert!(
            metrics.contains(header),
            "metrics missing {header}:\n{metrics}"
        );
    }
    // Every non-comment line is `series value` with a parseable value.
    for line in metrics.lines().filter(|l| !l.starts_with('#')) {
        let value = line.rsplit(' ').next().unwrap();
        assert!(value.parse::<f64>().is_ok(), "bad sample line: {line:?}");
    }
    let predict_series = "titserved_requests_total{endpoint=\"/predict\"}";
    assert_eq!(metric_value(&metrics, predict_series), N as f64);
    assert_eq!(metric_value(&metrics, "titserved_executions_total"), 1.0);
    assert_eq!(
        metric_value(&metrics, "titserved_cache_total{disposition=\"miss\"}"),
        1.0
    );
    let hits_before = metric_value(&metrics, "titserved_cache_total{disposition=\"hit\"}");
    let joined_before = metric_value(&metrics, "titserved_cache_total{disposition=\"joined\"}");
    assert_eq!(hits_before + joined_before, (N - 1) as f64);
    // The latency histogram saw all six predicts; cumulative buckets
    // close at the count.
    let lat_count = "titserved_request_duration_seconds_count{endpoint=\"/predict\"}";
    assert_eq!(metric_value(&metrics, lat_count), N as f64);
    assert_eq!(
        metric_value(
            &metrics,
            "titserved_request_duration_seconds_bucket{endpoint=\"/predict\",le=\"+Inf\"}"
        ),
        N as f64
    );

    // The response byte-matches a direct CLI-path manifest modulo the
    // wall-time line.
    let served = String::from_utf8(first.clone()).unwrap();
    let direct = cli_manifest(&trace, &spec, 2e9);
    assert_eq!(without_wall_time(&served), without_wall_time(&direct));

    // A repeat after completion is a memo hit: identical bytes
    // (including wall time — the stored execution's), no new run.
    let again = client::predict(&addr, &body).unwrap();
    assert_eq!(again.headers.get("x-titserved-cache").unwrap(), "hit");
    assert_eq!(&again.body, first);
    let stats = String::from_utf8(client::get(&addr, "/stats").unwrap().body).unwrap();
    assert!(stats.contains("\"executions\": 1"), "stats: {stats}");

    // Counters are monotone: the repeat advanced the predict counter
    // and the hit counter, nothing regressed.
    let metrics2 = String::from_utf8(client::get(&addr, "/metrics").unwrap().body).unwrap();
    assert_eq!(metric_value(&metrics2, predict_series), (N + 1) as f64);
    assert_eq!(metric_value(&metrics2, "titserved_executions_total"), 1.0);
    assert_eq!(
        metric_value(&metrics2, "titserved_cache_total{disposition=\"hit\"}"),
        hits_before + 1.0
    );
    for line in metrics.lines().filter(|l| !l.starts_with('#')) {
        let series = line.rsplit_once(' ').unwrap().0;
        if series.contains("_total")
            || series.contains("_bucket")
            || series.contains("_count")
            || series.contains("_sum")
        {
            let before = metric_value(&metrics, series);
            let after = metric_value(&metrics2, series);
            assert!(
                after >= before,
                "series {series} regressed: {before} -> {after}"
            );
        }
    }

    client::post(&addr, "/shutdown", "").unwrap();
    handle.join().unwrap();
}

#[test]
fn distinct_questions_run_distinct_replays_but_share_the_trace() {
    let dir = temp_dir("distinct");
    let trace = trace_file(&dir);
    let (addr, handle) = start_server(2);

    let fast = client::predict(&addr, &query_body(&trace, &spec(2e9), 2e9)).unwrap();
    let slow = client::predict(&addr, &query_body(&trace, &spec(5e8), 2e9)).unwrap();
    assert_eq!(fast.status, 200);
    assert_eq!(slow.status, 200);
    assert_ne!(
        fast.body, slow.body,
        "different platforms, different predictions"
    );

    let stats = String::from_utf8(client::get(&addr, "/stats").unwrap().body).unwrap();
    assert!(stats.contains("\"executions\": 2"), "stats: {stats}");
    // One decoded trace served both questions.
    assert!(
        stats.contains("\"trace_cache_entries\": 1"),
        "stats: {stats}"
    );
    assert!(stats.contains("\"memo_entries\": 2"), "stats: {stats}");

    client::post(&addr, "/shutdown", "").unwrap();
    handle.join().unwrap();
}

#[test]
fn inspect_healthz_and_errors() {
    let dir = temp_dir("aux");
    let trace = trace_file(&dir);
    let (addr, handle) = start_server(1);

    let health = client::get(&addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"ok\n");

    let inspect = client::post(
        &addr,
        "/inspect",
        &format!("{{\"trace\": \"{}\", \"ranks\": 4}}", trace.display()),
    )
    .unwrap();
    assert_eq!(inspect.status, 200);
    let body = String::from_utf8(inspect.body).unwrap();
    assert!(body.contains("\"ranks\": 4"), "inspect: {body}");
    assert!(body.contains("\"content_checksum\""), "inspect: {body}");

    let bad = client::predict(&addr, "{not json").unwrap();
    assert_eq!(bad.status, 400);
    let missing = client::predict(
        &addr,
        &query_body(Path::new("/nonexistent/x.trace"), &spec(1e9), 2e9),
    )
    .unwrap();
    assert_eq!(missing.status, 422);
    let nowhere = client::get(&addr, "/nope").unwrap();
    assert_eq!(nowhere.status, 404);

    client::post(&addr, "/shutdown", "").unwrap();
    handle.join().unwrap();
}
