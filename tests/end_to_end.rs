//! End-to-end integration tests: full acquisition → calibration → replay
//! chains across crates, exercised through the public API only.

use std::sync::Arc;

use tit_replay::prelude::*;

fn small(class: LuClass, procs: u32) -> LuConfig {
    LuConfig::new(class, procs).with_steps(4)
}

#[test]
fn improved_pipeline_predicts_within_tolerance() {
    let testbed = Testbed::bordereau();
    let predictor = Predictor::new(&testbed, Pipeline::improved(), 1).unwrap();
    for (class, procs) in [(LuClass::S, 4), (LuClass::S, 16), (LuClass::W, 8)] {
        let p = predictor.predict(&small(class, procs), 2).unwrap();
        assert!(
            p.relative_error_percent().abs() < 20.0,
            "{}: {:+.1}%",
            p.instance,
            p.relative_error_percent()
        );
    }
}

#[test]
fn legacy_pipeline_runs_and_is_worse_at_scale() {
    let testbed = Testbed::bordereau();
    let legacy = Predictor::new(&testbed, Pipeline::legacy(), 1).unwrap();
    let improved = Predictor::new(&testbed, Pipeline::improved(), 1).unwrap();
    // At 16 ranks of a small class, the message flood dominates and the
    // legacy back-end overestimates clearly more.
    let inst = small(LuClass::S, 16);
    let l = legacy.predict(&inst, 3).unwrap();
    let i = improved.predict(&inst, 3).unwrap();
    assert!(
        l.relative_error_percent().abs() > i.relative_error_percent().abs(),
        "legacy {:+.1}% vs improved {:+.1}%",
        l.relative_error_percent(),
        i.relative_error_percent()
    );
}

#[test]
fn full_chain_is_deterministic() {
    let testbed = Testbed::graphene();
    let run = || {
        Predictor::new(&testbed, Pipeline::improved(), 9)
            .unwrap()
            .predict(&small(LuClass::S, 8), 4)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.real_seconds, b.real_seconds);
    assert_eq!(a.simulated_seconds, b.simulated_seconds);
}

#[test]
fn acquired_traces_are_structurally_valid_across_modes_and_sizes() {
    for procs in [4u32, 8, 32] {
        for mode in [Instrumentation::Minimal, Instrumentation::legacy_default()] {
            let lu = small(LuClass::S, procs);
            let acq = acquire(lu.sources(), mode, CompilerOpt::O3, 77);
            assert!(
                tit_replay::titrace::validate::is_valid(&acq.trace),
                "invalid trace for {} under {mode:?}",
                lu.label()
            );
        }
    }
}

#[test]
fn trace_file_roundtrip_preserves_replay_time() {
    // Serialize a trace to its text format, parse it back, and check the
    // replay outcome is bit-identical — the on-disk artifact carries
    // everything the simulator needs.
    let lu = small(LuClass::S, 8);
    let acq = acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 5);
    let text = tit_replay::titrace::write::to_string(&acq.trace);
    let parsed = tit_replay::titrace::parse::parse_merged(&text, 8).unwrap();
    let platform = tit_replay::platform::clusters::graphene();
    let cfg = ReplayConfig::improved(2e9);
    let a = replay(&platform, &Arc::new(acq.trace), &cfg).unwrap();
    let b = replay(&platform, &Arc::new(parsed), &cfg).unwrap();
    assert_eq!(a.time, b.time);
}

#[test]
fn per_rank_fragments_reassemble() {
    // Distributed acquisition: every rank writes its own fragment; the
    // merged trace replays identically.
    let lu = small(LuClass::S, 4);
    let acq = acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 8);
    let fragments: Vec<String> = (0..4)
        .map(|r| tit_replay::titrace::write::rank_to_string(&acq.trace, Rank(r)))
        .collect();
    let refs: Vec<&str> = fragments.iter().map(String::as_str).collect();
    let reassembled = tit_replay::titrace::parse::parse_per_rank(&refs).unwrap();
    assert_eq!(reassembled, acq.trace);
}

#[test]
fn calibration_rates_are_physical() {
    let testbed = Testbed::bordereau();
    let cal = calibrate(
        &testbed,
        CalibrationMethod::CacheAware,
        CompilerOpt::O3,
        &[LuClass::B, LuClass::C],
        Instrumentation::Coarse,
        3,
    )
    .unwrap();
    let base = tit_replay::platform::clusters::BORDEREAU_SPEED;
    assert!(cal.base_rate <= base * 1.02);
    assert!(cal.base_rate >= base * 0.5);
    for (class, rate) in &cal.class_rates {
        assert!(
            *rate <= cal.base_rate * 1.02,
            "{class} rate above cache-resident rate"
        );
        assert!(*rate >= base * 0.4);
    }
}

#[test]
fn platform_spec_json_drives_a_replay() {
    // The user-facing workflow: platform.json in, simulated time out.
    let json = r#"{
        "name": "from-json",
        "kind": { "Flat": {
            "nodes": 8, "host_speed": 2.0e9, "cores": 4, "cache_bytes": 2097152,
            "link_bandwidth": 1.25e8, "link_latency": 2e-5,
            "backbone_bandwidth": 1.25e9, "backbone_latency": 4e-6 } }
    }"#;
    let platform = PlatformSpec::from_json(json).unwrap().build();
    let lu = small(LuClass::S, 8);
    let trace = Arc::new(acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace);
    let sim = replay(&platform, &trace, &ReplayConfig::improved(2.0e9)).unwrap();
    assert!(sim.time > 0.0);
}
