#!/usr/bin/env bash
# CI gate: build, test, lint, and smoke-run the benches.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
# Smoke mode: each bench target runs its bodies once, no sampling.
cargo bench -p bench -- --test
