#!/usr/bin/env bash
# CI gate: build, test, lint, smoke-run the benches, and exercise the
# trace ingestion paths end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
# Smoke mode: each bench target runs its bodies once, no sampling.
cargo bench -p bench -- --test

# FEL smoke: scaled-down heap-vs-ladder churn pass; asserts the profile
# counters are coherent and the ladder steady state allocation-free.
cargo run --release -p bench --bin perf_baseline -- --smoke

# Ingest smoke: generate an LU class-B trace, pack it, and check that
# text (sequential and parallel) and binary ingestion replay to the
# same simulated time, and that pack -> unpack round-trips the text.
ingest_dir="$(mktemp -d)"
trap 'rm -rf "$ingest_dir"' EXIT
gen=target/release/titrace-gen
rep=target/release/titreplay
"$gen" --class B --procs 8 --steps 10 --out "$ingest_dir/lu.trace"
"$rep" trace pack "$ingest_dir/lu.trace" "$ingest_dir/lu.titb" --ranks 8
"$rep" trace unpack "$ingest_dir/lu.titb" "$ingest_dir/lu.unpacked.trace"
cmp "$ingest_dir/lu.trace" "$ingest_dir/lu.unpacked.trace"
plat="$ingest_dir/lu.trace.platform.json"
run_replay() { "$rep" --platform "$plat" --ranks 8 --rate 2e9 "$@" | awk '{print $2}'; }
t_text=$(TITR_SWEEP_THREADS=1 run_replay --trace "$ingest_dir/lu.trace" --no-cache)
t_par=$(TITR_SWEEP_THREADS=4 run_replay --trace "$ingest_dir/lu.trace" --no-cache)
t_bin=$(run_replay --trace "$ingest_dir/lu.titb")
# First cached run stores the side-car, second must hit it.
t_store=$(run_replay --trace "$ingest_dir/lu.trace")
[ -f "$ingest_dir/lu.trace.titb" ] || { echo "side-car cache not written" >&2; exit 1; }
t_cache=$("$rep" --platform "$plat" --ranks 8 --rate 2e9 --trace "$ingest_dir/lu.trace" \
    2>"$ingest_dir/cache.log" | awk '{print $2}')
grep -q "trace cache: hit" "$ingest_dir/cache.log" \
    || { echo "side-car cache not hit on second run" >&2; exit 1; }
for t in "$t_par" "$t_bin" "$t_store" "$t_cache"; do
    [ "$t" = "$t_text" ] || {
        echo "ingestion paths disagree: $t_text vs $t" >&2
        exit 1
    }
done
echo "INGEST_SMOKE ok (simulated_time_s $t_text across text/parallel/titb/cache)"
