#!/usr/bin/env bash
# CI gate: build, test, lint, smoke-run the benches, and exercise the
# trace ingestion paths end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check
# Smoke mode: each bench target runs its bodies once, no sampling.
cargo bench -p bench -- --test

# FEL smoke: scaled-down heap-vs-ladder churn pass; asserts the profile
# counters are coherent and the ladder steady state allocation-free.
cargo run --release -p bench --bin perf_baseline -- --smoke

# Ingest smoke: generate an LU class-B trace, pack it, and check that
# text (sequential and parallel) and binary ingestion replay to the
# same simulated time, and that pack -> unpack round-trips the text.
ingest_dir="$(mktemp -d)"
trap 'rm -rf "$ingest_dir"' EXIT
gen=target/release/titrace-gen
rep=target/release/titreplay
"$gen" --class B --procs 8 --steps 10 --out "$ingest_dir/lu.trace"
"$rep" trace pack "$ingest_dir/lu.trace" "$ingest_dir/lu.titb" --ranks 8
"$rep" trace unpack "$ingest_dir/lu.titb" "$ingest_dir/lu.unpacked.trace"
cmp "$ingest_dir/lu.trace" "$ingest_dir/lu.unpacked.trace"
plat="$ingest_dir/lu.trace.platform.json"
run_replay() { "$rep" --platform "$plat" --ranks 8 --rate 2e9 "$@" | awk '{print $2}'; }
t_text=$(TITR_SWEEP_THREADS=1 run_replay --trace "$ingest_dir/lu.trace" --no-cache)
t_par=$(TITR_SWEEP_THREADS=4 run_replay --trace "$ingest_dir/lu.trace" --no-cache)
t_bin=$(run_replay --trace "$ingest_dir/lu.titb")
# First cached run stores the side-car, second must hit it.
t_store=$(run_replay --trace "$ingest_dir/lu.trace")
[ -f "$ingest_dir/lu.trace.titb" ] || { echo "side-car cache not written" >&2; exit 1; }
t_cache=$("$rep" --platform "$plat" --ranks 8 --rate 2e9 --trace "$ingest_dir/lu.trace" \
    2>"$ingest_dir/cache.log" | awk '{print $2}')
grep -q "trace cache: hit" "$ingest_dir/cache.log" \
    || { echo "side-car cache not hit on second run" >&2; exit 1; }
for t in "$t_par" "$t_bin" "$t_store" "$t_cache"; do
    [ "$t" = "$t_text" ] || {
        echo "ingestion paths disagree: $t_text vs $t" >&2
        exit 1
    }
done
echo "INGEST_SMOKE ok (simulated_time_s $t_text across text/parallel/titb/cache)"

# Observability smoke: replay an LU class-S trace with the recorder
# enabled, check that the exported artifacts are valid JSON, and that
# the critical path ends exactly at the reported simulated time.
"$gen" --class S --procs 8 --steps 10 --out "$ingest_dir/lu-s.trace"
splat="$ingest_dir/lu-s.trace.platform.json"
"$rep" --platform "$splat" --ranks 8 --rate 2e9 --trace "$ingest_dir/lu-s.trace" \
    --no-cache \
    --trace-out "$ingest_dir/chrome.json" \
    --state-csv "$ingest_dir/states.csv" \
    --metrics "$ingest_dir/metrics.json" \
    --manifest "$ingest_dir/manifest.json" \
    --critical-path "$ingest_dir/critical_path.json" \
    >"$ingest_dir/obs.out" 2>/dev/null
t_sim=$(awk '$1 == "simulated_time_s" {print $2}' "$ingest_dir/obs.out")
t_cp=$(awk '$1 == "critical_path_end_s" {print $2}' "$ingest_dir/obs.out")
[ -n "$t_sim" ] && [ "$t_sim" = "$t_cp" ] || {
    echo "critical path end ($t_cp) != simulated time ($t_sim)" >&2
    exit 1
}
head -1 "$ingest_dir/states.csv" | grep -q '^rank,start_s,end_s,state,peer,bytes$' \
    || { echo "state CSV header malformed" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$ingest_dir" <<'EOF'
import json, os, sys
d = sys.argv[1]
trace = json.load(open(os.path.join(d, "chrome.json")))
assert trace["traceEvents"], "chrome trace has no events"
metrics = json.load(open(os.path.join(d, "metrics.json")))
assert metrics["engine"] == "smpi", metrics["engine"]
assert metrics["replay"]["messages"] > 0, "no messages counted"
manifest = json.load(open(os.path.join(d, "manifest.json")))
assert manifest["trace_signature"].startswith("text:"), manifest["trace_signature"]
assert manifest["metrics"]["simulated_time_s"] == metrics["simulated_time_s"]
cp = json.load(open(os.path.join(d, "critical_path.json")))
assert cp["steps"] and cp["breakdown"], "critical path empty"
EOF
else
    echo "python3 unavailable; skipped JSON validation" >&2
fi
"$rep" inspect --trace "$ingest_dir/lu-s.trace" --ranks 8 >"$ingest_dir/inspect.out"
grep -q '^validation_issues 0$' "$ingest_dir/inspect.out" \
    || { echo "inspect reported validation issues" >&2; exit 1; }
# Same smoke with parallel replay as the ambient default (LU couples
# all ranks, so this exercises the single-island fallback): the
# critical path must still close at the simulated time, and the
# exported artifacts must be byte-identical to the sequential run.
TITR_REPLAY_THREADS=4 "$rep" --platform "$splat" --ranks 8 --rate 2e9 \
    --trace "$ingest_dir/lu-s.trace" --no-cache \
    --trace-out "$ingest_dir/chrome.par.json" \
    --state-csv "$ingest_dir/states.par.csv" \
    --critical-path >"$ingest_dir/obs.par.out" 2>/dev/null
t_par_sim=$(awk '$1 == "simulated_time_s" {print $2}' "$ingest_dir/obs.par.out")
t_par_cp=$(awk '$1 == "critical_path_end_s" {print $2}' "$ingest_dir/obs.par.out")
[ "$t_par_sim" = "$t_sim" ] && [ "$t_par_cp" = "$t_par_sim" ] \
    || { echo "obs smoke diverged under TITR_REPLAY_THREADS=4 ($t_par_sim/$t_par_cp vs $t_sim)" >&2; exit 1; }
cmp "$ingest_dir/chrome.json" "$ingest_dir/chrome.par.json" \
    && cmp "$ingest_dir/states.csv" "$ingest_dir/states.par.csv" \
    || { echo "obs exports differ under TITR_REPLAY_THREADS=4" >&2; exit 1; }
echo "OBS_SMOKE ok (critical_path_end_s == simulated_time_s == $t_sim, also at TITR_REPLAY_THREADS=4)"

# Parallel replay smoke: a multi-island halo workload must replay
# bit-identically at --threads 1 and --threads 4 — same simulated time,
# byte-identical chrome trace / state CSV / metrics exports — and the
# critical path must still close exactly at the simulated time when
# computed from the merged parallel run.
"$gen" --workload halo --procs 32 --steps 20 --bytes 4096 --out "$ingest_dir/halo.trace"
hplat="$ingest_dir/halo.trace.platform.json"
"$rep" inspect --trace "$ingest_dir/halo.trace" --ranks 32 --platform "$hplat" \
    >"$ingest_dir/halo.inspect.out"
grep -q '^validation_issues 0$' "$ingest_dir/halo.inspect.out" \
    || { echo "halo inspect reported validation issues" >&2; exit 1; }
islands=$(awk '$1 == "islands" {print $2}' "$ingest_dir/halo.inspect.out")
[ "${islands:-0}" -gt 1 ] \
    || { echo "halo workload should decompose into >1 island (got ${islands:-none})" >&2; exit 1; }
halo_replay() {
    n=$1; shift
    "$rep" --platform "$hplat" --ranks 32 --rate 2e9 --no-cache \
        --trace "$ingest_dir/halo.trace" --threads "$n" \
        --trace-out "$ingest_dir/halo.chrome.$n.json" \
        --state-csv "$ingest_dir/halo.states.$n.csv" \
        --metrics "$ingest_dir/halo.metrics.$n.json" "$@"
}
h_seq=$(halo_replay 1 2>/dev/null | awk '$1 == "simulated_time_s" {print $2}')
halo_replay 4 --critical-path >"$ingest_dir/halo.par.out" 2>/dev/null
h_par=$(awk '$1 == "simulated_time_s" {print $2}' "$ingest_dir/halo.par.out")
h_cp=$(awk '$1 == "critical_path_end_s" {print $2}' "$ingest_dir/halo.par.out")
[ -n "$h_seq" ] && [ "$h_seq" = "$h_par" ] \
    || { echo "parallel replay time ($h_par) != sequential ($h_seq)" >&2; exit 1; }
[ "$h_cp" = "$h_par" ] \
    || { echo "parallel critical path end ($h_cp) != simulated time ($h_par)" >&2; exit 1; }
for kind in chrome.json states.csv; do
    name="halo.${kind%.*}"; ext="${kind##*.}"
    cmp "$ingest_dir/$name.1.$ext" "$ingest_dir/$name.4.$ext" \
        || { echo "parallel $kind export differs from sequential" >&2; exit 1; }
done
# Metrics compare with the ladder's profile-gated *restructuring*
# counters normalized away: one merged FEL and N island FELs
# legitimately restructure at different points (same exemption as the
# differential tests); the live-flow/entity high-water marks are also
# per-network-model occupancy figures (sequential sees every island's
# flows in one model, parallel folds per-island maxima); every semantic
# counter must still match.
norm_metrics() {
    sed -E 's/"(spills|bucket_sorts|reseeds|live_flow_hwm|live_entity_hwm)": [0-9]+/"\1": 0/g' "$1"
}
cmp <(norm_metrics "$ingest_dir/halo.metrics.1.json") \
    <(norm_metrics "$ingest_dir/halo.metrics.4.json") \
    || { echo "parallel metrics export differs from sequential" >&2; exit 1; }
echo "PARALLEL_SMOKE ok ($islands islands, simulated_time_s $h_seq identical at 1 and 4 threads)"

# Collective-aggregation smoke: the LU class-B trace from the ingest
# smoke replayed with --collective-agg on and off must produce the same
# simulated time and byte-identical observability exports; only the
# sharing-churn counters may differ (they are the measured win, gated
# separately by perf_baseline --smoke).
agg_replay() {
    tag=$1; shift
    "$rep" --platform "$plat" --ranks 8 --rate 2e9 --no-cache \
        --trace "$ingest_dir/lu.trace" \
        --trace-out "$ingest_dir/agg.chrome.$tag.json" \
        --state-csv "$ingest_dir/agg.states.$tag.csv" "$@" 2>/dev/null \
        | awk '$1 == "simulated_time_s" {print $2}'
}
a_off=$(agg_replay off)
a_on=$(agg_replay on --collective-agg)
[ -n "$a_off" ] && [ "$a_off" = "$a_on" ] \
    || { echo "--collective-agg changed the simulated time ($a_on vs $a_off)" >&2; exit 1; }
cmp "$ingest_dir/agg.chrome.off.json" "$ingest_dir/agg.chrome.on.json" \
    && cmp "$ingest_dir/agg.states.off.csv" "$ingest_dir/agg.states.on.csv" \
    || { echo "--collective-agg changed the observability exports" >&2; exit 1; }
echo "AGG_SMOKE ok (simulated_time_s $a_off and exports identical with --collective-agg)"

# Windowed-PDES smoke, two halves. (a) LU class B, 8 ranks: one coupled
# island *with collectives*, so the windowed engine must fall back —
# every export at --threads 4 must be byte-identical to --threads 1,
# metrics included (the fallback is literally the sequential path).
pdes_replay() {
    n=$1; shift
    "$rep" --platform "$plat" --ranks 8 --rate 2e9 --no-cache \
        --trace "$ingest_dir/lu.trace" --threads "$n" \
        --trace-out "$ingest_dir/pdes.chrome.$n.json" \
        --state-csv "$ingest_dir/pdes.states.$n.csv" \
        --metrics "$ingest_dir/pdes.metrics.$n.json" "$@" 2>/dev/null \
        | awk '$1 == "simulated_time_s" {print $2}'
}
p_seq=$(pdes_replay 1)
p_par=$(pdes_replay 4)
[ -n "$p_seq" ] && [ "$p_seq" = "$p_par" ] \
    || { echo "LU replay time at --threads 4 ($p_par) != sequential ($p_seq)" >&2; exit 1; }
for f in pdes.chrome.1.json pdes.states.1.csv pdes.metrics.1.json; do
    cmp "$ingest_dir/$f" "$ingest_dir/${f/.1./.4.}" \
        || { echo "LU export $f differs at --threads 4" >&2; exit 1; }
done
# (b) A coupled ring on a non-blocking crossbar: the sub-shard
# certificate holds, so the windowed engine engages — `inspect` must
# report the 4-way plan, and the replay must stay byte-identical to
# the sequential run (match-queue depth HWMs normalized alongside the
# FEL restructuring counters: the mailbox protocol injects envelopes at
# window boundaries, which moves those diagnostics without moving any
# semantic counter).
cat >"$ingest_dir/xbar.json" <<'EOF'
{ "name": "xbar", "kind": { "Direct": {
    "nodes": 8, "host_speed": 1e9, "cores": 1, "cache_bytes": 1048576,
    "link_bandwidth": 1.25e8, "link_latency": 1e-5 } } }
EOF
ring_trace="$ingest_dir/ring.trace"
: >"$ring_trace"
for r in $(seq 0 7); do
    prev=$(( (r + 7) % 8 )); next=$(( (r + 1) % 8 ))
    {
        echo "$r init"
        for i in $(seq 0 29); do
            echo "$r irecv $prev 1024"
            echo "$r isend $next 1024"
            echo "$r waitall"
            echo "$r compute $((100000 + r * 1700 + i * 310))"
        done
        echo "$r finalize"
    } >>"$ring_trace"
done
"$rep" inspect --trace "$ring_trace" --ranks 8 --platform "$ingest_dir/xbar.json" \
    --threads 4 >"$ingest_dir/ring.inspect.out"
grep -q '^subshards 4$' "$ingest_dir/ring.inspect.out" \
    || { echo "inspect did not certify a 4-way sub-shard plan for the ring" >&2; exit 1; }
ring_replay() {
    n=$1; shift
    "$rep" --platform "$ingest_dir/xbar.json" --ranks 8 --rate 1e9 --no-cache \
        --trace "$ring_trace" --threads "$n" \
        --trace-out "$ingest_dir/ring.chrome.$n.json" \
        --state-csv "$ingest_dir/ring.states.$n.csv" \
        --metrics "$ingest_dir/ring.metrics.$n.json" "$@"
}
r_seq=$(ring_replay 1 2>/dev/null | awk '$1 == "simulated_time_s" {print $2}')
ring_replay 4 --critical-path >"$ingest_dir/ring.par.out" 2>/dev/null
r_par=$(awk '$1 == "simulated_time_s" {print $2}' "$ingest_dir/ring.par.out")
r_cp=$(awk '$1 == "critical_path_end_s" {print $2}' "$ingest_dir/ring.par.out")
[ -n "$r_seq" ] && [ "$r_seq" = "$r_par" ] \
    || { echo "windowed ring replay time ($r_par) != sequential ($r_seq)" >&2; exit 1; }
[ "$r_cp" = "$r_par" ] \
    || { echo "windowed critical path end ($r_cp) != simulated time ($r_par)" >&2; exit 1; }
cmp "$ingest_dir/ring.chrome.1.json" "$ingest_dir/ring.chrome.4.json" \
    && cmp "$ingest_dir/ring.states.1.csv" "$ingest_dir/ring.states.4.csv" \
    || { echo "windowed ring exports differ from sequential" >&2; exit 1; }
norm_pdes_metrics() {
    sed -E 's/"(spills|bucket_sorts|reseeds|live_flow_hwm|live_entity_hwm|max_unexpected_depth|max_posted_depth)": [0-9]+/"\1": 0/g' "$1"
}
cmp <(norm_pdes_metrics "$ingest_dir/ring.metrics.1.json") \
    <(norm_pdes_metrics "$ingest_dir/ring.metrics.4.json") \
    || { echo "windowed ring metrics differ from sequential" >&2; exit 1; }
echo "PDES_SMOKE ok (LU fallback byte-identical; ring windowed replay engaged, simulated_time_s $r_seq identical at 1 and 4 threads)"

# Telemetry smoke: a profiled inspect of the certified ring must print
# the per-worker wall-clock breakdown for the windowed engine, report
# the same simulated time as the replay above, and write the JSON twin.
"$rep" inspect --trace "$ring_trace" --ranks 8 --platform "$ingest_dir/xbar.json" \
    --threads 4 --rate 1e9 --profile --profile-json "$ingest_dir/ring.profile.json" \
    >"$ingest_dir/ring.profile.out"
grep -q '^replay profile: mode=windowed' "$ingest_dir/ring.profile.out" \
    || { echo "profiled inspect did not engage the windowed engine" >&2; exit 1; }
prof_workers=$(grep -cE '^ +[0-9]+ +[0-9]+ +[0-9]+ ' "$ingest_dir/ring.profile.out" || true)
[ "${prof_workers:-0}" -ge 2 ] \
    || { echo "profile table has ${prof_workers:-0} worker rows, expected >= 2" >&2; exit 1; }
prof_sim=$(awk '$1 == "profile_simulated_time_s" {printf "%s", $2}' "$ingest_dir/ring.profile.out")
[ "$prof_sim" = "$r_seq" ] \
    || { echo "profiled replay simulated time ($prof_sim) != unprofiled ($r_seq)" >&2; exit 1; }
grep -q '"mode": "windowed"' "$ingest_dir/ring.profile.json" \
    || { echo "profile JSON missing windowed mode" >&2; exit 1; }
echo "TELEMETRY_SMOKE ok ($prof_workers profiled workers, simulated time unchanged)"

# Re-run the replay-facing suites with parallel replay as the ambient
# default, so every differential test also exercises the worker pool.
TITR_REPLAY_THREADS=4 cargo test -q -p tit-replay \
    --test parallel_replay --test runtime_semantics --test trace_roundtrip \
    --test observability --test collective_agg --test windowed_pdes
TITR_REPLAY_THREADS=4 cargo run --release -p bench --bin perf_baseline -- --smoke
echo "PARALLEL_SUITE ok (replay tests + perf smoke at TITR_REPLAY_THREADS=4)"

# Serve smoke: start titserved on an ephemeral port, issue the same
# what-if query twice — the first must execute, the second must be
# served from the memo (checked via /stats) with a byte-identical body —
# byte-compare the served manifest against a direct `titreplay
# --manifest` run (modulo the wall-time line), and shut down cleanly.
served=target/release/titserved
"$served" serve --port 0 --workers 2 >"$ingest_dir/serve.out" 2>&1 &
serve_pid=$!
server=""
for _ in $(seq 1 100); do
    server=$(awk '/^listening/ {print $2; exit}' "$ingest_dir/serve.out" 2>/dev/null || true)
    [ -n "$server" ] && break
    sleep 0.1
done
[ -n "$server" ] || { echo "titserved did not report a listening address" >&2; exit 1; }
# Dependency-free HTTP helper (bash /dev/tcp): prints the response body.
serve_http() { # method path
    exec 3<>"/dev/tcp/127.0.0.1/${server##*:}"
    printf '%s %s HTTP/1.1\r\nhost: ci\r\ncontent-length: 0\r\nconnection: close\r\n\r\n' \
        "$1" "$2" >&3
    sed '1,/^\r*$/d' <&3
    exec 3>&-
}
serve_http GET /healthz | grep -q '^ok$' \
    || { echo "titserved /healthz failed" >&2; exit 1; }
serve_query() {
    "$served" query --server "$server" --trace "$ingest_dir/lu.trace" \
        --platform "$plat" --ranks 8 --rate 2e9
}
serve_query >"$ingest_dir/serve.1.json" 2>"$ingest_dir/serve.1.log"
serve_query >"$ingest_dir/serve.2.json" 2>"$ingest_dir/serve.2.log"
grep -q '^cache: miss$' "$ingest_dir/serve.1.log" \
    || { echo "first serve query was not a miss" >&2; exit 1; }
grep -q '^cache: hit$' "$ingest_dir/serve.2.log" \
    || { echo "second serve query was not a memo hit" >&2; exit 1; }
cmp "$ingest_dir/serve.1.json" "$ingest_dir/serve.2.json" \
    || { echo "memoized response body differs from the original" >&2; exit 1; }
serve_http GET /stats >"$ingest_dir/serve.stats.json"
grep -q '"executions": 1' "$ingest_dir/serve.stats.json" \
    && grep -q '"cache_hits": 1' "$ingest_dir/serve.stats.json" \
    || { echo "serve stats disagree: $(cat "$ingest_dir/serve.stats.json")" >&2; exit 1; }
# Prometheus scrape: the two predicts above must show up as advanced
# request/cache counters and a populated latency histogram.
serve_http GET /metrics >"$ingest_dir/serve.metrics.txt"
metric() { awk -v s="$1" '$1 == s {printf "%s", $2}' "$ingest_dir/serve.metrics.txt"; }
grep -q '^# TYPE titserved_requests_total counter$' "$ingest_dir/serve.metrics.txt" \
    && grep -q '^# TYPE titserved_request_duration_seconds histogram$' "$ingest_dir/serve.metrics.txt" \
    || { echo "metrics scrape missing TYPE headers" >&2; exit 1; }
m_predict=$(metric 'titserved_requests_total{endpoint="/predict"}')
m_exec=$(metric 'titserved_executions_total')
m_hit=$(metric 'titserved_cache_total{disposition="hit"}')
m_lat=$(metric 'titserved_request_duration_seconds_count{endpoint="/predict"}')
[ "${m_predict:-0}" -eq 2 ] && [ "${m_exec:-0}" -eq 1 ] && [ "${m_hit:-0}" -eq 1 ] \
    || { echo "metrics counters wrong (predict=$m_predict exec=$m_exec hit=$m_hit)" >&2; exit 1; }
[ "${m_lat:-0}" -eq 2 ] \
    || { echo "latency histogram not populated (count=$m_lat)" >&2; exit 1; }
"$rep" --platform "$plat" --ranks 8 --rate 2e9 --trace "$ingest_dir/lu.trace" \
    --manifest "$ingest_dir/serve.cli.json" >/dev/null 2>&1
norm_manifest() { sed '/"wall_time_s"/d' "$1"; }
cmp <(norm_manifest "$ingest_dir/serve.1.json") <(norm_manifest "$ingest_dir/serve.cli.json") \
    || { echo "served manifest differs from the titreplay CLI manifest" >&2; exit 1; }
serve_http POST /shutdown >/dev/null
wait "$serve_pid" \
    || { echo "titserved did not shut down cleanly" >&2; exit 1; }
echo "SERVE_SMOKE ok (memoized second query byte-identical, manifest matches CLI, /metrics counters advanced)"
