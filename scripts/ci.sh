#!/usr/bin/env bash
# CI gate: build, test, lint, smoke-run the benches, and exercise the
# trace ingestion paths end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
# Smoke mode: each bench target runs its bodies once, no sampling.
cargo bench -p bench -- --test

# FEL smoke: scaled-down heap-vs-ladder churn pass; asserts the profile
# counters are coherent and the ladder steady state allocation-free.
cargo run --release -p bench --bin perf_baseline -- --smoke

# Ingest smoke: generate an LU class-B trace, pack it, and check that
# text (sequential and parallel) and binary ingestion replay to the
# same simulated time, and that pack -> unpack round-trips the text.
ingest_dir="$(mktemp -d)"
trap 'rm -rf "$ingest_dir"' EXIT
gen=target/release/titrace-gen
rep=target/release/titreplay
"$gen" --class B --procs 8 --steps 10 --out "$ingest_dir/lu.trace"
"$rep" trace pack "$ingest_dir/lu.trace" "$ingest_dir/lu.titb" --ranks 8
"$rep" trace unpack "$ingest_dir/lu.titb" "$ingest_dir/lu.unpacked.trace"
cmp "$ingest_dir/lu.trace" "$ingest_dir/lu.unpacked.trace"
plat="$ingest_dir/lu.trace.platform.json"
run_replay() { "$rep" --platform "$plat" --ranks 8 --rate 2e9 "$@" | awk '{print $2}'; }
t_text=$(TITR_SWEEP_THREADS=1 run_replay --trace "$ingest_dir/lu.trace" --no-cache)
t_par=$(TITR_SWEEP_THREADS=4 run_replay --trace "$ingest_dir/lu.trace" --no-cache)
t_bin=$(run_replay --trace "$ingest_dir/lu.titb")
# First cached run stores the side-car, second must hit it.
t_store=$(run_replay --trace "$ingest_dir/lu.trace")
[ -f "$ingest_dir/lu.trace.titb" ] || { echo "side-car cache not written" >&2; exit 1; }
t_cache=$("$rep" --platform "$plat" --ranks 8 --rate 2e9 --trace "$ingest_dir/lu.trace" \
    2>"$ingest_dir/cache.log" | awk '{print $2}')
grep -q "trace cache: hit" "$ingest_dir/cache.log" \
    || { echo "side-car cache not hit on second run" >&2; exit 1; }
for t in "$t_par" "$t_bin" "$t_store" "$t_cache"; do
    [ "$t" = "$t_text" ] || {
        echo "ingestion paths disagree: $t_text vs $t" >&2
        exit 1
    }
done
echo "INGEST_SMOKE ok (simulated_time_s $t_text across text/parallel/titb/cache)"

# Observability smoke: replay an LU class-S trace with the recorder
# enabled, check that the exported artifacts are valid JSON, and that
# the critical path ends exactly at the reported simulated time.
"$gen" --class S --procs 8 --steps 10 --out "$ingest_dir/lu-s.trace"
splat="$ingest_dir/lu-s.trace.platform.json"
"$rep" --platform "$splat" --ranks 8 --rate 2e9 --trace "$ingest_dir/lu-s.trace" \
    --no-cache \
    --trace-out "$ingest_dir/chrome.json" \
    --state-csv "$ingest_dir/states.csv" \
    --metrics "$ingest_dir/metrics.json" \
    --manifest "$ingest_dir/manifest.json" \
    --critical-path "$ingest_dir/critical_path.json" \
    >"$ingest_dir/obs.out" 2>/dev/null
t_sim=$(awk '$1 == "simulated_time_s" {print $2}' "$ingest_dir/obs.out")
t_cp=$(awk '$1 == "critical_path_end_s" {print $2}' "$ingest_dir/obs.out")
[ -n "$t_sim" ] && [ "$t_sim" = "$t_cp" ] || {
    echo "critical path end ($t_cp) != simulated time ($t_sim)" >&2
    exit 1
}
head -1 "$ingest_dir/states.csv" | grep -q '^rank,start_s,end_s,state,peer,bytes$' \
    || { echo "state CSV header malformed" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$ingest_dir" <<'EOF'
import json, os, sys
d = sys.argv[1]
trace = json.load(open(os.path.join(d, "chrome.json")))
assert trace["traceEvents"], "chrome trace has no events"
metrics = json.load(open(os.path.join(d, "metrics.json")))
assert metrics["engine"] == "smpi", metrics["engine"]
assert metrics["replay"]["messages"] > 0, "no messages counted"
manifest = json.load(open(os.path.join(d, "manifest.json")))
assert manifest["trace_signature"].startswith("text:"), manifest["trace_signature"]
assert manifest["metrics"]["simulated_time_s"] == metrics["simulated_time_s"]
cp = json.load(open(os.path.join(d, "critical_path.json")))
assert cp["steps"] and cp["breakdown"], "critical path empty"
EOF
else
    echo "python3 unavailable; skipped JSON validation" >&2
fi
"$rep" inspect --trace "$ingest_dir/lu-s.trace" --ranks 8 >"$ingest_dir/inspect.out"
grep -q '^validation_issues 0$' "$ingest_dir/inspect.out" \
    || { echo "inspect reported validation issues" >&2; exit 1; }
echo "OBS_SMOKE ok (critical_path_end_s == simulated_time_s == $t_sim)"
