//! Capacity planning through the prediction service: the same nine
//! candidate-cluster sweep as `examples/capacity_planning.rs`, but
//! asked of a running `titserved` instead of replaying in-process.
//!
//! The example embeds its own server (bound to an ephemeral port) so it
//! runs standalone, then drives it exactly as a remote planner would:
//! one acquired trace on disk, one `/predict` POST per candidate, and a
//! final `/stats` read showing what the service shared. Each candidate
//! is asked *twice* — the second sweep is answered entirely from the
//! memo table, which is the point of putting replay behind a service.
//!
//! Run with: `cargo run --release --example capacity_planning_service`

use tit_replay::platform::spec::{PlatformSpec, SpecKind};
use tit_replay::prelude::*;
use tit_replay::titrace::files;
use titserved::client;
use titserved::server::{Server, ServerConfig};

fn main() {
    let instance = LuConfig::new(LuClass::C, 64).with_steps(20);
    println!("workload: {} ({} steps)", instance.label(), instance.steps);

    // Acquire once and park the trace on disk, as a real deployment
    // would: the server answers every question from this one file.
    let trace = acquire(
        instance.sources(),
        Instrumentation::Minimal,
        CompilerOpt::O3,
        7,
    )
    .trace;
    let dir = std::env::temp_dir().join(format!("titserved-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace_path = dir.join("lu-c-64.trace");
    files::write_merged(&trace, &trace_path).expect("write trace");

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = format!("127.0.0.1:{}", server.addr().port());
    let server_thread = std::thread::spawn(move || server.run());
    println!("titserved listening on http://{addr}\n");

    let cpu_options = [(2.0e9, 1000.0), (3.0e9, 1400.0), (4.0e9, 1900.0)];
    let nic_options = [(1.25e8, 50.0), (2.5e8, 120.0), (1.25e9, 400.0)];
    let target_seconds = 2.3;

    for sweep in ["cold sweep", "memoized sweep"] {
        println!(
            "{sweep}:\n{:<26}{:>12}{:>14}{:>12}{:>10}",
            "configuration", "price/node", "predicted(s)", "meets it?", "cache"
        );
        let mut best: Option<(f64, String, f64)> = None;
        for (cpu, cpu_price) in cpu_options {
            for (nic, nic_price) in nic_options {
                let spec = PlatformSpec {
                    name: format!("candidate-{:.0}GHz-{:.0}MBps", cpu / 1e9, nic / 1e6),
                    kind: SpecKind::Flat {
                        nodes: 64,
                        host_speed: cpu,
                        cores: 4,
                        cache_bytes: 2 << 20,
                        link_bandwidth: nic,
                        link_latency: 15e-6,
                        backbone_bandwidth: 10.0 * nic,
                        backbone_latency: 4e-6,
                    },
                };
                // The same what-if framing as the in-process example:
                // the quoted CPU speed doubles as the replay rate.
                let body = format!(
                    "{{\"trace\": \"{}\", \"ranks\": 64, \"platform\": {}, \
                     \"config\": {{\"rate\": {cpu}}}}}",
                    trace_path.display(),
                    spec.to_json()
                );
                let resp = client::predict(&addr, &body).expect("predict");
                assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                let manifest = String::from_utf8(resp.body).expect("utf-8 manifest");
                let sim = manifest
                    .lines()
                    .find_map(|l| {
                        l.trim()
                            .strip_prefix("\"simulated_time_s\": ")
                            .map(|v| v.trim_end_matches(','))
                    })
                    .and_then(|v| v.parse::<f64>().ok())
                    .expect("manifest has simulated_time_s");
                let disposition = resp
                    .headers
                    .get("x-titserved-cache")
                    .cloned()
                    .unwrap_or_default();
                let price = 64.0 * (cpu_price + nic_price);
                let ok = sim <= target_seconds;
                println!(
                    "{:<26}{:>12.0}{:>14.3}{:>12}{:>10}",
                    spec.name,
                    price,
                    sim,
                    if ok { "yes" } else { "no" },
                    disposition
                );
                if ok && best.as_ref().is_none_or(|(p, _, _)| price < *p) {
                    best = Some((price, spec.name.clone(), sim));
                }
            }
        }
        match &best {
            Some((price, name, t)) => println!(
                "cheapest configuration meeting the target: {name} ({price:.0} units, {t:.3}s)\n"
            ),
            None => println!("no candidate meets the {target_seconds}s target\n"),
        }
    }

    let stats = client::get(&addr, "/stats").expect("stats");
    println!("service stats:\n{}", String::from_utf8_lossy(&stats.body));

    client::post(&addr, "/shutdown", "").expect("shutdown");
    server_thread.join().expect("join").expect("server run");
    let _ = std::fs::remove_dir_all(&dir);
}
