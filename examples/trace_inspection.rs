//! Working with the trace format directly: write, parse, validate and
//! summarize time-independent traces, including a hand-written trace in
//! the paper's own text format.
//!
//! Run with: `cargo run --release --example trace_inspection`

use std::sync::Arc;

use tit_replay::prelude::*;
use tit_replay::titrace::{parse, stats::TraceStats, validate, write};

fn main() {
    // ------------------------------------------------------------------
    // A hand-written trace: a 3-rank ring with a final allreduce. The
    // text is exactly what the acquisition toolchain would emit.
    // ------------------------------------------------------------------
    let text = "\
p0 init
p0 compute 956140
p0 send p1 1240
p0 recv p2 1240
p0 allreduce 40
p0 finalize
p1 init
p1 compute 912002
p1 recv p0 1240
p1 send p2 1240
p1 allreduce 40
p1 finalize
p2 init
p2 compute 983113
p2 recv p1 1240
p2 send p0 1240
p2 allreduce 40
p2 finalize
";
    let trace = parse::parse_merged(text, 3).expect("parse failed");
    println!("parsed {} actions for {} ranks", trace.len(), trace.ranks());

    // Validate: matched channels, collective agreement, framing.
    let problems = validate::validate(&trace);
    println!("validation: {} issue(s)", problems.len());
    assert!(problems.is_empty());

    // Summarize.
    let stats = TraceStats::of(&trace);
    println!(
        "volumes: {:.2e} instructions total, {} messages, eager fraction {:.0}%",
        stats.total_instructions(),
        stats.total_messages(),
        stats.eager_fraction().unwrap_or(0.0) * 100.0
    );

    // Round-trip: write and re-parse.
    let emitted = write::to_string(&trace);
    let back = parse::parse_merged(&emitted, 3).expect("round-trip failed");
    assert_eq!(back, trace);
    println!("round-trip: ok");

    // ------------------------------------------------------------------
    // Replay the hand-written trace on a tiny custom platform.
    // ------------------------------------------------------------------
    let spec = tit_replay::platform::PlatformSpec {
        name: "mini".into(),
        kind: tit_replay::platform::spec::SpecKind::Flat {
            nodes: 3,
            host_speed: 1e9,
            cores: 1,
            cache_bytes: 1 << 20,
            link_bandwidth: 1.25e8,
            link_latency: 20e-6,
            backbone_bandwidth: 1.25e9,
            backbone_latency: 5e-6,
        },
    };
    let platform = spec.build();
    let sim =
        replay(&platform, &Arc::new(trace), &ReplayConfig::improved(1e9)).expect("replay failed");
    println!(
        "simulated on `{}`: {:.6}s ({} events)",
        platform.name, sim.time, sim.events
    );

    // ------------------------------------------------------------------
    // A corrupted trace is rejected with precise diagnostics.
    // ------------------------------------------------------------------
    let bad = "p0 send p1 100\np1 recv p0 999\n";
    let bad_trace = parse::parse_merged(bad, 2).expect("parse ok");
    let problems = validate::validate(&bad_trace);
    println!("\ncorrupted trace diagnostics:");
    for p in &problems {
        println!("  - {p}");
    }
    assert!(!problems.is_empty());
}
