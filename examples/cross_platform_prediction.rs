//! Cross-platform prediction: the framework's headline property.
//!
//! "This allows us to completely decouple the acquisition process from
//! the actual replay of the traces in a simulation context" — a trace
//! acquired on one cluster predicts execution on *another*. Here we
//! acquire LU B-32 once (conceptually on bordereau, but acquisition is
//! platform-free) and predict both clusters, comparing each prediction
//! with that cluster's emulated real time.
//!
//! Run with: `cargo run --release --example cross_platform_prediction`

use std::sync::Arc;

use tit_replay::prelude::*;

fn main() {
    let instance = LuConfig::new(LuClass::B, 32).with_steps(25);
    println!("instance: {}", instance.label());

    // One acquisition...
    let trace = Arc::new(
        acquire(
            instance.sources(),
            Instrumentation::Minimal,
            CompilerOpt::O3,
            11,
        )
        .trace,
    );
    println!("acquired one trace: {} actions\n", trace.len());

    // ...predicts any platform.
    for testbed in [Testbed::bordereau(), Testbed::graphene()] {
        let calibration = calibrate(
            &testbed,
            CalibrationMethod::CacheAware,
            CompilerOpt::O3,
            &[LuClass::B, LuClass::C],
            Instrumentation::Minimal,
            11,
        )
        .expect("calibration failed");
        let config = ReplayConfig::improved(calibration.rate_for(&instance));
        let sim = replay(&testbed.platform, &trace, &config).expect("replay failed");
        let real = testbed
            .run_lu(&instance, Instrumentation::None, CompilerOpt::O3)
            .expect("emulation failed");
        let err = (sim.time - real.time) / real.time * 100.0;
        println!(
            "{:<12} predicted {:>7.3}s   real {:>7.3}s   error {:>+6.2}%",
            testbed.platform.name, sim.time, real.time, err
        );
        assert!(err.abs() < 20.0);
    }

    println!("\nThe same trace also answers what-if questions, e.g. a graphene");
    println!("with a 10x faster network:");
    let mut spec = tit_replay::platform::PlatformSpec {
        name: "graphene-10g".into(),
        kind: tit_replay::platform::spec::SpecKind::Cabinets {
            cabinets: 4,
            nodes_per_cabinet: 36,
            host_speed: tit_replay::platform::clusters::GRAPHENE_SPEED,
            cores: 4,
            cache_bytes: 4 << 20,
            link_bandwidth: 1.21e9, // 10x NIC
            link_latency: 5e-6,
            cabinet_bandwidth: 1.2e10,
            cabinet_latency: 2.5e-6,
            backbone_bandwidth: 2.4e10,
            backbone_latency: 2.5e-6,
        },
    };
    let fast = spec.build();
    let config = ReplayConfig::improved(tit_replay::platform::clusters::GRAPHENE_SPEED);
    let sim_fast = replay(&fast, &trace, &config).expect("replay failed");
    spec.name = "graphene-10g".into();
    println!("  predicted: {:.3}s", sim_fast.time);
}
