//! Rendering execution timelines (Gantt charts) of a simulated run —
//! the kind of visual comparison the paper's companion evaluation used
//! to contrast real and simulated executions.
//!
//! Shows LU's pipelined wavefront structure: staircase compute/wait
//! patterns across the process grid.
//!
//! Run with: `cargo run --release --example gantt`

use tit_replay::acquisition::{CompilerOpt, Instrumentation, InstrumentedHooks};
use tit_replay::prelude::*;
use tit_replay::smpi::{run_smpi_traced, SegmentKind, SmpiConfig};

fn main() {
    let lu = LuConfig::new(LuClass::S, 8).with_steps(2);
    let testbed = Testbed::bordereau();
    let hosts = testbed.hosts(8).expect("placement");
    let hooks = InstrumentedHooks::new(
        &testbed.platform,
        &hosts,
        Instrumentation::None,
        CompilerOpt::O3,
    );
    let (result, timeline) = run_smpi_traced(
        &testbed.platform,
        &hosts,
        lu.sources(),
        SmpiConfig::ground_truth(),
        Box::new(hooks),
    )
    .expect("run failed");

    println!(
        "LU {} on {}: {:.4}s  (# = compute, . = wait, o = overhead)\n",
        lu.label(),
        testbed.platform.name,
        result.total_time
    );
    print!("{}", timeline.render(100, result.total_time));

    println!("\nper-rank breakdown:");
    println!(
        "{:<6}{:>12}{:>12}{:>12}{:>10}",
        "rank", "compute(s)", "wait(s)", "overhead(s)", "wait %"
    );
    for r in 0..8 {
        let c = timeline.total(r, SegmentKind::Compute);
        let w = timeline.total(r, SegmentKind::Wait);
        let o = timeline.total(r, SegmentKind::Overhead);
        println!(
            "p{r:<5}{c:>12.4}{w:>12.4}{o:>12.4}{:>9.1}%",
            w / (c + w + o) * 100.0
        );
    }
}
