//! Capacity planning: the paper's motivating use case — "when a platform
//! is yet to be specified and purchased, simulations can be used to
//! determine a cost-effective hardware configuration appropriate for the
//! expected application workload."
//!
//! One trace of LU C-64 is acquired once, then replayed on a family of
//! *hypothetical* clusters (varying NIC bandwidth and CPU speed) to find
//! the cheapest configuration that meets a target execution time. No
//! re-acquisition is needed: the trace is time-independent.
//!
//! Run with: `cargo run --release --example capacity_planning`

use std::sync::Arc;

use tit_replay::platform::spec::{PlatformSpec, SpecKind};
use tit_replay::prelude::*;

fn main() {
    let instance = LuConfig::new(LuClass::C, 64).with_steps(20);
    println!("workload: {} ({} steps)", instance.label(), instance.steps);

    // Acquire once, from anywhere (acquisition is platform-independent).
    let trace = Arc::new(
        acquire(
            instance.sources(),
            Instrumentation::Minimal,
            CompilerOpt::O3,
            7,
        )
        .trace,
    );

    // Candidate configurations: cpu speed (instr/s) × NIC bandwidth, with
    // a toy price model.
    let cpu_options = [(2.0e9, 1000.0), (3.0e9, 1400.0), (4.0e9, 1900.0)];
    let nic_options = [(1.25e8, 50.0), (2.5e8, 120.0), (1.25e9, 400.0)];
    let target_seconds = 2.3;

    println!(
        "\n{:<26}{:>12}{:>14}{:>12}",
        "configuration", "price/node", "predicted(s)", "meets it?"
    );
    let mut best: Option<(f64, String, f64)> = None;
    for (cpu, cpu_price) in cpu_options {
        for (nic, nic_price) in nic_options {
            let spec = PlatformSpec {
                name: format!("candidate-{:.0}GHz-{:.0}MBps", cpu / 1e9, nic / 1e6),
                kind: SpecKind::Flat {
                    nodes: 64,
                    host_speed: cpu,
                    cores: 4,
                    cache_bytes: 2 << 20,
                    link_bandwidth: nic,
                    link_latency: 15e-6,
                    backbone_bandwidth: 10.0 * nic,
                    backbone_latency: 4e-6,
                },
            };
            let platform = spec.build();
            // The candidate is hypothetical: no calibration run is
            // possible, so the quoted CPU speed is used as the rate (a
            // what-if study, exactly how the paper frames this use).
            let config = ReplayConfig::improved(cpu);
            let sim = replay(&platform, &trace, &config).expect("replay failed");
            let price = 64.0 * (cpu_price + nic_price);
            let ok = sim.time <= target_seconds;
            println!(
                "{:<26}{:>12.0}{:>14.3}{:>12}",
                spec.name,
                price,
                sim.time,
                if ok { "yes" } else { "no" }
            );
            if ok && best.as_ref().is_none_or(|(p, _, _)| price < *p) {
                best = Some((price, spec.name.clone(), sim.time));
            }
        }
    }
    match best {
        Some((price, name, t)) => {
            println!(
                "\ncheapest configuration meeting the target: {name} ({price:.0} units, {t:.3}s)"
            );
        }
        None => println!("\nno candidate meets the {target_seconds}s target"),
    }
}
