//! Quickstart: predict the execution time of an MPI application on a
//! cluster with the improved time-independent trace replay pipeline.
//!
//! The three framework steps are spelled out explicitly (acquire →
//! calibrate → replay); the [`tit_replay::Predictor`] wrapper does the
//! same in two calls.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use tit_replay::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // The application: NPB LU, class A on 8 processes (a short run).
    // ------------------------------------------------------------------
    let instance = LuConfig::new(LuClass::A, 8).with_steps(25);
    println!("instance: {} ({} steps)", instance.label(), instance.steps);

    // ------------------------------------------------------------------
    // The target platform: the emulated bordereau cluster. (In the
    // paper, this is the real machine; here the emulator stands in.)
    // ------------------------------------------------------------------
    let testbed = Testbed::bordereau();
    println!(
        "platform: {} ({} nodes)",
        testbed.platform.name,
        testbed.platform.host_count()
    );

    // ------------------------------------------------------------------
    // Step 1 — acquire a time-independent trace with the minimal
    // instrumentation on the -O3 build.
    // ------------------------------------------------------------------
    let acq = acquire(
        instance.sources(),
        Instrumentation::Minimal,
        CompilerOpt::O3,
        42,
    );
    let stats = titrace::TraceStats::of(&acq.trace);
    println!(
        "trace: {} actions, {} messages ({:.0}% eager), {:.2e} instructions/rank",
        acq.trace.len(),
        stats.total_messages(),
        stats.eager_fraction().unwrap_or(0.0) * 100.0,
        stats.mean_instructions_per_rank(),
    );
    // A snippet in the paper's own format:
    let text = titrace::write::rank_to_string(&acq.trace, Rank(0));
    println!("trace head (rank 0):");
    for line in text.lines().take(5) {
        println!("  {line}");
    }

    // ------------------------------------------------------------------
    // Step 2 — calibrate the platform's instruction rate (cache-aware).
    // ------------------------------------------------------------------
    let calibration = calibrate(
        &testbed,
        CalibrationMethod::CacheAware,
        CompilerOpt::O3,
        &[LuClass::B, LuClass::C],
        Instrumentation::Minimal,
        42,
    )
    .expect("calibration failed");
    println!(
        "calibration: A-4 rate {:.3e} instr/s, {} class rates",
        calibration.base_rate,
        calibration.class_rates.len()
    );

    // ------------------------------------------------------------------
    // Step 3 — replay the trace on the simulated platform.
    // ------------------------------------------------------------------
    let trace = Arc::new(acq.trace);
    let config = ReplayConfig::improved(calibration.rate_for(&instance));
    let sim = replay(&testbed.platform, &trace, &config).expect("replay failed");
    println!(
        "simulated time: {:.3}s ({} messages replayed)",
        sim.time, sim.messages
    );

    // ------------------------------------------------------------------
    // Check against the emulated "real" execution.
    // ------------------------------------------------------------------
    let real = testbed
        .run_lu(&instance, Instrumentation::None, CompilerOpt::O3)
        .expect("emulation failed");
    let err = (sim.time - real.time) / real.time * 100.0;
    println!("real time:      {:.3}s", real.time);
    println!("relative error: {err:+.2}%");
    assert!(err.abs() < 20.0, "prediction drifted: {err}%");
}
