//! Beyond LU: the replay framework on collective-dominated (CG-like) and
//! bulk-synchronous (stencil) workloads, and the contrast between the
//! legacy MSG back-end and the improved SMPI back-end on each.
//!
//! LU's failure mode (per-message error accumulating over a wavefront of
//! small messages) is specific to pipelined point-to-point codes; this
//! example shows how the two back-ends compare on workloads with other
//! communication signatures.
//!
//! Run with: `cargo run --release --example collective_workloads`

use std::sync::Arc;

use tit_replay::prelude::*;
use tit_replay::workloads::{cg::CgConfig, ft::FtConfig, stencil::StencilConfig};

fn main() {
    let testbed = Testbed::graphene();
    let rate = tit_replay::platform::clusters::GRAPHENE_SPEED;

    // ------------------------------------------------------------------
    // A CG-like solver: two tiny allreduces per iteration.
    // ------------------------------------------------------------------
    let cg = CgConfig {
        procs: 32,
        rows: 600_000,
        nnz_per_row: 27,
        iterations: 400,
    };
    println!("== CG-like (32 ranks, {} iterations) ==", cg.iterations);
    report(&testbed, cg.sources(), cg.sources(), rate);

    // ------------------------------------------------------------------
    // An FT-like 3D FFT: alltoall transposes of rendezvous-sized blocks.
    // ------------------------------------------------------------------
    let ft = FtConfig {
        procs: 16,
        n: 128,
        iterations: 12,
    };
    println!(
        "\n== FT-like (16 ranks, {} iterations, {} KiB per alltoall pair) ==",
        ft.iterations,
        ft.alltoall_bytes() / 1024
    );
    report(&testbed, ft.sources(), ft.sources(), rate);

    // ------------------------------------------------------------------
    // A 2D Jacobi stencil: bulk-synchronous halo exchange.
    // ------------------------------------------------------------------
    let st = StencilConfig {
        px: 8,
        py: 4,
        n: 4096,
        iterations: 300,
        check_every: 10,
    };
    println!("\n== stencil (8x4 ranks, {} iterations) ==", st.iterations);
    report(&testbed, st.sources(), st.sources(), rate);
}

/// Emulates the workload as ground truth, acquires a trace, replays with
/// both engines and prints the comparison.
fn report(
    testbed: &Testbed,
    truth_sources: Vec<Box<dyn tit_replay::workloads::OpSource>>,
    trace_sources: Vec<Box<dyn tit_replay::workloads::OpSource>>,
    rate: f64,
) {
    let real = testbed
        .run(truth_sources, Instrumentation::None, CompilerOpt::O3)
        .expect("emulation failed");
    let trace =
        Arc::new(acquire(trace_sources, Instrumentation::Minimal, CompilerOpt::O3, 5).trace);
    for (name, config) in [
        ("legacy/MSG", ReplayConfig::legacy(rate)),
        ("improved/SMPI", ReplayConfig::improved(rate)),
    ] {
        let sim = replay(&testbed.platform, &trace, &config).expect("replay failed");
        let err = (sim.time - real.time) / real.time * 100.0;
        println!(
            "  {name:<14} simulated {:>8.3}s   real {:>8.3}s   error {err:>+7.2}%",
            sim.time, real.time
        );
    }
}
