//! The per-rank LU op-stream generator.
//!
//! Operations are produced lazily, one time step at a time, so even a
//! C-128 × 250-step instance (tens of millions of operations system-wide)
//! never materialises more than one step per rank.
//!
//! Per time step, each rank emits:
//!
//! 1. **Boundary exchange** (NPB's `exchange_3` pattern): post an `irecv`
//!    from every mesh neighbour, compute the interior right-hand side,
//!    `send` the boundary layers (Θ(n²/√P) bytes — these are the only
//!    messages large enough to use the rendezvous protocol on small
//!    process counts), `waitall`, finish the boundary right-hand side.
//! 2. **Lower sweep** (`jacld`/`blts`): for each of the `nz` planes,
//!    receive the pipeline boundary from the north and west neighbours,
//!    compute the plane, forward to south and east. Messages are
//!    `5·8·n/√P` bytes — a few hundred bytes to a couple of KiB, always
//!    eager.
//! 3. **Upper sweep** (`jacu`/`buts`): the same pipeline, reversed.
//! 4. **SSOR update**.
//!
//! An l2norm allreduce runs before the first and after the last step, as
//! in NPB-LU.

use std::collections::VecDeque;

use super::params;
use super::{LuConfig, LuNeighbors};
use crate::{ComputeBlock, MpiOp, OpSource};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Prologue,
    Step(u32),
    Epilogue,
    Done,
}

/// Lazy op stream of one LU rank.
#[derive(Debug, Clone)]
pub struct LuRankGen {
    cfg: LuConfig,
    rank: u32,
    nx: u32,
    ny: u32,
    nz: u32,
    nb: LuNeighbors,
    phase: Phase,
    buf: VecDeque<MpiOp>,
}

impl LuRankGen {
    /// The rank this generator belongs to.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Creates the generator for `rank` of `cfg`.
    pub fn new(cfg: LuConfig, rank: u32) -> LuRankGen {
        let (nx, ny, nz) = cfg.block(rank);
        LuRankGen {
            cfg,
            rank,
            nx,
            ny,
            nz,
            nb: cfg.neighbors(rank),
            phase: Phase::Prologue,
            buf: VecDeque::new(),
        }
    }

    fn points(&self) -> f64 {
        f64::from(self.nx) * f64::from(self.ny) * f64::from(self.nz)
    }

    fn plane_points(&self) -> f64 {
        f64::from(self.nx) * f64::from(self.ny)
    }

    fn plane_ws(&self) -> u64 {
        u64::from(self.nx) * u64::from(self.ny) * params::WS_BYTES_PER_POINT
    }

    /// Pipeline boundary message sizes: `(north_south, east_west)`.
    fn sweep_msg_bytes(&self) -> (u64, u64) {
        (
            params::BYTES_PER_BOUNDARY_POINT * u64::from(self.nx),
            params::BYTES_PER_BOUNDARY_POINT * u64::from(self.ny),
        )
    }

    /// Boundary-exchange message sizes: `(north_south, east_west)` — a
    /// full boundary face, `nz` deep.
    fn exchange_msg_bytes(&self) -> (u64, u64) {
        let (ns, ew) = self.sweep_msg_bytes();
        (ns * u64::from(self.nz), ew * u64::from(self.nz))
    }

    fn plane_block(&self) -> ComputeBlock {
        ComputeBlock {
            instructions: params::INSTR_SOLVE_PER_POINT * self.plane_points(),
            fn_calls: params::FINE_CALLS_PER_POINT * self.plane_points()
                + params::FINE_CALLS_PER_ROW * f64::from(self.ny),
            working_set: self.plane_ws(),
        }
    }

    fn rhs_block(&self, fraction: f64) -> ComputeBlock {
        ComputeBlock {
            instructions: params::INSTR_RHS_PER_POINT * self.points() * fraction,
            fn_calls: params::FINE_CALLS_PER_POINT_RHS * self.points() * fraction,
            working_set: self.plane_ws(),
        }
    }

    fn update_block(&self) -> ComputeBlock {
        ComputeBlock {
            instructions: params::INSTR_UPDATE_PER_POINT * self.points(),
            fn_calls: params::FINE_CALLS_PER_POINT_RHS * self.points(),
            working_set: self.plane_ws(),
        }
    }

    fn fill_prologue(&mut self) {
        self.buf.push_back(MpiOp::Init);
        self.buf.push_back(MpiOp::Bcast {
            bytes: params::BCAST_BYTES,
            root: 0,
        });
        // Initial residual norm.
        self.buf.push_back(MpiOp::Allreduce {
            bytes: params::NORM_BYTES,
        });
    }

    fn fill_step(&mut self) {
        let (ns3, ew3) = self.exchange_msg_bytes();
        let (ns, ew) = self.sweep_msg_bytes();
        let nb = self.nb;

        // --- 1. boundary exchange + rhs -------------------------------
        let mut posted = 0u32;
        for (peer, bytes) in [
            (nb.north, ns3),
            (nb.south, ns3),
            (nb.west, ew3),
            (nb.east, ew3),
        ] {
            if let Some(src) = peer {
                self.buf.push_back(MpiOp::Irecv { src, bytes });
                posted += 1;
            }
        }
        self.buf.push_back(MpiOp::Compute(self.rhs_block(0.8)));
        for (peer, bytes) in [
            (nb.north, ns3),
            (nb.south, ns3),
            (nb.west, ew3),
            (nb.east, ew3),
        ] {
            if let Some(dst) = peer {
                self.buf.push_back(MpiOp::Send { dst, bytes });
            }
        }
        if posted > 0 {
            self.buf.push_back(MpiOp::WaitAll);
        }
        self.buf.push_back(MpiOp::Compute(self.rhs_block(0.2)));

        // --- 2. lower sweep (pipeline NW -> SE) ------------------------
        let plane = self.plane_block();
        for _k in 0..self.nz {
            if let Some(src) = nb.north {
                self.buf.push_back(MpiOp::Recv { src, bytes: ns });
            }
            if let Some(src) = nb.west {
                self.buf.push_back(MpiOp::Recv { src, bytes: ew });
            }
            self.buf.push_back(MpiOp::Compute(plane));
            if let Some(dst) = nb.south {
                self.buf.push_back(MpiOp::Send { dst, bytes: ns });
            }
            if let Some(dst) = nb.east {
                self.buf.push_back(MpiOp::Send { dst, bytes: ew });
            }
        }

        // --- 3. upper sweep (pipeline SE -> NW) ------------------------
        for _k in 0..self.nz {
            if let Some(src) = nb.south {
                self.buf.push_back(MpiOp::Recv { src, bytes: ns });
            }
            if let Some(src) = nb.east {
                self.buf.push_back(MpiOp::Recv { src, bytes: ew });
            }
            self.buf.push_back(MpiOp::Compute(plane));
            if let Some(dst) = nb.north {
                self.buf.push_back(MpiOp::Send { dst, bytes: ns });
            }
            if let Some(dst) = nb.west {
                self.buf.push_back(MpiOp::Send { dst, bytes: ew });
            }
        }

        // --- 4. SSOR update -------------------------------------------
        self.buf.push_back(MpiOp::Compute(self.update_block()));
    }

    fn fill_epilogue(&mut self) {
        // Final residual norm + verification reduction.
        self.buf.push_back(MpiOp::Allreduce {
            bytes: params::NORM_BYTES,
        });
        self.buf.push_back(MpiOp::Allreduce {
            bytes: params::NORM_BYTES,
        });
        self.buf.push_back(MpiOp::Finalize);
    }
}

impl OpSource for LuRankGen {
    fn next_op(&mut self) -> Option<MpiOp> {
        loop {
            if let Some(op) = self.buf.pop_front() {
                return Some(op);
            }
            match self.phase {
                Phase::Prologue => {
                    self.fill_prologue();
                    self.phase = Phase::Step(0);
                }
                Phase::Step(t) => {
                    self.fill_step();
                    self.phase = if t + 1 < self.cfg.steps {
                        Phase::Step(t + 1)
                    } else {
                        Phase::Epilogue
                    };
                }
                Phase::Epilogue => {
                    self.fill_epilogue();
                    self.phase = Phase::Done;
                }
                Phase::Done => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{LuClass, LuConfig};
    use super::*;
    use crate::collect_ops;

    fn small() -> LuConfig {
        LuConfig::new(LuClass::S, 4).with_steps(3)
    }

    #[test]
    fn stream_is_framed_by_init_finalize() {
        let ops = collect_ops(small().rank_source(0));
        assert_eq!(ops.first(), Some(&MpiOp::Init));
        assert_eq!(ops.last(), Some(&MpiOp::Finalize));
    }

    #[test]
    fn generated_trace_is_structurally_valid() {
        for procs in [4u32, 8, 16] {
            let cfg = LuConfig::new(LuClass::S, procs).with_steps(3);
            let trace = crate::exact_trace(cfg.sources());
            let errors = titrace::validate::validate(&trace);
            assert!(
                errors.is_empty(),
                "LU S-{procs} trace invalid: {:?}",
                &errors[..errors.len().min(3)]
            );
        }
    }

    #[test]
    fn sweep_messages_are_eager_sized() {
        // Pipeline messages must stay well below the 64 KiB eager
        // threshold for every class/process combination of the paper.
        for class in [LuClass::A, LuClass::B, LuClass::C] {
            for procs in [8u32, 16, 32, 64, 128] {
                let cfg = LuConfig::new(class, procs);
                let g = cfg.rank_source(0);
                let (ns, ew) = g.sweep_msg_bytes();
                assert!(ns < 64 * 1024 && ew < 64 * 1024, "{class}-{procs}");
            }
        }
    }

    #[test]
    fn exchange_messages_cross_the_protocol_threshold() {
        // B-8: boundary faces are > 64 KiB (rendezvous); B-64 they drop
        // below it (eager) — the protocol mix shifts with P, one of the
        // dynamics the improved back-end captures.
        let b8 = LuConfig::new(LuClass::B, 8).rank_source(0);
        let (ns3, _) = b8.exchange_msg_bytes();
        assert!(ns3 > 64 * 1024, "B-8 exchange {ns3}");
        let b64 = LuConfig::new(LuClass::B, 64).rank_source(0);
        let (ns3, _) = b64.exchange_msg_bytes();
        assert!(ns3 < 64 * 1024, "B-64 exchange {ns3}");
    }

    #[test]
    fn message_count_per_step_matches_formula() {
        // Interior rank: per step, 2 sweeps × nz planes × 2 sends; corner
        // rank: 2 sweeps × nz × 1 send... plus 'deg' exchange sends.
        let cfg = LuConfig::new(LuClass::S, 16).with_steps(2); // 4x4 grid
        let nz = 12u64;
        // Rank 5 is interior (row 1, col 1) on the 4x4 grid.
        let ops = collect_ops(cfg.rank_source(5));
        let sends = ops
            .iter()
            .filter(|o| matches!(o, MpiOp::Send { .. }))
            .count() as u64;
        // per step: 4 exchange sends + lower (2 per plane) + upper (2 per
        // plane) = 4 + 4nz
        assert_eq!(sends, 2 * (4 + 4 * nz));
        let recvs = ops
            .iter()
            .filter(|o| matches!(o, MpiOp::Recv { .. } | MpiOp::Irecv { .. }))
            .count() as u64;
        assert_eq!(recvs, 2 * (4 + 4 * nz));
    }

    #[test]
    fn corner_rank_has_fewer_messages_than_interior() {
        let cfg = LuConfig::new(LuClass::S, 16).with_steps(2);
        let count = |rank: u32| {
            collect_ops(cfg.rank_source(rank))
                .iter()
                .filter(|o| matches!(o, MpiOp::Send { .. }))
                .count()
        };
        assert!(count(0) < count(5));
    }

    #[test]
    fn per_rank_instruction_total_matches_closed_form() {
        let cfg = LuConfig::new(LuClass::W, 8).with_steps(4);
        for rank in [0u32, 3, 7] {
            let ops = collect_ops(cfg.rank_source(rank));
            let total: f64 = ops
                .iter()
                .filter_map(|o| match o {
                    MpiOp::Compute(b) => Some(b.instructions),
                    _ => None,
                })
                .sum();
            let expect = cfg.rank_instructions(rank);
            assert!(
                (total - expect).abs() < 1e-6 * expect,
                "rank {rank}: {total} vs {expect}"
            );
        }
    }

    #[test]
    fn collectives_are_identical_across_ranks() {
        let cfg = small();
        let collect_colls = |rank: u32| {
            collect_ops(cfg.rank_source(rank))
                .into_iter()
                .filter(|o| {
                    matches!(
                        o,
                        MpiOp::Barrier
                            | MpiOp::Bcast { .. }
                            | MpiOp::Allreduce { .. }
                            | MpiOp::Reduce { .. }
                    )
                })
                .collect::<Vec<_>>()
        };
        let r0 = collect_colls(0);
        assert_eq!(r0.len(), 4); // bcast + initial norm + 2 final reductions
        for r in 1..4 {
            assert_eq!(collect_colls(r), r0, "rank {r}");
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = collect_ops(small().rank_source(2));
        let b = collect_ops(small().rank_source(2));
        assert_eq!(a, b);
    }

    #[test]
    fn op_count_is_linear_in_steps() {
        let n3 = collect_ops(small().rank_source(1)).len();
        let n6 = collect_ops(small().with_steps(6).rank_source(1)).len();
        let per_step = (n6 - n3) / 3;
        assert!(per_step > 0);
        // prologue+epilogue constant
        assert_eq!(n6 - 6 * per_step, n3 - 3 * per_step);
    }
}
