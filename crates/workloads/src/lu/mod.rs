//! The NAS Parallel Benchmarks LU solver, as a volume model.
//!
//! NPB-LU solves a 3D Navier–Stokes-like system with SSOR: each time step
//! runs a right-hand-side computation with boundary exchanges, then a
//! lower- and an upper-triangular solve. The solves sweep the `nz` grid
//! planes one by one; within a plane, data dependencies run along the
//! processor-grid diagonal, so the computation *pipelines* across the 2D
//! process grid, exchanging a small (≪ 64 KiB, i.e. eager-mode) boundary
//! message with each downstream neighbour per plane. This flood of small
//! messages whose count grows with the process count — while per-rank
//! compute shrinks — is exactly the regime where the paper's first replay
//! implementation lost accuracy (Section 2.4).
//!
//! The model reproduces NPB-LU's structure faithfully:
//! * problem classes S/W/A/B/C/D with the official grid sizes,
//! * the 2D process grid (`xdim × ydim`, powers of two) and uneven block
//!   split,
//! * per-step op sequence: boundary exchange (`exchange_3`-style
//!   irecv/send/waitall with rendezvous-sized messages), pipelined lower
//!   sweep, pipelined upper sweep, SSOR update,
//! * l2norm allreduces at the first and last step,
//! * instruction/working-set volumes per `params`.

pub mod gen;
pub mod params;

pub use gen::LuRankGen;

use crate::OpSource;

/// NPB problem classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LuClass {
    /// Sample: 12³ grid.
    S,
    /// Workstation: 33³ grid.
    W,
    /// Class A: 64³ grid.
    A,
    /// Class B: 102³ grid.
    B,
    /// Class C: 162³ grid.
    C,
    /// Class D: 408³ grid.
    D,
}

impl LuClass {
    /// Grid extent `n` (the problem is `n × n × n`).
    pub fn problem_size(self) -> u32 {
        match self {
            LuClass::S => 12,
            LuClass::W => 33,
            LuClass::A => 64,
            LuClass::B => 102,
            LuClass::C => 162,
            LuClass::D => 408,
        }
    }

    /// Official time-step count of the class.
    pub fn default_steps(self) -> u32 {
        match self {
            LuClass::S => 50,
            LuClass::W => 300,
            LuClass::A | LuClass::B | LuClass::C => 250,
            LuClass::D => 300,
        }
    }

    /// Parses "A"/"B"/... (case-insensitive).
    pub fn parse(s: &str) -> Option<LuClass> {
        match s.to_ascii_uppercase().as_str() {
            "S" => Some(LuClass::S),
            "W" => Some(LuClass::W),
            "A" => Some(LuClass::A),
            "B" => Some(LuClass::B),
            "C" => Some(LuClass::C),
            "D" => Some(LuClass::D),
            _ => None,
        }
    }
}

impl std::fmt::Display for LuClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = match self {
            LuClass::S => 'S',
            LuClass::W => 'W',
            LuClass::A => 'A',
            LuClass::B => 'B',
            LuClass::C => 'C',
            LuClass::D => 'D',
        };
        write!(f, "{c}")
    }
}

/// A fully specified LU instance: class, process count, time steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LuConfig {
    /// Problem class.
    pub class: LuClass,
    /// Number of MPI processes (must be a power of two).
    pub procs: u32,
    /// Time steps to run. [`LuClass::default_steps`] for the official
    /// count; experiments may reduce it (all volumes scale linearly).
    pub steps: u32,
}

impl LuConfig {
    /// An instance with the official step count (e.g. "B-64").
    pub fn new(class: LuClass, procs: u32) -> LuConfig {
        assert!(
            procs.is_power_of_two(),
            "LU requires a power-of-two process count"
        );
        LuConfig {
            class,
            procs,
            steps: class.default_steps(),
        }
    }

    /// Same instance with a reduced step count (volumes scale linearly in
    /// steps; experiments record the scaling).
    pub fn with_steps(mut self, steps: u32) -> LuConfig {
        assert!(steps >= 2, "LU needs at least 2 steps (first/last norm)");
        self.steps = steps;
        self
    }

    /// The instance label the paper uses ("B-64").
    pub fn label(&self) -> String {
        format!("{}-{}", self.class, self.procs)
    }

    /// The 2D process grid `(xdim, ydim)`, `xdim ≥ ydim`, both powers of
    /// two with `xdim·ydim = procs` (NPB's layout).
    pub fn grid(&self) -> (u32, u32) {
        let k = self.procs.trailing_zeros();
        let ydim = 1u32 << (k / 2);
        let xdim = self.procs / ydim;
        (xdim, ydim)
    }

    /// Grid coordinates `(row, col)` of `rank` (row-major).
    pub fn coords(&self, rank: u32) -> (u32, u32) {
        let (xdim, _) = self.grid();
        (rank / xdim, rank % xdim)
    }

    /// Rank at grid coordinates.
    pub fn rank_at(&self, row: u32, col: u32) -> u32 {
        let (xdim, _) = self.grid();
        row * xdim + col
    }

    /// Local block extents `(nx, ny, nz)` of `rank`: the `n×n` horizontal
    /// plane is split over the process grid with remainders going to the
    /// lower-indexed rows/columns; `nz` is never split.
    pub fn block(&self, rank: u32) -> (u32, u32, u32) {
        let n = self.class.problem_size();
        let (xdim, ydim) = self.grid();
        let (row, col) = self.coords(rank);
        let nx = n / xdim + u32::from(col < n % xdim);
        let ny = n / ydim + u32::from(row < n % ydim);
        (nx, ny, n)
    }

    /// Active working set of `rank`'s solve planes, in bytes — the
    /// quantity compared against the L2 capacity by the cache-aware
    /// calibration.
    pub fn working_set(&self, rank: u32) -> u64 {
        let (nx, ny, _) = self.block(rank);
        u64::from(nx) * u64::from(ny) * params::WS_BYTES_PER_POINT
    }

    /// Largest per-rank working set of the instance.
    pub fn max_working_set(&self) -> u64 {
        (0..self.procs)
            .map(|r| self.working_set(r))
            .max()
            .unwrap_or(0)
    }

    /// Neighbour rank in each direction, if any: `(north, south, west,
    /// east)`. North = row-1 (upstream in the lower sweep).
    pub fn neighbors(&self, rank: u32) -> LuNeighbors {
        let (xdim, ydim) = self.grid();
        let (row, col) = self.coords(rank);
        LuNeighbors {
            north: (row > 0).then(|| self.rank_at(row - 1, col)),
            south: (row + 1 < ydim).then(|| self.rank_at(row + 1, col)),
            west: (col > 0).then(|| self.rank_at(row, col - 1)),
            east: (col + 1 < xdim).then(|| self.rank_at(row, col + 1)),
        }
    }

    /// The generator for one rank's op stream.
    pub fn rank_source(&self, rank: u32) -> LuRankGen {
        assert!(rank < self.procs);
        LuRankGen::new(*self, rank)
    }

    /// All per-rank sources, boxed for [`crate::exact_trace`] and the
    /// emulator.
    pub fn sources(&self) -> Vec<Box<dyn OpSource>> {
        (0..self.procs)
            .map(|r| Box::new(self.rank_source(r)) as Box<dyn OpSource>)
            .collect()
    }

    /// Total true instructions of one rank over the whole run.
    pub fn rank_instructions(&self, rank: u32) -> f64 {
        let (nx, ny, nz) = self.block(rank);
        let points = f64::from(nx) * f64::from(ny) * f64::from(nz);
        params::instr_per_point_per_step() * points * f64::from(self.steps)
    }
}

/// The four mesh neighbours of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LuNeighbors {
    /// Row-1 neighbour (upstream in the lower sweep).
    pub north: Option<u32>,
    /// Row+1 neighbour.
    pub south: Option<u32>,
    /// Col-1 neighbour (upstream in the lower sweep).
    pub west: Option<u32>,
    /// Col+1 neighbour.
    pub east: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_sizes_match_npb() {
        assert_eq!(LuClass::A.problem_size(), 64);
        assert_eq!(LuClass::B.problem_size(), 102);
        assert_eq!(LuClass::C.problem_size(), 162);
        assert_eq!(LuClass::B.default_steps(), 250);
        assert_eq!(LuClass::parse("b"), Some(LuClass::B));
        assert_eq!(LuClass::parse("x"), None);
        assert_eq!(LuClass::C.to_string(), "C");
    }

    #[test]
    fn grids_are_npb_layouts() {
        assert_eq!(LuConfig::new(LuClass::B, 4).grid(), (2, 2));
        assert_eq!(LuConfig::new(LuClass::B, 8).grid(), (4, 2));
        assert_eq!(LuConfig::new(LuClass::B, 16).grid(), (4, 4));
        assert_eq!(LuConfig::new(LuClass::B, 32).grid(), (8, 4));
        assert_eq!(LuConfig::new(LuClass::B, 64).grid(), (8, 8));
        assert_eq!(LuConfig::new(LuClass::B, 128).grid(), (16, 8));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = LuConfig::new(LuClass::A, 6);
    }

    #[test]
    fn blocks_partition_the_grid() {
        for procs in [4u32, 8, 16, 32, 64, 128] {
            for class in [LuClass::A, LuClass::B, LuClass::C] {
                let cfg = LuConfig::new(class, procs);
                let n = class.problem_size() as u64;
                let (xdim, ydim) = cfg.grid();
                // Sum of nx over one row of the grid = n; same for ny over
                // one column.
                let nx_sum: u64 = (0..xdim)
                    .map(|c| u64::from(cfg.block(cfg.rank_at(0, c)).0))
                    .sum();
                assert_eq!(nx_sum, n, "{class}-{procs} nx split");
                let ny_sum: u64 = (0..ydim)
                    .map(|r| u64::from(cfg.block(cfg.rank_at(r, 0)).1))
                    .sum();
                assert_eq!(ny_sum, n, "{class}-{procs} ny split");
                // Total points = n^3 per plane layer set.
                let total: u64 = (0..procs)
                    .map(|r| {
                        let (nx, ny, nz) = cfg.block(r);
                        u64::from(nx) * u64::from(ny) * u64::from(nz)
                    })
                    .sum();
                assert_eq!(total, n * n * n, "{class}-{procs} total points");
            }
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        let cfg = LuConfig::new(LuClass::B, 8); // 102 / 4 leaves remainder 2
        let nxs: Vec<u32> = (0..4).map(|c| cfg.block(cfg.rank_at(0, c)).0).collect();
        assert_eq!(nxs, vec![26, 26, 25, 25]);
    }

    #[test]
    fn neighbors_are_mutual() {
        let cfg = LuConfig::new(LuClass::A, 16);
        for r in 0..16 {
            let n = cfg.neighbors(r);
            if let Some(s) = n.south {
                assert_eq!(cfg.neighbors(s).north, Some(r));
            }
            if let Some(e) = n.east {
                assert_eq!(cfg.neighbors(e).west, Some(r));
            }
        }
    }

    #[test]
    fn corner_ranks_have_two_neighbors() {
        let cfg = LuConfig::new(LuClass::A, 16); // 4x4 grid
        let n = cfg.neighbors(0);
        assert!(n.north.is_none() && n.west.is_none());
        assert!(n.south.is_some() && n.east.is_some());
        let n = cfg.neighbors(15);
        assert!(n.south.is_none() && n.east.is_none());
    }

    #[test]
    fn working_set_shrinks_with_procs() {
        let b8 = LuConfig::new(LuClass::B, 8);
        let b64 = LuConfig::new(LuClass::B, 64);
        assert!(b8.max_working_set() > b64.max_working_set());
        // B-8: 26×51×800 ≈ 1.06 MB (marginally spills a 1 MB L2);
        // B-64: 13×13×800 ≈ 0.14 MB (cache-resident).
        assert!(b8.max_working_set() > 1 << 20);
        assert!(b64.max_working_set() < 1 << 20);
    }

    #[test]
    fn b8_instruction_volume_matches_paper() {
        let cfg = LuConfig::new(LuClass::B, 8);
        let mean: f64 = (0..8).map(|r| cfg.rank_instructions(r)).sum::<f64>() / 8.0;
        let rel = (mean - 1.70e11).abs() / 1.70e11;
        assert!(rel < 0.02, "B-8 mean instructions {mean:.3e}");
    }

    #[test]
    fn steps_scale_instructions_linearly() {
        let full = LuConfig::new(LuClass::A, 4);
        let short = full.with_steps(25);
        let ratio = full.rank_instructions(0) / short.rank_instructions(0);
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn label_format() {
        assert_eq!(LuConfig::new(LuClass::C, 64).label(), "C-64");
    }
}
