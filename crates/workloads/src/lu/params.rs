//! Tunable constants of the LU workload model.
//!
//! These constants calibrate the synthetic LU against the quantities the
//! paper reports. They are *model parameters*, not magic: each is tied to
//! an observable and fitted once (see EXPERIMENTS.md for the resulting
//! paper-vs-measured comparison).
//!
//! The anchor is the paper's Section 2.2: the coarse-grain-measured
//! average instruction count per process is 1.70e11 for B-8. With the
//! B-8 decomposition (26×51×102 points per rank) and 250 time steps,
//! that pins total instructions per grid point per time step at ≈ 5000.

/// Instructions per grid point per time step spent in the right-hand-side
/// computation (`rhs`, `erhs`).
pub const INSTR_RHS_PER_POINT: f64 = 1540.0;

/// Instructions per grid point per time step for one triangular-solve
/// sweep (`jacld`+`blts`, or `jacu`+`buts`). Two sweeps run per step.
pub const INSTR_SOLVE_PER_POINT: f64 = 1230.0;

/// Instructions per grid point per time step for the SSOR update and
/// miscellaneous per-step work.
pub const INSTR_UPDATE_PER_POINT: f64 = 1130.0;

/// Total instructions per grid point per time step (the ≈5000 anchor).
pub const fn instr_per_point_per_step() -> f64 {
    INSTR_RHS_PER_POINT + 2.0 * INSTR_SOLVE_PER_POINT + INSTR_UPDATE_PER_POINT
}

/// Bytes per boundary grid point in a pipeline exchange message: five
/// solution components in doubles (`5 × 8`).
pub const BYTES_PER_BOUNDARY_POINT: u64 = 40;

/// Active working set per grid point of a solve plane: the four 5×5
/// jacobian blocks in doubles (`4 × 25 × 8`). The per-rank plane footprint
/// `nx·ny·800` is what spills (or not) out of L2 and drives the
/// cache-aware calibration story.
pub const WS_BYTES_PER_POINT: u64 = 800;

/// Fine-grain-instrumentable function calls per grid point per solve
/// plane (TAU+PDT auto-instrumentation reaches into per-point helper
/// routines of the Fortran source).
pub const FINE_CALLS_PER_POINT: f64 = 0.5;

/// Additional fine-grain calls per boundary row of a solve plane
/// (per-row routines: `jacld`/`blts` bookkeeping). This term makes the
/// relative instrumentation inflation grow as blocks shrink (more rows
/// per point), matching the paper's Figures 1-2 trend with process count.
pub const FINE_CALLS_PER_ROW: f64 = 2.5;

/// Fine-grain calls per grid point in rhs/update phases (loop nests with
/// few function calls).
pub const FINE_CALLS_PER_POINT_RHS: f64 = 0.08;

/// Payload of one l2norm allreduce: five residual components in doubles.
pub const NORM_BYTES: u64 = 40;

/// Payload of the initial parameter broadcast.
pub const BCAST_BYTES: u64 = 40;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_anchor_matches_paper_b8() {
        // B-8: mean block is 102²·102/8 points per rank, 250 steps =>
        // ≈1.7e11 instructions per process (paper Section 2.2).
        let mean_points = 102.0f64.powi(3) / 8.0;
        let per_rank = instr_per_point_per_step() * mean_points * 250.0;
        let rel = (per_rank - 1.70e11).abs() / 1.70e11;
        assert!(rel < 0.02, "anchor drifted: {per_rank:.3e}");
    }

    #[test]
    fn totals_are_positive_and_consistent() {
        assert_eq!(
            instr_per_point_per_step(),
            INSTR_RHS_PER_POINT + 2.0 * INSTR_SOLVE_PER_POINT + INSTR_UPDATE_PER_POINT
        );
        assert!(instr_per_point_per_step() > 0.0);
    }
}
