//! MPI workload generators.
//!
//! A workload is, per rank, a lazy stream of [`MpiOp`]s — the same
//! operations a real MPI application would issue, with *volumes* attached
//! (instructions for compute, bytes for communication) but no timing. The
//! emulated testbed executes these streams against a platform model to
//! produce ground-truth times; the acquisition layer turns them into
//! time-independent traces.
//!
//! The flagship generator is [`lu`], a structurally faithful model of the
//! NAS Parallel Benchmarks LU solver (SSOR with 2D pipelined wavefront
//! sweeps) that the paper evaluates. [`cg`] and [`stencil`] provide two
//! further kernels with different communication signatures, used by the
//! examples.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cg;
pub mod ft;
pub mod lu;
pub mod stencil;

/// One compute burst between MPI calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeBlock {
    /// True application instructions at the baseline compiler setting
    /// (no optimization). Compiler models scale this.
    pub instructions: f64,
    /// Function calls a fine-grain instrumenter would probe inside this
    /// block (drives instrumentation perturbation).
    pub fn_calls: f64,
    /// Active working set touched by this block, in bytes (drives the
    /// cache-dependent instruction rate).
    pub working_set: u64,
}

impl ComputeBlock {
    /// A block with no cache pressure and no instrumentable calls.
    pub fn plain(instructions: f64) -> ComputeBlock {
        ComputeBlock {
            instructions,
            fn_calls: 0.0,
            working_set: 0,
        }
    }
}

/// One MPI-level operation of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MpiOp {
    /// `MPI_Init`.
    Init,
    /// `MPI_Finalize`.
    Finalize,
    /// Local computation.
    Compute(ComputeBlock),
    /// Blocking send.
    Send {
        /// Destination rank.
        dst: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// Non-blocking send.
    Isend {
        /// Destination rank.
        dst: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// Blocking receive.
    Recv {
        /// Source rank.
        src: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// Non-blocking receive.
    Irecv {
        /// Source rank.
        src: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// Complete the oldest pending non-blocking request.
    Wait,
    /// Complete all pending non-blocking requests.
    WaitAll,
    /// Barrier over all ranks.
    Barrier,
    /// Broadcast from `root`.
    Bcast {
        /// Payload bytes.
        bytes: u64,
        /// Root rank.
        root: u32,
    },
    /// Reduction to `root`.
    Reduce {
        /// Per-rank contribution bytes.
        bytes: u64,
        /// Root rank.
        root: u32,
    },
    /// All-reduce.
    Allreduce {
        /// Per-rank contribution bytes.
        bytes: u64,
    },
    /// All-to-all exchange.
    Alltoall {
        /// Per-pair payload bytes.
        bytes: u64,
    },
    /// Gather to `root`.
    Gather {
        /// Per-rank contribution bytes.
        bytes: u64,
        /// Root rank.
        root: u32,
    },
    /// All-gather.
    Allgather {
        /// Per-rank contribution bytes.
        bytes: u64,
    },
}

/// A lazy per-rank operation stream.
pub trait OpSource {
    /// The next operation, or `None` when the rank's program ends.
    fn next_op(&mut self) -> Option<MpiOp>;
}

/// An [`OpSource`] over a pre-built vector (used for trace replay and in
/// tests).
#[derive(Debug, Clone)]
pub struct VecSource {
    ops: std::vec::IntoIter<MpiOp>,
}

impl VecSource {
    /// Wraps a vector of operations.
    pub fn new(ops: Vec<MpiOp>) -> VecSource {
        VecSource {
            ops: ops.into_iter(),
        }
    }
}

impl OpSource for VecSource {
    fn next_op(&mut self) -> Option<MpiOp> {
        self.ops.next()
    }
}

/// Drains an [`OpSource`] into a vector (tests, trace extraction).
pub fn collect_ops(mut src: impl OpSource) -> Vec<MpiOp> {
    let mut out = Vec::new();
    while let Some(op) = src.next_op() {
        out.push(op);
    }
    out
}

/// Converts a full workload (one source per rank) into a *ground-truth*
/// time-independent trace: compute amounts are the exact instruction
/// counts, uninflated by any instrumentation. Used by tests and as the
/// "perfect acquisition" baseline.
pub fn exact_trace(sources: Vec<Box<dyn OpSource>>) -> titrace::Trace {
    let ranks = sources.len() as u32;
    let mut trace = titrace::Trace::new(ranks);
    for (r, mut src) in sources.into_iter().enumerate() {
        let rank = titrace::Rank(r as u32);
        while let Some(op) = src.next_op() {
            trace.push(rank, op_to_action(&op));
        }
    }
    trace
}

/// Maps one [`MpiOp`] to the equivalent trace [`titrace::Action`], using
/// exact instruction counts for compute.
pub fn op_to_action(op: &MpiOp) -> titrace::Action {
    use titrace::{Action, Rank};
    match op {
        MpiOp::Init => Action::Init,
        MpiOp::Finalize => Action::Finalize,
        MpiOp::Compute(b) => Action::Compute {
            amount: b.instructions,
        },
        MpiOp::Send { dst, bytes } => Action::Send {
            dst: Rank(*dst),
            bytes: *bytes,
        },
        MpiOp::Isend { dst, bytes } => Action::Isend {
            dst: Rank(*dst),
            bytes: *bytes,
        },
        MpiOp::Recv { src, bytes } => Action::Recv {
            src: Rank(*src),
            bytes: *bytes,
        },
        MpiOp::Irecv { src, bytes } => Action::Irecv {
            src: Rank(*src),
            bytes: *bytes,
        },
        MpiOp::Wait => Action::Wait,
        MpiOp::WaitAll => Action::WaitAll,
        MpiOp::Barrier => Action::Barrier,
        MpiOp::Bcast { bytes, root } => Action::Bcast {
            bytes: *bytes,
            root: Rank(*root),
        },
        MpiOp::Reduce { bytes, root } => Action::Reduce {
            bytes: *bytes,
            root: Rank(*root),
        },
        MpiOp::Allreduce { bytes } => Action::Allreduce { bytes: *bytes },
        MpiOp::Alltoall { bytes } => Action::Alltoall { bytes: *bytes },
        MpiOp::Gather { bytes, root } => Action::Gather {
            bytes: *bytes,
            root: Rank(*root),
        },
        MpiOp::Allgather { bytes } => Action::Allgather { bytes: *bytes },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_drains_in_order() {
        let ops = vec![
            MpiOp::Init,
            MpiOp::Compute(ComputeBlock::plain(10.0)),
            MpiOp::Finalize,
        ];
        let collected = collect_ops(VecSource::new(ops.clone()));
        assert_eq!(collected, ops);
    }

    #[test]
    fn op_to_action_covers_p2p() {
        let a = op_to_action(&MpiOp::Send { dst: 3, bytes: 99 });
        assert_eq!(
            a,
            titrace::Action::Send {
                dst: titrace::Rank(3),
                bytes: 99
            }
        );
        let a = op_to_action(&MpiOp::Irecv { src: 1, bytes: 7 });
        assert_eq!(
            a,
            titrace::Action::Irecv {
                src: titrace::Rank(1),
                bytes: 7
            }
        );
    }

    #[test]
    fn exact_trace_uses_true_instructions() {
        let r0: Vec<MpiOp> = vec![
            MpiOp::Init,
            MpiOp::Compute(ComputeBlock {
                instructions: 123.0,
                fn_calls: 9.0,
                working_set: 4096,
            }),
            MpiOp::Finalize,
        ];
        let t = exact_trace(vec![Box::new(VecSource::new(r0))]);
        assert_eq!(
            t.actions(titrace::Rank(0))[1],
            titrace::Action::Compute { amount: 123.0 }
        );
    }
}
