//! A 2D Jacobi stencil workload: bulk-synchronous halo exchanges.
//!
//! Each iteration swaps halos with the four mesh neighbours
//! (irecv/isend/waitall) and then computes a full sweep; a convergence
//! allreduce runs every `check_every` iterations. Its communication is
//! bulk-synchronous (no pipelining), which makes it an easy first example
//! and a contrast to LU's wavefront.

use std::collections::VecDeque;

use crate::{ComputeBlock, MpiOp, OpSource};

/// Configuration of the stencil kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StencilConfig {
    /// Process-grid width (total processes = `px · py`).
    pub px: u32,
    /// Process-grid height.
    pub py: u32,
    /// Global grid extent per dimension.
    pub n: u32,
    /// Jacobi iterations.
    pub iterations: u32,
    /// Convergence-check (allreduce) period.
    pub check_every: u32,
}

impl StencilConfig {
    /// Total process count.
    pub fn procs(&self) -> u32 {
        self.px * self.py
    }

    /// Local tile extents `(nx, ny)` of `rank`.
    pub fn tile(&self, rank: u32) -> (u32, u32) {
        let (row, col) = (rank / self.px, rank % self.px);
        let nx = self.n / self.px + u32::from(col < self.n % self.px);
        let ny = self.n / self.py + u32::from(row < self.n % self.py);
        (nx, ny)
    }

    /// Per-rank op stream.
    pub fn rank_source(&self, rank: u32) -> StencilRankGen {
        assert!(rank < self.procs());
        StencilRankGen {
            cfg: *self,
            rank,
            iter: 0,
            started: false,
            done: false,
            buf: VecDeque::new(),
        }
    }

    /// All rank sources, boxed.
    pub fn sources(&self) -> Vec<Box<dyn OpSource>> {
        (0..self.procs())
            .map(|r| Box::new(self.rank_source(r)) as Box<dyn OpSource>)
            .collect()
    }
}

/// Lazy op stream of one stencil rank.
#[derive(Debug, Clone)]
pub struct StencilRankGen {
    cfg: StencilConfig,
    rank: u32,
    iter: u32,
    started: bool,
    done: bool,
    buf: VecDeque<MpiOp>,
}

impl StencilRankGen {
    fn neighbors(&self) -> [(Option<u32>, u64); 4] {
        let (px, py) = (self.cfg.px, self.cfg.py);
        let (row, col) = (self.rank / px, self.rank % px);
        let (nx, ny) = self.cfg.tile(self.rank);
        let ns_bytes = u64::from(nx) * 8;
        let ew_bytes = u64::from(ny) * 8;
        [
            ((row > 0).then(|| self.rank - px), ns_bytes),
            ((row + 1 < py).then(|| self.rank + px), ns_bytes),
            ((col > 0).then(|| self.rank - 1), ew_bytes),
            ((col + 1 < px).then(|| self.rank + 1), ew_bytes),
        ]
    }

    fn sweep_block(&self) -> ComputeBlock {
        let (nx, ny) = self.cfg.tile(self.rank);
        let pts = f64::from(nx) * f64::from(ny);
        ComputeBlock {
            instructions: 12.0 * pts,
            fn_calls: 0.01 * pts,
            working_set: (pts as u64) * 16,
        }
    }

    fn fill_iteration(&mut self) {
        let nbs = self.neighbors();
        let mut posted = false;
        for (peer, bytes) in nbs {
            if let Some(src) = peer {
                self.buf.push_back(MpiOp::Irecv { src, bytes });
                posted = true;
            }
        }
        for (peer, bytes) in nbs {
            if let Some(dst) = peer {
                self.buf.push_back(MpiOp::Isend { dst, bytes });
            }
        }
        if posted {
            self.buf.push_back(MpiOp::WaitAll);
        }
        self.buf.push_back(MpiOp::Compute(self.sweep_block()));
        if (self.iter + 1).is_multiple_of(self.cfg.check_every) {
            self.buf.push_back(MpiOp::Allreduce { bytes: 8 });
        }
    }
}

impl OpSource for StencilRankGen {
    fn next_op(&mut self) -> Option<MpiOp> {
        loop {
            if let Some(op) = self.buf.pop_front() {
                return Some(op);
            }
            if self.done {
                return None;
            }
            if !self.started {
                self.started = true;
                self.buf.push_back(MpiOp::Init);
                continue;
            }
            if self.iter < self.cfg.iterations {
                self.fill_iteration();
                self.iter += 1;
            } else {
                self.buf.push_back(MpiOp::Barrier);
                self.buf.push_back(MpiOp::Finalize);
                self.done = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_ops;

    fn cfg() -> StencilConfig {
        StencilConfig {
            px: 3,
            py: 2,
            n: 60,
            iterations: 4,
            check_every: 2,
        }
    }

    #[test]
    fn trace_is_valid() {
        let t = crate::exact_trace(cfg().sources());
        assert!(
            titrace::validate::is_valid(&t),
            "{:?}",
            titrace::validate::validate(&t)
        );
    }

    #[test]
    fn tiles_partition_grid() {
        let c = cfg();
        let row_sum: u32 = (0..c.px).map(|col| c.tile(col).0).sum();
        assert_eq!(row_sum, c.n);
        let col_sum: u32 = (0..c.py).map(|row| c.tile(row * c.px).1).sum();
        assert_eq!(col_sum, c.n);
    }

    #[test]
    fn convergence_checks_happen_on_schedule() {
        let ops = collect_ops(cfg().rank_source(0));
        let n = ops
            .iter()
            .filter(|o| matches!(o, MpiOp::Allreduce { .. }))
            .count();
        assert_eq!(n, 2); // iterations 2 and 4
    }

    #[test]
    fn interior_rank_exchanges_four_halos() {
        let c = StencilConfig {
            px: 3,
            py: 3,
            n: 30,
            iterations: 1,
            check_every: 10,
        };
        let ops = collect_ops(c.rank_source(4)); // center of 3x3
        let sends = ops
            .iter()
            .filter(|o| matches!(o, MpiOp::Isend { .. }))
            .count();
        assert_eq!(sends, 4);
    }
}
