//! An FT-like workload: 3D FFT with global transposes.
//!
//! NPB-FT alternates local FFT compute with a full `MPI_Alltoall`
//! transpose of the distributed array — the communication pattern at the
//! opposite extreme from LU's small-message flood: few operations, each
//! moving large (rendezvous-sized) blocks between *every* pair of ranks
//! and saturating the bisection. Used by examples and tests to exercise
//! the collective path and network contention.

use std::collections::VecDeque;

use crate::{ComputeBlock, MpiOp, OpSource};

/// Configuration of the FT-like kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtConfig {
    /// Number of MPI processes.
    pub procs: u32,
    /// Grid extent per dimension (the array is `n³` complex values).
    pub n: u32,
    /// FFT iterations (forward + inverse counts as one).
    pub iterations: u32,
}

impl FtConfig {
    /// Complex values per rank.
    pub fn local_values(&self) -> u64 {
        let n = u64::from(self.n);
        n * n * n / u64::from(self.procs)
    }

    /// Bytes each rank exchanges with each peer in one transpose.
    pub fn alltoall_bytes(&self) -> u64 {
        // 16 bytes per complex value, split across all peers.
        (self.local_values() * 16 / u64::from(self.procs)).max(1)
    }

    /// Per-rank op stream.
    pub fn rank_source(&self, rank: u32) -> FtRankGen {
        assert!(rank < self.procs);
        FtRankGen {
            cfg: *self,
            iter: 0,
            started: false,
            done: false,
            buf: VecDeque::new(),
        }
    }

    /// All rank sources, boxed.
    pub fn sources(&self) -> Vec<Box<dyn OpSource>> {
        (0..self.procs)
            .map(|r| Box::new(self.rank_source(r)) as Box<dyn OpSource>)
            .collect()
    }
}

/// Lazy op stream of one FT rank.
#[derive(Debug, Clone)]
pub struct FtRankGen {
    cfg: FtConfig,
    iter: u32,
    started: bool,
    done: bool,
    buf: VecDeque<MpiOp>,
}

impl FtRankGen {
    fn fft_block(&self) -> ComputeBlock {
        let v = self.cfg.local_values() as f64;
        // ~5 n log2(n) flops per 1D FFT over three dimensions, folded
        // into an instructions-per-value constant.
        let instr = 5.0 * v * (self.cfg.n as f64).log2() * 3.0;
        ComputeBlock {
            instructions: instr,
            fn_calls: v * 0.001,
            working_set: (v as u64) * 16,
        }
    }

    fn evolve_block(&self) -> ComputeBlock {
        ComputeBlock {
            instructions: 6.0 * self.cfg.local_values() as f64,
            fn_calls: 3.0,
            working_set: self.cfg.local_values() * 16,
        }
    }
}

impl OpSource for FtRankGen {
    fn next_op(&mut self) -> Option<MpiOp> {
        loop {
            if let Some(op) = self.buf.pop_front() {
                return Some(op);
            }
            if self.done {
                return None;
            }
            if !self.started {
                self.started = true;
                self.buf.push_back(MpiOp::Init);
                self.buf.push_back(MpiOp::Bcast { bytes: 32, root: 0 });
                // Initial forward transform: compute + transpose.
                self.buf.push_back(MpiOp::Compute(self.fft_block()));
                if self.cfg.procs > 1 {
                    self.buf.push_back(MpiOp::Alltoall {
                        bytes: self.cfg.alltoall_bytes(),
                    });
                }
                continue;
            }
            if self.iter < self.cfg.iterations {
                self.buf.push_back(MpiOp::Compute(self.evolve_block()));
                self.buf.push_back(MpiOp::Compute(self.fft_block()));
                if self.cfg.procs > 1 {
                    self.buf.push_back(MpiOp::Alltoall {
                        bytes: self.cfg.alltoall_bytes(),
                    });
                }
                // Checksum reduction, as NPB-FT does each iteration.
                self.buf.push_back(MpiOp::Allreduce { bytes: 16 });
                self.iter += 1;
            } else {
                self.buf.push_back(MpiOp::Finalize);
                self.done = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_ops;

    fn cfg() -> FtConfig {
        FtConfig {
            procs: 8,
            n: 64,
            iterations: 3,
        }
    }

    #[test]
    fn trace_is_valid() {
        let t = crate::exact_trace(cfg().sources());
        assert!(
            titrace::validate::is_valid(&t),
            "{:?}",
            titrace::validate::validate(&t)
        );
    }

    #[test]
    fn transposes_move_rendezvous_sized_blocks() {
        let c = FtConfig {
            procs: 8,
            n: 256,
            iterations: 1,
        };
        // 256³ / 8 values × 16 B / 8 peers = 4 MiB per pair: rendezvous.
        assert!(c.alltoall_bytes() > 64 * 1024, "{}", c.alltoall_bytes());
    }

    #[test]
    fn one_alltoall_per_iteration_plus_initial() {
        let ops = collect_ops(cfg().rank_source(0));
        let n = ops
            .iter()
            .filter(|o| matches!(o, MpiOp::Alltoall { .. }))
            .count();
        assert_eq!(n, 1 + 3);
    }

    #[test]
    fn values_partition_exactly() {
        let c = cfg();
        assert_eq!(c.local_values() * u64::from(c.procs), 64 * 64 * 64);
    }

    #[test]
    fn single_process_needs_no_transpose() {
        let c = FtConfig {
            procs: 1,
            n: 32,
            iterations: 2,
        };
        let ops = collect_ops(c.rank_source(0));
        assert!(ops.iter().all(|o| !matches!(o, MpiOp::Alltoall { .. })));
    }
}
