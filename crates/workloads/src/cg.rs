//! A CG-like workload: sparse matrix-vector products over a ring
//! decomposition with two allreduces per iteration.
//!
//! Conjugate-gradient solvers are latency-bound at scale (small, frequent
//! global reductions), the opposite regime from LU's point-to-point
//! flood; the examples use this kernel to show the replay framework on a
//! collective-dominated application.

use std::collections::VecDeque;

use crate::{ComputeBlock, MpiOp, OpSource};

/// Configuration of the CG-like kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgConfig {
    /// Number of MPI processes.
    pub procs: u32,
    /// Rows of the (square) system matrix.
    pub rows: u32,
    /// Average non-zeros per row (drives compute volume).
    pub nnz_per_row: u32,
    /// CG iterations.
    pub iterations: u32,
}

impl CgConfig {
    /// Local row count of `rank` (uneven split, remainder to low ranks).
    pub fn local_rows(&self, rank: u32) -> u32 {
        self.rows / self.procs + u32::from(rank < self.rows % self.procs)
    }

    /// Halo exchange payload: one vector segment boundary (doubles).
    pub fn halo_bytes(&self, rank: u32) -> u64 {
        // Exchange an eighth of the local vector with each ring neighbour.
        (u64::from(self.local_rows(rank)) / 8).max(1) * 8
    }

    /// Per-rank op stream.
    pub fn rank_source(&self, rank: u32) -> CgRankGen {
        assert!(rank < self.procs);
        CgRankGen {
            cfg: *self,
            rank,
            iter: 0,
            started: false,
            buf: VecDeque::new(),
            done: false,
        }
    }

    /// All rank sources, boxed.
    pub fn sources(&self) -> Vec<Box<dyn OpSource>> {
        (0..self.procs)
            .map(|r| Box::new(self.rank_source(r)) as Box<dyn OpSource>)
            .collect()
    }
}

/// Lazy op stream of one CG rank.
#[derive(Debug, Clone)]
pub struct CgRankGen {
    cfg: CgConfig,
    rank: u32,
    iter: u32,
    started: bool,
    buf: VecDeque<MpiOp>,
    done: bool,
}

impl CgRankGen {
    fn spmv_block(&self) -> ComputeBlock {
        let rows = f64::from(self.cfg.local_rows(self.rank));
        let nnz = rows * f64::from(self.cfg.nnz_per_row);
        ComputeBlock {
            instructions: 14.0 * nnz,
            fn_calls: rows * 0.02,
            working_set: (nnz as u64) * 16,
        }
    }

    fn vector_block(&self, flops_per_row: f64) -> ComputeBlock {
        let rows = f64::from(self.cfg.local_rows(self.rank));
        ComputeBlock {
            instructions: flops_per_row * rows,
            fn_calls: 2.0,
            working_set: (rows as u64) * 8,
        }
    }

    fn fill_iteration(&mut self) {
        let p = self.cfg.procs;
        let left = (self.rank + p - 1) % p;
        let right = (self.rank + 1) % p;
        let bytes = self.cfg.halo_bytes(self.rank);
        if p > 1 {
            self.buf.push_back(MpiOp::Irecv { src: left, bytes });
            self.buf.push_back(MpiOp::Irecv { src: right, bytes });
            self.buf.push_back(MpiOp::Isend { dst: left, bytes });
            self.buf.push_back(MpiOp::Isend { dst: right, bytes });
            self.buf.push_back(MpiOp::WaitAll);
        }
        self.buf.push_back(MpiOp::Compute(self.spmv_block()));
        self.buf.push_back(MpiOp::Compute(self.vector_block(4.0)));
        self.buf.push_back(MpiOp::Allreduce { bytes: 8 });
        self.buf.push_back(MpiOp::Compute(self.vector_block(6.0)));
        self.buf.push_back(MpiOp::Allreduce { bytes: 8 });
    }
}

impl OpSource for CgRankGen {
    fn next_op(&mut self) -> Option<MpiOp> {
        loop {
            if let Some(op) = self.buf.pop_front() {
                return Some(op);
            }
            if self.done {
                return None;
            }
            if !self.started {
                self.started = true;
                self.buf.push_back(MpiOp::Init);
                self.buf.push_back(MpiOp::Bcast { bytes: 24, root: 0 });
                continue;
            }
            if self.iter < self.cfg.iterations {
                self.fill_iteration();
                self.iter += 1;
            } else {
                self.buf.push_back(MpiOp::Allreduce { bytes: 8 }); // final norm
                self.buf.push_back(MpiOp::Finalize);
                self.done = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_ops;

    fn cfg() -> CgConfig {
        CgConfig {
            procs: 4,
            rows: 1000,
            nnz_per_row: 27,
            iterations: 5,
        }
    }

    #[test]
    fn trace_is_valid() {
        let t = crate::exact_trace(cfg().sources());
        assert!(
            titrace::validate::is_valid(&t),
            "{:?}",
            titrace::validate::validate(&t)
        );
    }

    #[test]
    fn two_allreduces_per_iteration() {
        let ops = collect_ops(cfg().rank_source(0));
        let n = ops
            .iter()
            .filter(|o| matches!(o, MpiOp::Allreduce { .. }))
            .count();
        assert_eq!(n, 2 * 5 + 1);
    }

    #[test]
    fn rows_partition() {
        let c = CgConfig {
            procs: 3,
            rows: 10,
            nnz_per_row: 5,
            iterations: 1,
        };
        let total: u32 = (0..3).map(|r| c.local_rows(r)).sum();
        assert_eq!(total, 10);
        assert_eq!(c.local_rows(0), 4);
        assert_eq!(c.local_rows(2), 3);
    }

    #[test]
    fn single_process_has_no_p2p() {
        let c = CgConfig {
            procs: 1,
            rows: 100,
            nnz_per_row: 9,
            iterations: 3,
        };
        let ops = collect_ops(c.rank_source(0));
        assert!(ops
            .iter()
            .all(|o| !matches!(o, MpiOp::Send { .. } | MpiOp::Isend { .. })));
    }
}
