//! Calibration of the replay framework.
//!
//! "An essential step to make accurate performance predictions through
//! trace replay is the calibration of the simulation framework. In our
//! framework, it consists in determining the number of instructions a
//! CPU can compute in one second" (Section 2.3). The latency/bandwidth
//! side of the calibration is carried by the platform description (the
//! `platform.json` handed to the replay tool); this crate estimates the
//! instruction rates.
//!
//! Two procedures are implemented:
//!
//! * [`CalibrationMethod::Simple`] — the first implementation's: run the
//!   A-4 instance, divide measured instructions by measured compute
//!   time. Because A-4's working set is cache-resident, the resulting
//!   rate is too optimistic for instances that spill (Section 2.3).
//! * [`CalibrationMethod::CacheAware`] — Section 3.4: additionally run
//!   B-4 and C-4 to obtain one rate per class, and pick per instance:
//!   "depending on whether the current instance handles data that fit in
//!   the L2 cache or not, we use the rate coming from the A-4
//!   calibration or the one that corresponds to the instance class."
//!
//! Note the built-in approximation the paper accepts: the class rate is
//! measured on *4 processes* (large per-rank blocks, heavy spill), then
//! applied to instances of the same class at any process count, whose
//! blocks may spill far less. This is what keeps Figure 6's residual
//! error non-zero, and it emerges here for the same reason.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod network;

pub use network::{calibrate_network, LinkEstimate, NetworkCalibration};

use std::collections::BTreeMap;

use acquisition::{acquire, CompilerOpt, Instrumentation};
use emulator::Testbed;
use hwmodel::CpuModel;
use platform::HostId;
use workloads::lu::{LuClass, LuConfig};

/// Which calibration procedure to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationMethod {
    /// A-4 only (the first implementation).
    Simple,
    /// A-4 plus one run per studied class (the paper's fix).
    CacheAware,
    /// The paper's future work, implemented here: "improving our
    /// calibration method to automatically take cache usage into account
    /// and better estimate the instruction rate used by the simulator."
    /// A synthetic compute micro-benchmark sweeps working-set sizes
    /// around the cache capacity and fits a rate-vs-working-set curve;
    /// the replay rate is then interpolated at each instance's *own*
    /// per-rank working set instead of a class-4 proxy's.
    Automatic,
}

/// The product of a calibration: instruction rates for the replay
/// engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The procedure used.
    pub method: CalibrationMethod,
    /// Rate measured on the cache-resident reference instance (A-4),
    /// instructions/second.
    pub base_rate: f64,
    /// Per-class rates measured on `<class>-4` runs.
    pub class_rates: BTreeMap<LuClass, f64>,
    /// Rate-vs-working-set curve measured by the automatic method,
    /// sorted by working set (bytes → instructions/second).
    pub rate_curve: Vec<(u64, f64)>,
    /// Per-core cache capacity of the calibrated cluster, bytes.
    pub cache_bytes: u64,
}

impl Calibration {
    /// The rate the replay engine should use for `instance`.
    pub fn rate_for(&self, instance: &LuConfig) -> f64 {
        match self.method {
            CalibrationMethod::Simple => self.base_rate,
            CalibrationMethod::CacheAware => {
                if instance.max_working_set() <= self.cache_bytes {
                    self.base_rate
                } else {
                    *self
                        .class_rates
                        .get(&instance.class)
                        .unwrap_or(&self.base_rate)
                }
            }
            CalibrationMethod::Automatic => self.rate_at_working_set(instance.max_working_set()),
        }
    }

    /// Interpolates the measured rate curve at a working-set size
    /// (piece-wise linear; clamped at the measured extremes). Falls back
    /// to the base rate when no curve was measured.
    pub fn rate_at_working_set(&self, ws: u64) -> f64 {
        if self.rate_curve.is_empty() {
            return self.base_rate;
        }
        let first = self.rate_curve[0];
        if ws <= first.0 {
            return first.1;
        }
        let last = self.rate_curve[self.rate_curve.len() - 1];
        if ws >= last.0 {
            return last.1;
        }
        for w in self.rate_curve.windows(2) {
            let ((w0, r0), (w1, r1)) = (w[0], w[1]);
            if ws >= w0 && ws <= w1 {
                let f = (ws - w0) as f64 / (w1 - w0) as f64;
                return r0 + f * (r1 - r0);
            }
        }
        last.1
    }

    /// A hand-built calibration (tests, what-if studies).
    pub fn synthetic(base_rate: f64, cache_bytes: u64) -> Calibration {
        Calibration {
            method: CalibrationMethod::Simple,
            base_rate,
            class_rates: BTreeMap::new(),
            rate_curve: Vec::new(),
            cache_bytes,
        }
    }
}

/// Number of time steps used for calibration runs. Rates are intensive
/// quantities (instructions per second), so a short run measures the
/// same rate as the official 250-step instance.
pub const CALIBRATION_STEPS: u32 = 20;

/// Runs the calibration procedure on `testbed` for traces acquired at
/// `compiler`. `classes` lists the classes the cache-aware method will
/// measure (the paper uses B and C).
///
/// `mode` is the instrumentation under which the calibration run's
/// counters are read. This matters: the old framework calibrated with
/// the *same* TAU instrumentation that produced its traces, so the
/// counter inflation largely cancelled between calibration and replay —
/// which is why the paper's legacy accuracy (Figure 3) is dominated by
/// the communication model, not by issue #2. Pass
/// [`Instrumentation::Coarse`] for an idealized uninflated calibration.
///
/// # Errors
/// Propagates emulation failures.
pub fn calibrate(
    testbed: &Testbed,
    method: CalibrationMethod,
    compiler: CompilerOpt,
    classes: &[LuClass],
    mode: Instrumentation,
    seed: u64,
) -> Result<Calibration, String> {
    let base_rate = measure_rate(testbed, LuClass::A, compiler, mode, seed)?;
    let mut class_rates = BTreeMap::new();
    let mut rate_curve = Vec::new();
    match method {
        CalibrationMethod::Simple => {}
        CalibrationMethod::CacheAware => {
            class_rates.insert(LuClass::A, base_rate);
            for class in classes {
                if *class == LuClass::A {
                    continue;
                }
                class_rates.insert(*class, measure_rate(testbed, *class, compiler, mode, seed)?);
            }
        }
        CalibrationMethod::Automatic => {
            rate_curve = measure_rate_curve(testbed, compiler, seed)?;
        }
    }
    let hosts = testbed.hosts(4)?;
    let cache_bytes = CpuModel::for_host(testbed.platform.host(hosts[0])).cache_bytes;
    Ok(Calibration {
        method,
        base_rate,
        class_rates,
        rate_curve,
        cache_bytes,
    })
}

/// Working-set multipliers (relative to the cache capacity) swept by the
/// automatic calibration.
const AUTO_SWEEP: [f64; 9] = [0.25, 0.5, 1.0, 1.25, 1.6, 2.0, 3.0, 4.5, 7.0];

/// Runs the synthetic micro-benchmark sweep: a single-rank compute-only
/// program per working-set size, rate measured exactly as for the LU
/// calibration runs.
fn measure_rate_curve(
    testbed: &Testbed,
    compiler: CompilerOpt,
    seed: u64,
) -> Result<Vec<(u64, f64)>, String> {
    use workloads::{ComputeBlock, MpiOp, OpSource, VecSource};
    let hosts = testbed.hosts(1)?;
    let cache = testbed.platform.host(hosts[0]).cache_bytes as f64;
    let mut curve = Vec::with_capacity(AUTO_SWEEP.len());
    for (i, mult) in AUTO_SWEEP.iter().enumerate() {
        let ws = (cache * mult) as u64;
        let instructions = 2.0e9;
        let prog = vec![
            MpiOp::Init,
            MpiOp::Compute(ComputeBlock {
                instructions,
                fn_calls: 0.0,
                working_set: ws,
            }),
            MpiOp::Finalize,
        ];
        let sources: Vec<Box<dyn OpSource>> = vec![Box::new(VecSource::new(prog.clone()))];
        let run = testbed.run(sources, Instrumentation::Coarse, compiler)?;
        let counters = acquire(
            vec![Box::new(VecSource::new(prog)) as Box<dyn OpSource>],
            Instrumentation::Coarse,
            compiler,
            seed.wrapping_add(i as u64),
        )
        .rank_counters;
        let compute = run.compute_seconds[0];
        if compute <= 0.0 {
            return Err(format!(
                "micro-benchmark at ws={ws} recorded no compute time"
            ));
        }
        curve.push((ws, counters[0] / compute));
    }
    curve.sort_by_key(|(ws, _)| *ws);
    Ok(curve)
}

/// Measures the instruction rate of one `<class>-4` run: coarse-grain
/// counters over an emulated execution, instructions divided by compute
/// time.
fn measure_rate(
    testbed: &Testbed,
    class: LuClass,
    compiler: CompilerOpt,
    mode: Instrumentation,
    seed: u64,
) -> Result<f64, String> {
    let lu = LuConfig::new(class, 4).with_steps(CALIBRATION_STEPS);
    let run = testbed.run_lu(&lu, mode, compiler)?;
    let counters = acquire(lu.sources(), mode, compiler, seed).rank_counters;
    let total_instr: f64 = counters.iter().sum();
    let total_compute: f64 = run.compute_seconds.iter().sum();
    if total_compute <= 0.0 {
        return Err(format!(
            "calibration run {class}-4 recorded no compute time"
        ));
    }
    Ok(total_instr / total_compute)
}

/// Convenience: the placement-resolved host list for a 4-rank
/// calibration run (exposed for diagnostics).
pub fn calibration_hosts(testbed: &Testbed) -> Result<Vec<HostId>, String> {
    testbed.hosts(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_calibration_measures_cache_resident_rate() {
        let tb = Testbed::bordereau();
        let cal = calibrate(
            &tb,
            CalibrationMethod::Simple,
            CompilerOpt::O0,
            &[],
            Instrumentation::Coarse,
            1,
        )
        .unwrap();
        // A-4 (32×32 blocks) is cache-resident on bordereau, so the rate
        // must be close to the host's base speed.
        let base = platform::clusters::BORDEREAU_SPEED;
        assert!(
            (cal.base_rate - base).abs() / base < 0.02,
            "A-4 rate {} vs base {}",
            cal.base_rate,
            base
        );
        assert!(cal.class_rates.is_empty());
    }

    #[test]
    fn cache_aware_rates_are_lower_for_spilling_classes() {
        let tb = Testbed::bordereau();
        let cal = calibrate(
            &tb,
            CalibrationMethod::CacheAware,
            CompilerOpt::O3,
            &[LuClass::B, LuClass::C],
            Instrumentation::Coarse,
            1,
        )
        .unwrap();
        let b = cal.class_rates[&LuClass::B];
        let c = cal.class_rates[&LuClass::C];
        assert!(
            b < cal.base_rate,
            "B-4 rate {} !< A-4 rate {}",
            b,
            cal.base_rate
        );
        assert!(c < b, "C-4 rate {c} !< B-4 rate {b}");
    }

    #[test]
    fn rate_selection_follows_the_cache_predicate() {
        let tb = Testbed::bordereau();
        let cal = calibrate(
            &tb,
            CalibrationMethod::CacheAware,
            CompilerOpt::O3,
            &[LuClass::B, LuClass::C],
            Instrumentation::Coarse,
            1,
        )
        .unwrap();
        // B-8 spills the 1 MiB cache -> class rate; B-64 fits -> A rate.
        let b8 = LuConfig::new(LuClass::B, 8);
        let b64 = LuConfig::new(LuClass::B, 64);
        assert_eq!(cal.rate_for(&b8), cal.class_rates[&LuClass::B]);
        assert_eq!(cal.rate_for(&b64), cal.base_rate);
    }

    #[test]
    fn simple_method_ignores_instance() {
        let tb = Testbed::bordereau();
        let cal = calibrate(
            &tb,
            CalibrationMethod::Simple,
            CompilerOpt::O3,
            &[],
            Instrumentation::Coarse,
            1,
        )
        .unwrap();
        let b8 = LuConfig::new(LuClass::B, 8);
        let c64 = LuConfig::new(LuClass::C, 64);
        assert_eq!(cal.rate_for(&b8), cal.base_rate);
        assert_eq!(cal.rate_for(&c64), cal.base_rate);
    }

    #[test]
    fn graphene_needs_no_class_rates() {
        // On graphene every studied instance is cache-resident, so the
        // cache-aware method still always selects the A-4 rate
        // (Section 3.4: "calibrating the simulator with a run of the A-4
        // instance is then enough").
        let tb = Testbed::graphene();
        let cal = calibrate(
            &tb,
            CalibrationMethod::CacheAware,
            CompilerOpt::O3,
            &[LuClass::B, LuClass::C],
            Instrumentation::Coarse,
            1,
        )
        .unwrap();
        for class in [LuClass::B, LuClass::C] {
            for procs in [8u32, 16, 32, 64, 128] {
                let inst = LuConfig::new(class, procs);
                assert_eq!(
                    cal.rate_for(&inst),
                    cal.base_rate,
                    "{} unexpectedly used a class rate",
                    inst.label()
                );
            }
        }
    }

    #[test]
    fn synthetic_calibration() {
        let cal = Calibration::synthetic(2e9, 1 << 20);
        assert_eq!(cal.rate_for(&LuConfig::new(LuClass::C, 8)), 2e9);
    }

    #[test]
    fn calibration_is_deterministic() {
        let tb = Testbed::bordereau();
        let a = calibrate(
            &tb,
            CalibrationMethod::Simple,
            CompilerOpt::O0,
            &[],
            Instrumentation::Coarse,
            9,
        )
        .unwrap();
        let b = calibrate(
            &tb,
            CalibrationMethod::Simple,
            CompilerOpt::O0,
            &[],
            Instrumentation::Coarse,
            9,
        )
        .unwrap();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod automatic_tests {
    use super::*;

    #[test]
    fn automatic_curve_is_monotone_decreasing() {
        let tb = Testbed::bordereau();
        let cal = calibrate(
            &tb,
            CalibrationMethod::Automatic,
            CompilerOpt::O3,
            &[],
            Instrumentation::Coarse,
            1,
        )
        .unwrap();
        assert!(cal.rate_curve.len() >= 5);
        for w in cal.rate_curve.windows(2) {
            assert!(
                w[1].1 <= w[0].1 * 1.01,
                "rate curve not decreasing: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        // Cache-resident end of the sweep sits near the base speed.
        let top = cal.rate_curve[0].1;
        let base = platform::clusters::BORDEREAU_SPEED;
        assert!((top - base).abs() / base < 0.02, "{top} vs {base}");
    }

    #[test]
    fn automatic_rate_tracks_instance_working_set() {
        let tb = Testbed::bordereau();
        let cal = calibrate(
            &tb,
            CalibrationMethod::Automatic,
            CompilerOpt::O3,
            &[],
            Instrumentation::Coarse,
            1,
        )
        .unwrap();
        // B-8 spills mildly; B-4 spills heavily. The automatic method
        // must give B-8 a HIGHER rate than a B-4-sized working set would
        // receive — the precision the class-based method lacks.
        let b8 = LuConfig::new(LuClass::B, 8);
        let b4 = LuConfig::new(LuClass::B, 4);
        let r8 = cal.rate_for(&b8);
        let r4 = cal.rate_for(&b4);
        assert!(r8 > r4 * 1.05, "B-8 {r8} should beat B-4 {r4}");
        // Cache-resident instances run at the top of the curve.
        let b64 = LuConfig::new(LuClass::B, 64);
        assert!((cal.rate_for(&b64) - cal.rate_curve[0].1).abs() < 1e-6 * cal.rate_curve[0].1);
    }

    #[test]
    fn interpolation_clamps_at_extremes() {
        let mut cal = Calibration::synthetic(1e9, 1 << 20);
        cal.method = CalibrationMethod::Automatic;
        cal.rate_curve = vec![(1000, 2e9), (2000, 1e9)];
        assert_eq!(cal.rate_at_working_set(10), 2e9);
        assert_eq!(cal.rate_at_working_set(1_000_000), 1e9);
        assert_eq!(cal.rate_at_working_set(1500), 1.5e9);
    }
}
