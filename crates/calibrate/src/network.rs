//! Network calibration: estimating the platform description's latency
//! and bandwidth from ping-pong measurements.
//!
//! The paper's calibration "consists in determining the number of
//! instructions a CPU can compute in one second *and the latency and
//! bandwidth of communication links*". The instruction side lives in the
//! crate root; this module covers the network side: a classic ping-pong
//! sweep over message sizes, fitted to the affine model
//! `time(s) = latency + s / bandwidth` by least squares on the
//! one-way times.
//!
//! Two regimes are fitted separately, split at the eager/rendezvous
//! threshold — mirroring how MPI benchmarking tools (and SMPI's own
//! calibration scripts) handle the protocol switch.

use emulator::Testbed;
use workloads::{MpiOp, OpSource, VecSource};

use acquisition::{CompilerOpt, Instrumentation};

/// One fitted affine segment: `time(bytes) = latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkEstimate {
    /// Effective one-way latency, seconds.
    pub latency: f64,
    /// Effective bandwidth, bytes/second.
    pub bandwidth: f64,
}

/// The network calibration result.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkCalibration {
    /// Fit over eager-sized messages (`< 64 KiB`).
    pub eager: LinkEstimate,
    /// Fit over rendezvous-sized messages.
    pub rendezvous: LinkEstimate,
    /// The raw `(bytes, one_way_seconds)` measurements.
    pub samples: Vec<(u64, f64)>,
}

impl NetworkCalibration {
    /// Predicted one-way time for a message of `bytes`.
    pub fn one_way_seconds(&self, bytes: u64) -> f64 {
        let seg = if bytes < 64 * 1024 {
            &self.eager
        } else {
            &self.rendezvous
        };
        seg.latency + bytes as f64 / seg.bandwidth
    }
}

/// Message sizes swept by the ping-pong (mirrors the usual
/// power-of-two sweep of MPI benchmarks).
const SWEEP_BYTES: [u64; 12] = [
    64,
    256,
    1024,
    4096,
    16 * 1024,
    32 * 1024,
    48 * 1024,
    128 * 1024,
    256 * 1024,
    512 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
];

/// Ping-pong iterations per size (amortizes protocol noise).
const REPS: u32 = 20;

/// Runs the ping-pong sweep between the first two hosts of `testbed`
/// and fits the two affine segments.
///
/// # Errors
/// Propagates emulation failures.
pub fn calibrate_network(testbed: &Testbed) -> Result<NetworkCalibration, String> {
    let mut samples = Vec::with_capacity(SWEEP_BYTES.len());
    for bytes in SWEEP_BYTES {
        let time = ping_pong_seconds(testbed, bytes)?;
        samples.push((bytes, time));
    }
    let eager: Vec<(u64, f64)> = samples
        .iter()
        .copied()
        .filter(|(b, _)| *b < 64 * 1024)
        .collect();
    let rendezvous: Vec<(u64, f64)> = samples
        .iter()
        .copied()
        .filter(|(b, _)| *b >= 64 * 1024)
        .collect();
    Ok(NetworkCalibration {
        eager: fit_affine(&eager)?,
        rendezvous: fit_affine(&rendezvous)?,
        samples,
    })
}

/// Measures the mean one-way time of a `bytes`-sized message between
/// ranks 0 and 1.
fn ping_pong_seconds(testbed: &Testbed, bytes: u64) -> Result<f64, String> {
    let mut r0 = Vec::with_capacity(2 * REPS as usize);
    let mut r1 = Vec::with_capacity(2 * REPS as usize);
    for _ in 0..REPS {
        r0.push(MpiOp::Send { dst: 1, bytes });
        r0.push(MpiOp::Recv { src: 1, bytes });
        r1.push(MpiOp::Recv { src: 0, bytes });
        r1.push(MpiOp::Send { dst: 0, bytes });
    }
    let sources: Vec<Box<dyn OpSource>> =
        vec![Box::new(VecSource::new(r0)), Box::new(VecSource::new(r1))];
    let run = testbed.run(sources, Instrumentation::None, CompilerOpt::O3)?;
    // Each rep is a full round trip: two one-way transfers.
    Ok(run.time / (2.0 * f64::from(REPS)))
}

/// Ordinary least squares for `t = a + b·s`, returned as
/// `latency = a`, `bandwidth = 1/b`.
fn fit_affine(samples: &[(u64, f64)]) -> Result<LinkEstimate, String> {
    if samples.len() < 2 {
        return Err("need at least two sizes per protocol regime".into());
    }
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|(b, _)| *b as f64).sum();
    let sy: f64 = samples.iter().map(|(_, t)| *t).sum();
    let sxx: f64 = samples.iter().map(|(b, _)| (*b as f64).powi(2)).sum();
    let sxy: f64 = samples.iter().map(|(b, t)| *b as f64 * *t).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return Err("degenerate sweep (all sizes equal)".into());
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    if slope <= 0.0 {
        return Err(format!("non-physical fit: slope {slope}"));
    }
    Ok(LinkEstimate {
        latency: intercept.max(0.0),
        bandwidth: 1.0 / slope,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_a_synthetic_affine_law() {
        let lat = 30e-6;
        let bw = 1.0e8;
        let samples: Vec<(u64, f64)> = [1024u64, 8192, 65536, 262144]
            .iter()
            .map(|b| (*b, lat + *b as f64 / bw))
            .collect();
        let est = fit_affine(&samples).unwrap();
        assert!((est.latency - lat).abs() / lat < 1e-9);
        assert!((est.bandwidth - bw).abs() / bw < 1e-9);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(fit_affine(&[(100, 1.0)]).is_err());
        assert!(fit_affine(&[(100, 1.0), (100, 2.0)]).is_err());
    }

    #[test]
    fn bordereau_calibration_is_physical() {
        let cal = calibrate_network(&Testbed::bordereau()).unwrap();
        // Eager effective bandwidth must be below nominal NIC speed and
        // above a tenth of it; latency in the tens of microseconds.
        assert!(cal.eager.bandwidth < 1.21e8, "{:?}", cal.eager);
        assert!(cal.eager.bandwidth > 1.2e7, "{:?}", cal.eager);
        assert!(
            cal.eager.latency > 5e-6 && cal.eager.latency < 5e-4,
            "{:?}",
            cal.eager
        );
        // Rendezvous achieves better effective bandwidth than eager
        // (larger messages amortize the protocol factors).
        assert!(
            cal.rendezvous.bandwidth > cal.eager.bandwidth,
            "rdv {:?} vs eager {:?}",
            cal.rendezvous,
            cal.eager
        );
        // Monotone one-way predictions.
        assert!(cal.one_way_seconds(1024) < cal.one_way_seconds(1 << 20));
    }

    #[test]
    fn both_clusters_fit_in_the_gige_regime() {
        // Both platforms model GigE-era interconnects: effective eager
        // latencies within the same order of magnitude, and effective
        // bandwidths below the nominal NIC rate.
        let b = calibrate_network(&Testbed::bordereau()).unwrap();
        let g = calibrate_network(&Testbed::graphene()).unwrap();
        for (name, cal) in [("bordereau", &b), ("graphene", &g)] {
            assert!(
                cal.eager.latency > 2e-5 && cal.eager.latency < 2e-4,
                "{name}: {:?}",
                cal.eager
            );
            assert!(cal.eager.bandwidth < 1.21e8, "{name}: {:?}", cal.eager);
        }
        let ratio = g.eager.latency / b.eager.latency;
        assert!((0.5..2.0).contains(&ratio), "latency ratio {ratio}");
    }

    #[test]
    fn samples_cover_both_regimes() {
        let cal = calibrate_network(&Testbed::graphene()).unwrap();
        assert!(cal.samples.iter().filter(|(b, _)| *b < 65536).count() >= 4);
        assert!(cal.samples.iter().filter(|(b, _)| *b >= 65536).count() >= 4);
        for w in cal.samples.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.8, "one-way time dropped: {w:?}");
        }
    }
}
