//! The MSG rank actor and run driver.
//!
//! The actor mirrors the old replay tool's action handlers: small sends
//! go through the asynchronous path (sender continues immediately), large
//! sends block until delivery, receives block on the mailbox, and
//! collectives synchronise all ranks around a monolithic delay.

use std::collections::VecDeque;

use platform::{HostId, Platform};
use simkernel::obs::{Metrics, Recorder, RunObservation, SpanKind, SpanLog};
use simkernel::{Actor, ActorId, Duration, Kernel, Sim, SimOutcome, SimStep, Status, Time, Wake};
use workloads::{MpiOp, OpSource};

use crate::world::{
    MsgRecvResult, MsgSendResult, MsgStats, MsgWorld, RecvId, ReqId, TaskId, COLL_RELEASE_KEY,
};
use crate::MsgConfig;

const DELAY_KEY: u64 = u64::MAX;

#[derive(Debug)]
enum Waiting {
    Ready,
    Delay,
    Compute(simkernel::ActivityId),
    Task(TaskId),
    Pending(RecvId),
    Reqs(Vec<ReqId>),
    Collective,
}

struct Staged {
    op: MpiOp,
    plan: Option<smpi::ComputePlan>,
}

/// Executes one rank's op stream under MSG semantics.
pub struct MsgRankActor {
    rank: u32,
    me: ActorId,
    source: Box<dyn OpSource>,
    pending: VecDeque<ReqId>,
    waiting: Waiting,
    staged: Option<Staged>,
    coll_index: usize,
    /// Instant at which the current blocking condition began (span
    /// recording).
    blocked_at: f64,
    /// Classification of the current blocking condition, captured when
    /// the block is entered.
    block_kind: SpanKind,
    /// The remote rank whose action will resolve the block, when known.
    block_peer: Option<u32>,
}

impl MsgRankActor {
    /// Creates the actor for `rank` (spawned as `ActorId(rank)`).
    pub fn new(rank: u32, me: ActorId, source: Box<dyn OpSource>) -> MsgRankActor {
        MsgRankActor {
            rank,
            me,
            source,
            pending: VecDeque::new(),
            waiting: Waiting::Ready,
            staged: None,
            coll_index: 0,
            blocked_at: 0.0,
            block_kind: SpanKind::Wait,
            block_peer: None,
        }
    }

    /// Notes what the rank is about to block on (consumed by
    /// `absorb_wake` when the condition resolves).
    fn note_block(&mut self, kind: SpanKind, peer: Option<u32>) {
        self.block_kind = kind;
        self.block_peer = peer;
    }

    fn absorb_wake(&mut self, world: &mut MsgWorld, now: f64, wake: Wake) {
        let was_blocked = !matches!(self.waiting, Waiting::Ready);
        match (&mut self.waiting, wake) {
            (Waiting::Ready, _) => {}
            (Waiting::Delay, Wake::Timer(DELAY_KEY)) => self.waiting = Waiting::Ready,
            (Waiting::Collective, Wake::Timer(COLL_RELEASE_KEY)) => {
                self.waiting = Waiting::Ready;
            }
            (Waiting::Compute(a), Wake::Activity(b)) if *a == b => {
                self.waiting = Waiting::Ready;
                self.staged = None;
            }
            (Waiting::Task(id), _) if world.task_done(*id) => {
                self.waiting = Waiting::Ready;
                self.staged = None;
            }
            (Waiting::Pending(id), _) if world.pending_recv_done(*id) => {
                self.waiting = Waiting::Ready;
                self.staged = None;
            }
            (Waiting::Reqs(reqs), _) => {
                let me = self.me;
                reqs.retain(|r| !world.take_req(*r, me));
                if reqs.is_empty() {
                    self.waiting = Waiting::Ready;
                    self.staged = None;
                }
            }
            _ => {}
        }
        if was_blocked && matches!(self.waiting, Waiting::Ready) {
            world.record_span(
                self.rank,
                self.blocked_at,
                now,
                self.block_kind,
                self.block_peer,
            );
        }
    }

    fn perform(&mut self, kernel: &mut Kernel, world: &mut MsgWorld, staged: Staged) {
        let Staged { op, plan } = staged;
        match op {
            MpiOp::Init | MpiOp::Finalize => {}
            MpiOp::Compute(_) => {
                let plan = plan.expect("compute staged without plan");
                world.account_compute(self.rank, plan.seconds());
                if plan.work > 0.0 {
                    let act = kernel.start_activity(plan.work, plan.rate);
                    kernel.subscribe(act, self.me);
                    self.waiting = Waiting::Compute(act);
                    self.note_block(SpanKind::Compute, None);
                    self.staged = Some(Staged {
                        op,
                        plan: Some(plan),
                    });
                }
            }
            MpiOp::Send { dst, bytes } => {
                // The old replay: async for small, blocking task-send for
                // large.
                let blocking = bytes >= world.cfg.async_threshold;
                let (res, _) = world.send(kernel, self.rank, dst, bytes, blocking, false, self.me);
                if let MsgSendResult::Wait(t) = res {
                    self.waiting = Waiting::Task(t);
                    self.note_block(SpanKind::Send, Some(dst));
                }
            }
            MpiOp::Isend { dst, bytes } => {
                let (_, req) = world.send(kernel, self.rank, dst, bytes, false, true, self.me);
                self.pending
                    .push_back(req.expect("tracked send has a request"));
            }
            MpiOp::Recv { src, bytes } => {
                let (res, _) = world.recv(kernel, self.rank, src, bytes, true, self.me);
                match res {
                    MsgRecvResult::WaitTask(t) => self.waiting = Waiting::Task(t),
                    MsgRecvResult::WaitPending(p) => self.waiting = Waiting::Pending(p),
                }
                self.note_block(SpanKind::Recv, Some(src));
            }
            MpiOp::Irecv { src, bytes } => {
                let (_, req) = world.recv(kernel, self.rank, src, bytes, false, self.me);
                self.pending
                    .push_back(req.expect("non-blocking recv has a request"));
            }
            MpiOp::Wait => {
                let req = self
                    .pending
                    .pop_front()
                    .unwrap_or_else(|| panic!("rank {}: wait with no pending request", self.rank));
                if !world.take_req(req, self.me) {
                    self.waiting = Waiting::Reqs(vec![req]);
                    self.note_block(SpanKind::Wait, None);
                }
            }
            MpiOp::WaitAll => {
                let me = self.me;
                let mut incomplete = Vec::new();
                while let Some(req) = self.pending.pop_front() {
                    if !world.take_req(req, me) {
                        incomplete.push(req);
                    }
                }
                if !incomplete.is_empty() {
                    self.waiting = Waiting::Reqs(incomplete);
                    self.note_block(SpanKind::Wait, None);
                }
            }
            collective => {
                let index = self.coll_index;
                self.coll_index += 1;
                if world.enter_collective(kernel, index, &collective) {
                    self.waiting = Waiting::Collective;
                    self.note_block(SpanKind::Collective, None);
                }
            }
        }
    }
}

impl Actor<MsgWorld> for MsgRankActor {
    fn resume(&mut self, kernel: &mut Kernel, world: &mut MsgWorld, wake: Wake) -> Status {
        self.absorb_wake(world, kernel.now().as_secs(), wake);
        loop {
            if !matches!(self.waiting, Waiting::Ready) {
                self.blocked_at = kernel.now().as_secs();
                return Status::Blocked;
            }
            if let Some(staged) = self.staged.take() {
                self.perform(kernel, world, staged);
                continue;
            }
            let Some(op) = self.source.next_op() else {
                return Status::Finished;
            };
            let plan = match &op {
                MpiOp::Compute(block) => Some(world.hooks.plan_compute(self.rank, block)),
                _ => None,
            };
            let delay = match &op {
                MpiOp::Compute(_) => plan.as_ref().map_or(0.0, |p| p.extra_delay),
                MpiOp::Init | MpiOp::Finalize => 0.0,
                _ => world.hooks.mpi_call_delay(self.rank),
            };
            if delay > 0.0 {
                kernel.set_timer(self.me, Duration::from_secs(delay), DELAY_KEY);
                self.staged = Some(Staged { op, plan });
                self.waiting = Waiting::Delay;
                self.note_block(SpanKind::Overhead, None);
                self.blocked_at = kernel.now().as_secs();
                return Status::Blocked;
            }
            self.staged = Some(Staged { op, plan });
        }
    }
}

/// The MSG transport daemon.
pub struct MsgTransportActor;

impl Actor<MsgWorld> for MsgTransportActor {
    fn resume(&mut self, kernel: &mut Kernel, world: &mut MsgWorld, wake: Wake) -> Status {
        world.on_transport_wake(kernel, wake);
        Status::Blocked
    }
}

/// Outcome of one MSG-simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MsgResult {
    /// Application makespan, seconds.
    pub total_time: f64,
    /// Per-rank finish times.
    pub rank_times: Vec<f64>,
    /// Per-rank compute seconds.
    pub compute_seconds: Vec<f64>,
    /// Counters.
    pub stats: MsgStats,
    /// Kernel events processed.
    pub events: u64,
}

/// Runs `sources` on `hosts` under the MSG back-end.
///
/// # Errors
/// Returns the blocked ranks on deadlock.
pub fn run_msg(
    platform: &Platform,
    hosts: &[HostId],
    sources: Vec<Box<dyn OpSource>>,
    cfg: MsgConfig,
    hooks: Box<dyn smpi::ExecHooks>,
) -> Result<MsgResult, String> {
    run_inner(platform, hosts, sources, cfg, hooks, None).map(|(r, _)| r)
}

/// Like [`run_msg`], with per-rank span recording enabled; returns the
/// Gantt data (same structure the SMPI runner produces) alongside the
/// result.
///
/// # Errors
/// See [`run_msg`].
pub fn run_msg_traced(
    platform: &Platform,
    hosts: &[HostId],
    sources: Vec<Box<dyn OpSource>>,
    cfg: MsgConfig,
    hooks: Box<dyn smpi::ExecHooks>,
) -> Result<(MsgResult, smpi::Timeline), String> {
    run_msg_observed(platform, hosts, sources, cfg, hooks, true).map(|(r, obs)| {
        let log = obs.spans.expect("span recording was enabled");
        (r, smpi::Timeline::from_spans(&log))
    })
}

/// Like [`run_msg`], returning the unified observation alongside the
/// result: the [`Metrics`] snapshot always, and the recorded
/// [`SpanLog`] when `record_spans` is set.
///
/// # Errors
/// See [`run_msg`].
pub fn run_msg_observed(
    platform: &Platform,
    hosts: &[HostId],
    sources: Vec<Box<dyn OpSource>>,
    cfg: MsgConfig,
    hooks: Box<dyn smpi::ExecHooks>,
    record_spans: bool,
) -> Result<(MsgResult, RunObservation), String> {
    let recorder: Option<Box<dyn Recorder>> =
        record_spans.then(|| Box::new(SpanLog::new(sources.len() as u32)) as Box<dyn Recorder>);
    run_inner(platform, hosts, sources, cfg, hooks, recorder)
}

fn run_inner(
    platform: &Platform,
    hosts: &[HostId],
    sources: Vec<Box<dyn OpSource>>,
    cfg: MsgConfig,
    hooks: Box<dyn smpi::ExecHooks>,
    recorder: Option<Box<dyn Recorder>>,
) -> Result<(MsgResult, RunObservation), String> {
    let mut run = prepare_msg(platform, hosts, sources, cfg, hooks, recorder);
    run.advance(Time::NEVER);
    run.finalize()
}

/// A fully assembled MSG simulation that has not run yet; the msgsim
/// counterpart of [`smpi::runner::SmpiRun`], driven the same way by the
/// windowed parallel replay engine. `prepare` + one
/// `advance(Time::NEVER)` + `finalize` is exactly [`run_msg_observed`].
pub struct MsgRun {
    sim: Sim<MsgWorld>,
    ranks: usize,
    started: bool,
}

/// Assembles an MSG simulation: world, pre-sized kernel, one rank actor
/// per source, and the transport daemon. The optional `recorder`
/// receives observations with *local* rank ids `0..sources.len()`.
pub fn prepare_msg(
    platform: &Platform,
    hosts: &[HostId],
    sources: Vec<Box<dyn OpSource>>,
    cfg: MsgConfig,
    hooks: Box<dyn smpi::ExecHooks>,
    recorder: Option<Box<dyn Recorder>>,
) -> MsgRun {
    let ranks = sources.len();
    assert!(ranks > 0);
    assert_eq!(hosts.len(), ranks);
    let transport = ActorId(ranks as u32);
    let fel = cfg.fel;
    let mut world = MsgWorld::new(platform, hosts, cfg, hooks, transport);
    if let Some(recorder) = recorder {
        world.set_recorder(recorder);
    }
    // Same pre-sizing heuristic as the SMPI runner (see
    // `simkernel::replay_sizing`).
    let (activities, events) = simkernel::replay_sizing(ranks);
    let mut sim = Sim::with_capacity_fel(world, activities, events, fel);
    for (r, source) in sources.into_iter().enumerate() {
        let me = ActorId(r as u32);
        let id = sim.spawn(Box::new(MsgRankActor::new(r as u32, me, source)));
        assert_eq!(id, me);
    }
    let t = sim.spawn_daemon(Box::new(MsgTransportActor));
    assert_eq!(t, transport);
    MsgRun {
        sim,
        ranks,
        started: false,
    }
}

impl MsgRun {
    /// Restricts the run's network to `links` (see
    /// [`netmodel::FlowNet::restrict_links`]).
    pub fn restrict_links(&mut self, links: &[platform::LinkId]) {
        self.sim.world.net.restrict_links(links);
    }

    /// Advances simulated time up to `horizon`; `true` once quiesced
    /// (terminal). The event order is identical for any horizon schedule.
    pub fn advance(&mut self, horizon: Time) -> bool {
        if !self.started {
            self.sim.start();
            self.started = true;
        }
        self.sim.step_until(horizon) == SimStep::Quiesced
    }

    /// Extracts the result and observation after the run has quiesced.
    ///
    /// # Errors
    /// See [`run_msg`].
    pub fn finalize(mut self) -> Result<(MsgResult, RunObservation), String> {
        let ranks = self.ranks;
        let sim = &mut self.sim;
        match sim.outcome() {
            SimOutcome::AllFinished => {}
            SimOutcome::Deadlock(blocked) => {
                return Err(format!(
                    "MSG execution deadlocked; blocked ranks: {:?}",
                    blocked.iter().map(|a| a.0).collect::<Vec<_>>()
                ));
            }
        }
        let rank_times: Vec<f64> = (0..ranks)
            .map(|r| sim.finish_time(ActorId(r as u32)).as_secs())
            .collect();
        let total_time = rank_times.iter().copied().fold(0.0, f64::max);
        let stats = sim.world.stats;
        let mut metrics = Metrics::new("msg", ranks as u32);
        metrics.simulated_time_s = total_time;
        sim.kernel.observe(&mut metrics);
        metrics.messages = stats.messages;
        // The MSG async threshold plays the protocol role the eager
        // threshold plays under SMPI; report it in the same column.
        metrics.eager_messages = stats.async_messages;
        metrics.rendezvous_messages = stats.messages - stats.async_messages;
        metrics.bytes = stats.bytes;
        metrics.collectives = stats.collectives;
        let net = sim.world.net.stats();
        metrics.flows_created = net.flows_opened;
        metrics.flows_resolved = net.flows_closed;
        metrics.sharing_resolves = net.resolves;
        metrics.sharing_rate_updates = net.rate_updates;
        metrics.sharing_flushes = net.flush_batches;
        metrics.live_flow_hwm = net.live_flow_hwm;
        metrics.live_entity_hwm = net.live_entity_hwm;
        metrics.agg_formed = net.agg_formed;
        metrics.agg_members = net.agg_members;
        metrics.agg_splits = net.agg_splits;
        let spans = sim.world.recorder.take().and_then(|r| r.finish());
        metrics.recorder_counts = spans.as_ref().map(|l| l.counts());
        Ok((
            MsgResult {
                total_time,
                rank_times,
                compute_seconds: sim.world.compute_seconds.clone(),
                stats,
                events: sim.kernel.events_processed(),
            },
            RunObservation { metrics, spans },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::topology::{flat_cluster, FlatClusterSpec};
    use smpi::FixedRateHooks;
    use workloads::{ComputeBlock, VecSource};

    fn tiny_platform(nodes: u32) -> Platform {
        flat_cluster(&FlatClusterSpec {
            name: "t".into(),
            nodes,
            host_speed: 1e9,
            cores: 1,
            cache_bytes: 1 << 20,
            link_bandwidth: 1e8,
            link_latency: 10e-6,
            backbone_bandwidth: 1e9,
            backbone_latency: 0.0,
        })
    }

    fn run(nodes: u32, progs: Vec<Vec<MpiOp>>) -> MsgResult {
        let p = tiny_platform(nodes);
        let n = progs.len() as u32;
        let sources: Vec<Box<dyn OpSource>> = progs
            .into_iter()
            .map(|ops| Box::new(VecSource::new(ops)) as Box<dyn OpSource>)
            .collect();
        let hosts: Vec<HostId> = (0..n).map(HostId).collect();
        run_msg(
            &p,
            &hosts,
            sources,
            MsgConfig::legacy(),
            Box::new(FixedRateHooks::uniform(1e9, n)),
        )
        .expect("run failed")
    }

    #[test]
    fn late_receiver_pays_full_transfer_after_matching() {
        // The defining difference from the SMPI runtime: the receiver
        // computes 1s, then matches the deposited task, and the transfer
        // only starts THEN — costing the full latency + size/bw.
        let progs = vec![
            vec![MpiOp::Send {
                dst: 1,
                bytes: 1000,
            }],
            vec![
                MpiOp::Compute(ComputeBlock::plain(1e9)),
                MpiOp::Recv {
                    src: 0,
                    bytes: 1000,
                },
            ],
        ];
        let r = run(2, progs);
        let transfer = 1000.0 / 1e8 + 1.9 * 20e-6;
        assert!(
            (r.rank_times[1] - (1.0 + transfer)).abs() < 1e-9,
            "{} vs {}",
            r.rank_times[1],
            1.0 + transfer
        );
        // The async sender left immediately.
        assert!(r.rank_times[0] < 1e-12);
        assert_eq!(r.stats.async_messages, 1);
    }

    #[test]
    fn early_receiver_starts_transfer_at_deposit() {
        let progs = vec![
            vec![
                MpiOp::Compute(ComputeBlock::plain(5e8)),
                MpiOp::Send {
                    dst: 1,
                    bytes: 1000,
                },
            ],
            vec![MpiOp::Recv {
                src: 0,
                bytes: 1000,
            }],
        ];
        let r = run(2, progs);
        let transfer = 1000.0 / 1e8 + 1.9 * 20e-6;
        assert!((r.rank_times[1] - (0.5 + transfer)).abs() < 1e-9);
    }

    #[test]
    fn large_send_blocks_until_delivery() {
        let bytes = 128 * 1024;
        let progs = vec![
            vec![MpiOp::Send { dst: 1, bytes }],
            vec![
                MpiOp::Compute(ComputeBlock::plain(1e9)),
                MpiOp::Recv { src: 0, bytes },
            ],
        ];
        let r = run(2, progs);
        let transfer = bytes as f64 / 1e8 + 1.9 * 20e-6;
        assert!(
            (r.rank_times[0] - (1.0 + transfer)).abs() < 1e-9,
            "{}",
            r.rank_times[0]
        );
        assert_eq!(r.stats.async_messages, 0);
    }

    #[test]
    fn monolithic_collective_synchronizes_and_charges_formula() {
        let mk = |work: f64| {
            vec![
                MpiOp::Compute(ComputeBlock::plain(work)),
                MpiOp::Allreduce { bytes: 40 },
            ]
        };
        let r = run(4, vec![mk(1e9), mk(2e9), mk(5e8), mk(1e8)]);
        // Release = slowest entry (2s) + allreduce formula.
        let m = crate::CollectiveModel {
            latency: 20e-6,
            bandwidth: 1e8,
        };
        let expect = 2.0 + m.allreduce(4, 40);
        for t in &r.rank_times {
            assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
        }
        assert_eq!(r.stats.collectives, 1);
    }

    #[test]
    fn isend_wait_tracks_delivery() {
        let progs = vec![
            vec![
                MpiOp::Isend {
                    dst: 1,
                    bytes: 1000,
                },
                MpiOp::Wait,
            ],
            vec![
                MpiOp::Compute(ComputeBlock::plain(1e9)),
                MpiOp::Recv {
                    src: 0,
                    bytes: 1000,
                },
            ],
        ];
        let r = run(2, progs);
        // Delivery happens after the receiver matched at t=1.
        assert!(r.rank_times[0] > 1.0);
    }

    #[test]
    fn irecv_first_then_send_overlaps() {
        let progs = vec![
            vec![
                MpiOp::Irecv {
                    src: 1,
                    bytes: 1000,
                },
                MpiOp::Compute(ComputeBlock::plain(1e9)),
                MpiOp::WaitAll,
            ],
            vec![MpiOp::Send {
                dst: 0,
                bytes: 1000,
            }],
        ];
        let r = run(2, progs);
        // Transfer started at deposit (t≈0) because the recv was pending.
        assert!((r.rank_times[0] - 1.0).abs() < 1e-6, "{}", r.rank_times[0]);
    }

    #[test]
    fn lu_small_instance_runs_clean_under_msg() {
        use workloads::lu::{LuClass, LuConfig};
        let cfg = LuConfig::new(LuClass::S, 4).with_steps(3);
        let p = tiny_platform(4);
        let hosts: Vec<HostId> = (0..4).map(HostId).collect();
        let r = run_msg(
            &p,
            &hosts,
            cfg.sources(),
            MsgConfig::legacy(),
            Box::new(FixedRateHooks::uniform(1e9, 4)),
        )
        .expect("LU under MSG failed");
        assert!(r.total_time > 0.0);
        assert!(r.stats.messages > 100);
    }

    #[test]
    fn msg_is_slower_than_smpi_on_pipelined_small_messages() {
        // The headline effect: on a wavefront of small messages the MSG
        // model accumulates per-message latency that the detached eager
        // model does not.
        use workloads::lu::{LuClass, LuConfig};
        let cfg = LuConfig::new(LuClass::S, 8).with_steps(4);
        let p = tiny_platform(8);
        let hosts: Vec<HostId> = (0..8).map(HostId).collect();
        let msg = run_msg(
            &p,
            &hosts,
            cfg.sources(),
            MsgConfig::legacy(),
            Box::new(FixedRateHooks::uniform(1e9, 8)),
        )
        .unwrap();
        let mut smpi_cfg = smpi::SmpiConfig::ground_truth();
        smpi_cfg.factors = netmodel::PiecewiseFactors::raw();
        smpi_cfg.copy = None;
        let sm = smpi::run_smpi(
            &p,
            &hosts,
            cfg.sources(),
            smpi_cfg,
            Box::new(FixedRateHooks::uniform(1e9, 8)),
        )
        .unwrap();
        assert!(
            msg.total_time > sm.total_time,
            "MSG {} should exceed SMPI {}",
            msg.total_time,
            sm.total_time
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use platform::topology::{flat_cluster, FlatClusterSpec};
    use smpi::FixedRateHooks;
    use workloads::{ComputeBlock, VecSource};

    fn tiny(nodes: u32) -> Platform {
        flat_cluster(&FlatClusterSpec {
            name: "t".into(),
            nodes,
            host_speed: 1e9,
            cores: 1,
            cache_bytes: 1 << 20,
            link_bandwidth: 1e8,
            link_latency: 10e-6,
            backbone_bandwidth: 1e9,
            backbone_latency: 0.0,
        })
    }

    fn run(progs: Vec<Vec<MpiOp>>) -> MsgResult {
        let n = progs.len() as u32;
        let p = tiny(n);
        let hosts: Vec<HostId> = (0..n).map(HostId).collect();
        let sources: Vec<Box<dyn OpSource>> = progs
            .into_iter()
            .map(|ops| Box::new(VecSource::new(ops)) as Box<dyn OpSource>)
            .collect();
        run_msg(
            &p,
            &hosts,
            sources,
            MsgConfig::legacy(),
            Box::new(FixedRateHooks::uniform(1e9, n)),
        )
        .expect("run failed")
    }

    #[test]
    fn msg_determinism() {
        let prog = |r: u32| {
            vec![
                MpiOp::Compute(ComputeBlock::plain((r as f64 + 1.0) * 1e7)),
                MpiOp::Allreduce { bytes: 8 },
                MpiOp::Barrier,
            ]
        };
        let a = run((0..6).map(prog).collect());
        let b = run((0..6).map(prog).collect());
        assert_eq!(a.rank_times, b.rank_times);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn every_collective_kind_dispatches() {
        let coll_ops = [
            MpiOp::Barrier,
            MpiOp::Bcast {
                bytes: 100,
                root: 1,
            },
            MpiOp::Reduce {
                bytes: 100,
                root: 0,
            },
            MpiOp::Allreduce { bytes: 100 },
            MpiOp::Alltoall { bytes: 100 },
            MpiOp::Gather {
                bytes: 100,
                root: 2,
            },
            MpiOp::Allgather { bytes: 100 },
        ];
        let prog = |_r: u32| coll_ops.to_vec();
        let r = run((0..4).map(prog).collect());
        assert_eq!(r.stats.collectives, coll_ops.len() as u64);
        assert!(r.total_time > 0.0);
    }

    #[test]
    fn observed_msg_run_mirrors_smpi_observation_shape() {
        use simkernel::obs::SpanKind;
        let p = tiny(2);
        let hosts: Vec<HostId> = (0..2).map(HostId).collect();
        let sources: Vec<Box<dyn OpSource>> = vec![
            Box::new(VecSource::new(vec![
                MpiOp::Compute(ComputeBlock::plain(1e9)),
                MpiOp::Send {
                    dst: 1,
                    bytes: 1000,
                },
            ])),
            Box::new(VecSource::new(vec![MpiOp::Recv {
                src: 0,
                bytes: 1000,
            }])),
        ];
        let (r, obs) = run_msg_observed(
            &p,
            &hosts,
            sources,
            MsgConfig::legacy(),
            Box::new(FixedRateHooks::uniform(1e9, 2)),
            true,
        )
        .unwrap();
        assert_eq!(obs.metrics.engine, "msg");
        assert_eq!(obs.metrics.ranks, 2);
        assert_eq!(
            obs.metrics.simulated_time_s.to_bits(),
            r.total_time.to_bits()
        );
        assert_eq!(obs.metrics.messages, 1);
        assert_eq!(obs.metrics.eager_messages, 1);
        assert_eq!(obs.metrics.flows_created, 1);
        assert_eq!(obs.metrics.flows_resolved, 1);
        let log = obs.spans.expect("spans recorded");
        assert_eq!(log.open_flows(), 0);
        assert_eq!(log.flows().len(), 1);
        assert!(log.total(0, SpanKind::Compute) > 0.99);
        // The MSG receiver waits out the sender's compute AND the
        // transfer (start-at-match semantics).
        assert!(log.total(1, SpanKind::Recv) > 1.0);
    }

    #[test]
    fn traced_msg_run_renders_like_smpi() {
        let p = tiny(2);
        let hosts: Vec<HostId> = (0..2).map(HostId).collect();
        let sources: Vec<Box<dyn OpSource>> = vec![
            Box::new(VecSource::new(vec![
                MpiOp::Compute(ComputeBlock::plain(1e9)),
                MpiOp::Send {
                    dst: 1,
                    bytes: 1000,
                },
            ])),
            Box::new(VecSource::new(vec![MpiOp::Recv {
                src: 0,
                bytes: 1000,
            }])),
        ];
        let (r, timeline) = run_msg_traced(
            &p,
            &hosts,
            sources,
            MsgConfig::legacy(),
            Box::new(FixedRateHooks::uniform(1e9, 2)),
        )
        .unwrap();
        assert!((timeline.total(0, smpi::SegmentKind::Compute) - 1.0).abs() < 1e-9);
        assert!(timeline.total(1, smpi::SegmentKind::Wait) > 0.99);
        let chart = timeline.render(40, r.total_time);
        assert_eq!(chart.lines().count(), 2);
        assert!(chart.contains('#') && chart.contains('.'), "{chart}");
    }

    #[test]
    fn observed_msg_run_without_spans_is_bit_identical() {
        let mk = || -> Vec<Box<dyn OpSource>> {
            vec![
                Box::new(VecSource::new(vec![MpiOp::Send {
                    dst: 1,
                    bytes: 1000,
                }])),
                Box::new(VecSource::new(vec![MpiOp::Recv {
                    src: 0,
                    bytes: 1000,
                }])),
            ]
        };
        let p = tiny(2);
        let hosts: Vec<HostId> = (0..2).map(HostId).collect();
        let plain = run_msg(
            &p,
            &hosts,
            mk(),
            MsgConfig::legacy(),
            Box::new(FixedRateHooks::uniform(1e9, 2)),
        )
        .unwrap();
        let (r, obs) = run_msg_observed(
            &p,
            &hosts,
            mk(),
            MsgConfig::legacy(),
            Box::new(FixedRateHooks::uniform(1e9, 2)),
            false,
        )
        .unwrap();
        assert_eq!(plain.rank_times, r.rank_times);
        assert_eq!(plain.events, r.events);
        assert!(obs.spans.is_none());
        assert!(obs.metrics.recorder_counts.is_none());
    }

    #[test]
    fn msg_deadlock_reported_for_unmatched_recv() {
        let p = tiny(2);
        let hosts: Vec<HostId> = (0..2).map(HostId).collect();
        let progs: Vec<Box<dyn OpSource>> = vec![
            Box::new(VecSource::new(vec![MpiOp::Recv { src: 1, bytes: 8 }])),
            Box::new(VecSource::new(vec![MpiOp::Finalize])),
        ];
        let err = run_msg(
            &p,
            &hosts,
            progs,
            MsgConfig::legacy(),
            Box::new(FixedRateHooks::uniform(1e9, 2)),
        )
        .unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }

    #[test]
    fn latency_multiplier_is_applied() {
        // Same program under multiplier 1.0 vs legacy 1.9: the receive
        // path's latency term scales accordingly.
        let progs = || {
            vec![
                vec![MpiOp::Send { dst: 1, bytes: 100 }],
                vec![MpiOp::Recv { src: 0, bytes: 100 }],
            ]
        };
        let p = tiny(2);
        let hosts: Vec<HostId> = (0..2).map(HostId).collect();
        let run_with = |mult: f64| {
            let sources: Vec<Box<dyn OpSource>> = progs()
                .into_iter()
                .map(|ops| Box::new(VecSource::new(ops)) as Box<dyn OpSource>)
                .collect();
            let cfg = MsgConfig {
                latency_multiplier: mult,
                ..MsgConfig::legacy()
            };
            run_msg(
                &p,
                &hosts,
                sources,
                cfg,
                Box::new(FixedRateHooks::uniform(1e9, 2)),
            )
            .unwrap()
            .rank_times[1]
        };
        let base = run_with(1.0);
        let legacy = run_with(1.9);
        let raw_lat = 20e-6;
        assert!(
            (legacy - base - 0.9 * raw_lat).abs() < 1e-9,
            "base {base}, legacy {legacy}"
        );
    }

    #[test]
    fn loopback_tasks_bypass_network_in_msg_too() {
        let p = tiny(1);
        let sources: Vec<Box<dyn OpSource>> = vec![
            Box::new(VecSource::new(vec![MpiOp::Send { dst: 1, bytes: 500 }])),
            Box::new(VecSource::new(vec![MpiOp::Recv { src: 0, bytes: 500 }])),
        ];
        let r = run_msg(
            &p,
            &[HostId(0), HostId(0)],
            sources,
            MsgConfig::legacy(),
            Box::new(FixedRateHooks::uniform(1e9, 2)),
        )
        .unwrap();
        assert!(r.rank_times[1] < 1e-5, "{}", r.rank_times[1]);
    }
}
