//! The legacy MSG-style replay back-end.
//!
//! This crate reimplements the paper's *first* trace-replay mechanism —
//! the one Section 2.4 diagnoses and Section 3.3 replaces — with its
//! modeling choices intact:
//!
//! * **mailbox semantics**: a send deposits a task into the
//!   `<src>_<dst>` mailbox; "a matching action on the receiver side will
//!   read the contents of the mailbox and execute the task, *which
//!   actually starts the simulated communication*". The transfer
//!   therefore begins at match time and the receiver always pays the full
//!   latency + size/bandwidth on its critical path — even for small
//!   messages that a real MPI runtime would have delivered eagerly long
//!   before the receive was posted;
//! * **asynchronous small sends**: messages under 64 KiB are sent
//!   asynchronously (the old `action_Isend` path), so the *sender* does
//!   not block — but the receiver-side cost above remains;
//! * **raw network model**: nominal link latency and bandwidth, no
//!   piece-wise protocol factors;
//! * **monolithic collectives**: every rank blocks until all have
//!   entered, then all leave after a closed-form duration (log-tree cost
//!   formulas), instead of simulating the constituent point-to-point
//!   messages.
//!
//! Because the per-small-message overestimation accumulates with the
//! message count — which in NPB-LU grows with the process count — this
//! back-end reproduces the linearly growing relative error of the
//! paper's Figure 3.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod runner;
pub mod world;

pub use runner::{prepare_msg, run_msg, run_msg_observed, run_msg_traced, MsgResult, MsgRun};
pub use world::MsgWorld;

use netmodel::{PiecewiseFactors, SharingPolicy};

/// Messages strictly below this size use the asynchronous (non-blocking
/// sender) path, mirroring the old implementation's `if (size<65536)`.
pub const ASYNC_THRESHOLD: u64 = 64 * 1024;

/// Configuration of the MSG back-end.
#[derive(Debug, Clone, PartialEq)]
pub struct MsgConfig {
    /// Async/blocking sender threshold, bytes.
    pub async_threshold: u64,
    /// Network factors — [`PiecewiseFactors::raw`] for the faithful
    /// legacy model.
    pub factors: PiecewiseFactors,
    /// Flat multiplier on route latency. SimGrid's network models of the
    /// era applied a fitted constant latency factor uniformly (CM02/LV08
    /// style) rather than the per-size piece-wise factors SMPI later
    /// introduced; combined with the start-at-match semantics this
    /// over-charges every small message on the receive path.
    pub latency_multiplier: f64,
    /// Intra-host transfer throughput, bytes/s.
    pub loopback_bandwidth: f64,
    /// Intra-host fixed latency, seconds.
    pub loopback_latency: f64,
    /// Bandwidth-sharing policy.
    pub sharing: SharingPolicy,
    /// Future-event-list implementation of the simulation kernel. Does
    /// not affect results (pop order is bit-identical across variants);
    /// exposed so benchmarks and differential tests can pin one.
    pub fel: simkernel::FelImpl,
    /// Flow aggregation: network transfers take the network model's
    /// deferred batch path, so same-instant flow batches (the legacy
    /// model's mailbox-matched bursts) cost O(1) sharing solves and are
    /// accounted as O(1) live entities. Does not affect results (the
    /// batched re-solve is bit-identical to the per-flow sequence;
    /// differential tests gate it); off by default to keep the
    /// constituent path the reference.
    pub collective_agg: bool,
}

impl MsgConfig {
    /// The faithful legacy configuration.
    pub fn legacy() -> MsgConfig {
        MsgConfig {
            async_threshold: ASYNC_THRESHOLD,
            factors: PiecewiseFactors::raw(),
            latency_multiplier: 1.9,
            loopback_bandwidth: 3.0e9,
            loopback_latency: 0.4e-6,
            sharing: SharingPolicy::Bottleneck,
            fel: simkernel::FelImpl::default(),
            collective_agg: false,
        }
    }
}

/// Closed-form durations of the monolithic collective models, as used by
/// the old MSG-based replay: log-tree formulas over a nominal
/// latency/bandwidth pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveModel {
    /// Nominal point-to-point latency, seconds.
    pub latency: f64,
    /// Nominal point-to-point bandwidth, bytes/s.
    pub bandwidth: f64,
}

impl CollectiveModel {
    fn log2_ceil(p: u32) -> f64 {
        if p <= 1 {
            0.0
        } else {
            f64::from(32 - (p - 1).leading_zeros())
        }
    }

    fn hop(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Duration of a barrier over `p` ranks.
    pub fn barrier(&self, p: u32) -> f64 {
        2.0 * Self::log2_ceil(p) * self.latency
    }

    /// Duration of a broadcast of `bytes`.
    pub fn bcast(&self, p: u32, bytes: u64) -> f64 {
        Self::log2_ceil(p) * self.hop(bytes)
    }

    /// Duration of a reduce of `bytes`.
    pub fn reduce(&self, p: u32, bytes: u64) -> f64 {
        Self::log2_ceil(p) * self.hop(bytes)
    }

    /// Duration of an allreduce of `bytes`.
    pub fn allreduce(&self, p: u32, bytes: u64) -> f64 {
        2.0 * Self::log2_ceil(p) * self.hop(bytes)
    }

    /// Duration of an all-to-all of `bytes` per pair.
    pub fn alltoall(&self, p: u32, bytes: u64) -> f64 {
        f64::from(p.saturating_sub(1)) * self.hop(bytes)
    }

    /// Duration of a gather of `bytes` per rank.
    pub fn gather(&self, p: u32, bytes: u64) -> f64 {
        f64::from(p.saturating_sub(1)) * self.hop(bytes)
    }

    /// Duration of an allgather of `bytes` per rank.
    pub fn allgather(&self, p: u32, bytes: u64) -> f64 {
        f64::from(p.saturating_sub(1)) * self.hop(bytes)
    }

    /// Duration of the collective `op` over `p` ranks, or `None` for
    /// non-collective ops.
    pub fn duration(&self, op: &workloads::MpiOp, p: u32) -> Option<f64> {
        use workloads::MpiOp;
        Some(match *op {
            MpiOp::Barrier => self.barrier(p),
            MpiOp::Bcast { bytes, .. } => self.bcast(p, bytes),
            MpiOp::Reduce { bytes, .. } => self.reduce(p, bytes),
            MpiOp::Allreduce { bytes } => self.allreduce(p, bytes),
            MpiOp::Alltoall { bytes } => self.alltoall(p, bytes),
            MpiOp::Gather { bytes, .. } => self.gather(p, bytes),
            MpiOp::Allgather { bytes } => self.allgather(p, bytes),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_formulas() {
        let m = CollectiveModel {
            latency: 1e-5,
            bandwidth: 1e8,
        };
        assert_eq!(m.barrier(1), 0.0);
        assert!((m.barrier(8) - 2.0 * 3.0 * 1e-5).abs() < 1e-15);
        // Non-power-of-two rounds up.
        assert!((m.barrier(5) - 2.0 * 3.0 * 1e-5).abs() < 1e-15);
        let hop = 1e-5 + 100.0 / 1e8;
        assert!((m.bcast(4, 100) - 2.0 * hop).abs() < 1e-15);
        assert!((m.allreduce(4, 100) - 4.0 * hop).abs() < 1e-15);
        assert!((m.alltoall(4, 100) - 3.0 * hop).abs() < 1e-15);
    }

    #[test]
    fn duration_dispatch() {
        let m = CollectiveModel {
            latency: 1e-5,
            bandwidth: 1e8,
        };
        use workloads::MpiOp;
        assert!(m.duration(&MpiOp::Barrier, 4).is_some());
        assert!(m.duration(&MpiOp::Wait, 4).is_none());
        assert_eq!(
            m.duration(&MpiOp::Allreduce { bytes: 100 }, 4),
            Some(m.allreduce(4, 100))
        );
    }

    #[test]
    fn legacy_config_is_raw() {
        let c = MsgConfig::legacy();
        assert_eq!(c.factors, PiecewiseFactors::raw());
        assert_eq!(c.async_threshold, 65536);
    }
}
