//! Mailbox state and transfer handling of the MSG back-end.
//!
//! The decisive difference from the SMPI world: a task deposited in a
//! mailbox carries *no data in flight*. The transfer — full latency plus
//! size over shared bandwidth — starts only when the receiver matches the
//! task, exactly reproducing the old `MSG_task_send` / `MSG_task_receive`
//! behaviour the paper identifies as the source of its communication
//! inaccuracy.

use std::collections::VecDeque;

use netmodel::{FlowId, FlowNet, FLUSH_KEY};
use platform::{HostId, LinkId, Platform};
use simkernel::obs::{Counter, Recorder, SpanKind};
use simkernel::{ActorId, Duration, Kernel, Wake};
use smpi::slab::{ActivityMap, Id, Slab, Waiters};

use crate::{CollectiveModel, MsgConfig};

/// A task in a mailbox or in transfer.
#[derive(Debug)]
pub struct Task {
    src: u32,
    dst: u32,
    bytes: u64,
    done: bool,
    flow: Option<FlowId>,
    /// Request handle of an asynchronous sender (tracked so `wait` can
    /// block on delivery when the trace asks for it).
    sender_req: Option<ReqId>,
    /// Request handle of a non-blocking receiver.
    recv_req: Option<ReqId>,
    /// Pending-recv record to retire at delivery.
    pending_recv: Option<RecvId>,
    waiters: Waiters,
}

/// A receive that arrived before any matching task.
#[derive(Debug)]
pub struct PendingRecv {
    bytes: u64,
    req: Option<ReqId>,
    waiter: Option<ActorId>,
    /// Filled when a task matches this pending receive.
    matched: Option<TaskId>,
}

/// A non-blocking request handle.
#[derive(Debug)]
pub struct Req {
    done: bool,
    waiter: Option<ActorId>,
}

/// Handle to a [`Task`].
pub type TaskId = Id<Task>;
/// Handle to a [`PendingRecv`].
pub type RecvId = Id<PendingRecv>;
/// Handle to a [`Req`].
pub type ReqId = Id<Req>;

/// Synchronisation record of one monolithic collective occurrence.
#[derive(Debug)]
struct CollSync {
    arrived: u32,
    op: workloads::MpiOp,
}

/// Outcome of a send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgSendResult {
    /// Asynchronous deposit; sender continues.
    Deposited,
    /// Blocking send; wait for delivery of this task.
    Wait(TaskId),
}

/// Outcome of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgRecvResult {
    /// Wait for the matched task's transfer.
    WaitTask(TaskId),
    /// No task deposited yet; wait for the pending-recv slot.
    WaitPending(RecvId),
}

/// Counters of one MSG run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsgStats {
    /// Tasks deposited.
    pub messages: u64,
    /// Tasks below the async threshold.
    pub async_messages: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Monolithic collectives executed (occurrences, not participations).
    pub collectives: u64,
}

/// The MSG world.
pub struct MsgWorld {
    /// Network state (raw factors).
    pub net: FlowNet,
    /// Configuration.
    pub cfg: MsgConfig,
    /// Compute-cost hooks (shared abstraction with the SMPI runtime).
    pub hooks: Box<dyn smpi::ExecHooks>,
    /// Run counters.
    pub stats: MsgStats,
    /// Per-rank compute seconds.
    pub compute_seconds: Vec<f64>,
    /// Optional observation sink (off by default; see [`simkernel::obs`]).
    /// When `None`, every recording call site is a branch on this option
    /// and nothing else — the disabled path allocates nothing.
    pub recorder: Option<Box<dyn Recorder>>,
    ranks: u32,
    routes: Vec<Vec<LinkId>>,
    pair_latency: Vec<f64>,
    pair_bandwidth: Vec<f64>,
    tasks: Slab<Task>,
    recvs: Slab<PendingRecv>,
    reqs: Slab<Req>,
    mailbox: Vec<VecDeque<TaskId>>,
    pending: Vec<VecDeque<RecvId>>,
    flow_task: ActivityMap<TaskId>,
    colls: Vec<CollSync>,
    coll_model: CollectiveModel,
    transport: ActorId,
}

impl MsgWorld {
    /// Builds the world; `transport` is the daemon receiving transfer
    /// events.
    pub fn new(
        platform: &Platform,
        hosts: &[HostId],
        cfg: MsgConfig,
        hooks: Box<dyn smpi::ExecHooks>,
        transport: ActorId,
    ) -> MsgWorld {
        let ranks = hosts.len() as u32;
        assert!(ranks > 0);
        let n = ranks as usize;
        let mut routes = Vec::with_capacity(n * n);
        let mut pair_latency = Vec::with_capacity(n * n);
        let mut pair_bandwidth = Vec::with_capacity(n * n);
        let mut scratch = Vec::new();
        for s in 0..n {
            for d in 0..n {
                platform.route(hosts[s], hosts[d], &mut scratch);
                routes.push(scratch.clone());
                pair_latency.push(platform.route_latency(hosts[s], hosts[d]));
                pair_bandwidth.push(platform.route_bandwidth(hosts[s], hosts[d]));
            }
        }
        // Nominal collective-model parameters: the worst pair latency and
        // the tightest pair bandwidth (what the old implementation read
        // off the platform file).
        let coll_model = CollectiveModel {
            latency: pair_latency.iter().copied().fold(0.0, f64::max),
            bandwidth: pair_bandwidth
                .iter()
                .copied()
                .filter(|b| b.is_finite())
                .fold(f64::INFINITY, f64::min)
                .min(1e12),
        };
        let mut net = FlowNet::new(platform, cfg.sharing);
        if cfg.collective_agg {
            net.set_flush_actor(transport);
        }
        MsgWorld {
            net,
            cfg,
            hooks,
            stats: MsgStats::default(),
            compute_seconds: vec![0.0; n],
            recorder: None,
            ranks,
            routes,
            pair_latency,
            pair_bandwidth,
            // Pre-sized like the SMPI world: the per-rank in-flight bound
            // the runners give the kernel also bounds live protocol
            // records, so the steady state never regrows these.
            tasks: Slab::with_capacity(n * simkernel::IN_FLIGHT_PER_RANK),
            recvs: Slab::with_capacity(n * simkernel::IN_FLIGHT_PER_RANK),
            reqs: Slab::with_capacity(n * simkernel::IN_FLIGHT_PER_RANK),
            mailbox: (0..n * n).map(|_| VecDeque::with_capacity(4)).collect(),
            pending: (0..n * n).map(|_| VecDeque::with_capacity(4)).collect(),
            flow_task: ActivityMap::with_capacity(simkernel::replay_sizing(n).0),
            colls: Vec::new(),
            coll_model,
            transport,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Installs an observation sink for this run.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// `true` when an observation sink is installed.
    pub fn recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Records one simulated-time span, if a sink is installed.
    pub fn record_span(
        &mut self,
        rank: u32,
        start: f64,
        end: f64,
        kind: SpanKind,
        peer: Option<u32>,
    ) {
        if let Some(r) = self.recorder.as_mut() {
            r.span(rank, start, end, kind, peer);
        }
    }

    /// The monolithic collective cost model in effect.
    pub fn collective_model(&self) -> CollectiveModel {
        self.coll_model
    }

    fn mbox(&self, src: u32, dst: u32) -> usize {
        (dst * self.ranks + src) as usize
    }

    fn pair(&self, src: u32, dst: u32) -> usize {
        (src * self.ranks + dst) as usize
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Deposits a task. `blocking` requests the old large-message
    /// behaviour (`MSG_task_send`): the sender waits for delivery.
    /// `track` creates a sender-side request handle (trace `isend`);
    /// untracked asynchronous sends are fire-and-forget, as in the old
    /// small-message path.
    #[allow(clippy::too_many_arguments)] // a protocol call carries its full envelope
    pub fn send(
        &mut self,
        kernel: &mut Kernel,
        src: u32,
        dst: u32,
        bytes: u64,
        blocking: bool,
        track: bool,
        actor: ActorId,
    ) -> (MsgSendResult, Option<ReqId>) {
        assert!(dst < self.ranks && src != dst);
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        if bytes < self.cfg.async_threshold {
            self.stats.async_messages += 1;
        }
        let task_id = self.tasks.insert(Task {
            src,
            dst,
            bytes,
            done: false,
            flow: None,
            sender_req: None,
            recv_req: None,
            pending_recv: None,
            waiters: Waiters::new(),
        });
        // A pending receive starts the transfer immediately.
        let slot = self.mbox(src, dst);
        if let Some(recv_id) = self.pending[slot].pop_front() {
            let pr = self.recvs.expect_mut(recv_id);
            assert_eq!(pr.bytes, bytes, "task size mismatch {src}->{dst}");
            pr.matched = Some(task_id);
            let (req, waiter) = (pr.req, pr.waiter);
            let t = self.tasks.expect_mut(task_id);
            t.recv_req = req;
            t.pending_recv = Some(recv_id);
            if let Some(w) = waiter {
                t.waiters.push(w);
            }
            self.start_transfer(kernel, task_id);
        } else {
            self.mailbox[slot].push_back(task_id);
            if let Some(r) = self.recorder.as_mut() {
                r.count(Counter::MailboxEnqueued, 1);
            }
        }
        if blocking {
            self.tasks.expect_mut(task_id).waiters.push(actor);
            (MsgSendResult::Wait(task_id), None)
        } else if track {
            let req = self.reqs.insert(Req {
                done: false,
                waiter: None,
            });
            self.tasks.expect_mut(task_id).sender_req = Some(req);
            (MsgSendResult::Deposited, Some(req))
        } else {
            (MsgSendResult::Deposited, None)
        }
    }

    /// Reads a mailbox; matching a deposited task *starts* the transfer
    /// (the MSG semantics).
    pub fn recv(
        &mut self,
        kernel: &mut Kernel,
        dst: u32,
        src: u32,
        bytes: u64,
        blocking: bool,
        actor: ActorId,
    ) -> (MsgRecvResult, Option<ReqId>) {
        assert!(src < self.ranks);
        let slot = self.mbox(src, dst);
        if let Some(task_id) = self.mailbox[slot].pop_front() {
            let t = self.tasks.expect_mut(task_id);
            assert_eq!(t.bytes, bytes, "task size mismatch {src}->{dst}");
            let req = if blocking {
                t.waiters.push(actor);
                None
            } else {
                let req = self.reqs.insert(Req {
                    done: false,
                    waiter: None,
                });
                self.tasks.expect_mut(task_id).recv_req = Some(req);
                Some(req)
            };
            self.start_transfer(kernel, task_id);
            (MsgRecvResult::WaitTask(task_id), req)
        } else {
            let recv_id = self.recvs.insert(PendingRecv {
                bytes,
                req: None,
                waiter: blocking.then_some(actor),
                matched: None,
            });
            self.pending[slot].push_back(recv_id);
            if let Some(r) = self.recorder.as_mut() {
                r.count(Counter::PendingEnqueued, 1);
            }
            let req = if blocking {
                None
            } else {
                let req = self.reqs.insert(Req {
                    done: false,
                    waiter: None,
                });
                self.recvs.expect_mut(recv_id).req = Some(req);
                Some(req)
            };
            (MsgRecvResult::WaitPending(recv_id), req)
        }
    }

    // ------------------------------------------------------------------
    // Monolithic collectives
    // ------------------------------------------------------------------

    /// Registers `rank`'s arrival at its `index`-th collective. When the
    /// last rank arrives, every participant is released after the
    /// closed-form duration. Returns `true` if the caller must block.
    pub fn enter_collective(
        &mut self,
        kernel: &mut Kernel,
        index: usize,
        op: &workloads::MpiOp,
    ) -> bool {
        if self.ranks == 1 {
            return false;
        }
        if index == self.colls.len() {
            self.colls.push(CollSync {
                arrived: 0,
                op: *op,
            });
        }
        let sync = &mut self.colls[index];
        assert_eq!(&sync.op, op, "ranks disagree on collective {index}");
        sync.arrived += 1;
        if sync.arrived == self.ranks {
            self.stats.collectives += 1;
            let duration = self
                .coll_model
                .duration(op, self.ranks)
                .expect("non-collective entered collective sync");
            for r in 0..self.ranks {
                kernel.set_timer(ActorId(r), Duration::from_secs(duration), COLL_RELEASE_KEY);
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Queries (stale == complete)
    // ------------------------------------------------------------------

    /// Has this task been delivered?
    pub fn task_done(&self, id: TaskId) -> bool {
        self.tasks.get(id).is_none_or(|t| t.done)
    }

    /// Has this pending receive completed?
    pub fn pending_recv_done(&self, id: RecvId) -> bool {
        match self.recvs.get(id) {
            None => true,
            Some(pr) => pr.matched.is_some_and(|t| self.task_done(t)),
        }
    }

    /// Consumes a completed request, or registers `waiter` and returns
    /// `false`.
    pub fn take_req(&mut self, id: ReqId, waiter: ActorId) -> bool {
        match self.reqs.get_mut(id) {
            None => true,
            Some(r) if r.done => {
                self.reqs.remove(id);
                true
            }
            Some(r) => {
                r.waiter = Some(waiter);
                false
            }
        }
    }

    /// Records compute time.
    pub fn account_compute(&mut self, rank: u32, seconds: f64) {
        self.compute_seconds[rank as usize] += seconds;
    }

    // ------------------------------------------------------------------
    // Transport
    // ------------------------------------------------------------------

    /// Handles a transport wake (flow completion or latency expiry).
    pub fn on_transport_wake(&mut self, kernel: &mut Kernel, wake: Wake) {
        match wake {
            Wake::Activity(act) => {
                let Some(task_id) = self.flow_task.remove(act) else {
                    return;
                };
                let t = self.tasks.expect_mut(task_id);
                let flow = t.flow.take().expect("flow completion without flow");
                let (src, dst, bytes) = (t.src, t.dst, t.bytes);
                if self.cfg.collective_agg {
                    self.net.close_deferred(kernel, flow);
                } else {
                    self.net.close(kernel, flow);
                }
                if let Some(r) = self.recorder.as_mut() {
                    r.flow_close(task_id.pack(), kernel.now().as_secs());
                }
                let pair = self.pair(src, dst);
                let lat = self.cfg.latency_multiplier
                    * self
                        .cfg
                        .factors
                        .effective_latency(bytes, self.pair_latency[pair]);
                kernel.set_timer(self.transport, Duration::from_secs(lat), task_id.pack());
            }
            Wake::Timer(FLUSH_KEY) => self.net.flush(kernel),
            Wake::Timer(key) => self.complete_delivery(kernel, Id::unpack(key)),
            Wake::Start | Wake::Signal(_) => {}
        }
    }

    fn start_transfer(&mut self, kernel: &mut Kernel, task_id: TaskId) {
        let t = self.tasks.expect(task_id);
        let (src, dst, bytes) = (t.src, t.dst, t.bytes);
        let pair = self.pair(src, dst);
        if self.routes[pair].is_empty() {
            let d = self.cfg.loopback_latency + bytes as f64 / self.cfg.loopback_bandwidth;
            kernel.set_timer(self.transport, Duration::from_secs(d), task_id.pack());
            if let Some(r) = self.recorder.as_mut() {
                r.count(Counter::LoopbackTransfers, 1);
            }
        } else {
            let cap = self
                .cfg
                .factors
                .effective_bandwidth(bytes, self.pair_bandwidth[pair]);
            let route = std::mem::take(&mut self.routes[pair]);
            let flow = if self.cfg.collective_agg {
                self.net.open_deferred(kernel, &route, bytes as f64, cap)
            } else {
                self.net.open(kernel, &route, bytes as f64, cap)
            };
            self.routes[pair] = route;
            let act = self.net.activity(flow);
            kernel.subscribe(act, self.transport);
            self.flow_task.insert(act, task_id);
            self.tasks.expect_mut(task_id).flow = Some(flow);
            if let Some(r) = self.recorder.as_mut() {
                r.flow_open(task_id.pack(), src, dst, bytes, kernel.now().as_secs());
            }
        }
    }

    fn complete_delivery(&mut self, kernel: &mut Kernel, task_id: TaskId) {
        let t = self.tasks.expect_mut(task_id);
        t.done = true;
        let waiters = std::mem::take(&mut t.waiters);
        let sender_req = t.sender_req.take();
        let recv_req = t.recv_req.take();
        let pending_recv = t.pending_recv.take();
        // Inline waiter list: taking and draining it allocates nothing.
        waiters.for_each(|w| kernel.wake(w, Wake::Signal(task_id.pack())));
        for req in [sender_req, recv_req].into_iter().flatten() {
            if let Some(r) = self.reqs.get_mut(req) {
                r.done = true;
                if let Some(w) = r.waiter.take() {
                    kernel.wake(w, Wake::Signal(req.pack()));
                }
            }
        }
        if let Some(pr) = pending_recv {
            self.recvs.remove(pr);
        }
        self.tasks.remove(task_id);
    }

    /// Live record counts (diagnostics).
    pub fn live_records(&self) -> (usize, usize, usize) {
        (self.tasks.len(), self.recvs.len(), self.reqs.len())
    }
}

/// Timer key signalling a collective release to a rank actor.
pub const COLL_RELEASE_KEY: u64 = u64::MAX - 1;
