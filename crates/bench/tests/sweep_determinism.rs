//! Parallel experiment sweeps must be an implementation detail: the
//! records a driver returns (and the order it returns them in) are
//! identical whether cells run on one worker or many.
//!
//! Both drivers run in a single test function because the worker count
//! is controlled through the `TITR_SWEEP_THREADS` environment variable,
//! which is process-global.

use bench::{accuracy_figure, overhead_table, Options};
use tit_replay::emulator::Testbed;
use tit_replay::prelude::*;

#[test]
fn drivers_are_worker_count_invariant() {
    let opts = Options {
        steps: 2,
        json: false,
        seed: 42,
    };
    let testbed = Testbed::bordereau();
    let grid = vec![(LuClass::B, 8), (LuClass::B, 16), (LuClass::C, 8)];

    std::env::set_var("TITR_SWEEP_THREADS", "1");
    let overhead_seq = overhead_table("t", &testbed, &grid, &opts);
    let accuracy_seq = accuracy_figure("f", &testbed, &grid, Pipeline::legacy(), &opts);

    std::env::set_var("TITR_SWEEP_THREADS", "4");
    let overhead_par = overhead_table("t", &testbed, &grid, &opts);
    let accuracy_par = accuracy_figure("f", &testbed, &grid, Pipeline::legacy(), &opts);
    std::env::remove_var("TITR_SWEEP_THREADS");

    assert_eq!(overhead_seq, overhead_par);
    assert_eq!(accuracy_seq, accuracy_par);
}
