//! Micro-benchmarks of the flow-level network model: flow churn under
//! the fast bottleneck policy vs the exact max-min policies, and the
//! payoff of incremental sharing recomputation when the platform
//! decomposes into many small sharing components.

use bench::perfwork;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tit_replay::netmodel::{FlowNet, SharingPolicy};
use tit_replay::platform::topology::{flat_cluster, FlatClusterSpec};
use tit_replay::platform::HostId;
use tit_replay::simkernel::Kernel;

fn flow_churn(c: &mut Criterion) {
    let platform = flat_cluster(&FlatClusterSpec {
        name: "bench".into(),
        nodes: 64,
        host_speed: 1e9,
        cores: 1,
        cache_bytes: 1 << 20,
        link_bandwidth: 1.25e8,
        link_latency: 1e-5,
        backbone_bandwidth: 1.25e9,
        backbone_latency: 1e-6,
    });
    let mut g = c.benchmark_group("flow_churn");
    let n = 2_000u64;
    g.throughput(Throughput::Elements(n));
    for policy in [
        SharingPolicy::Bottleneck,
        SharingPolicy::MaxMin,
        SharingPolicy::MaxMinFull,
    ] {
        g.bench_function(format!("{policy:?}_open_close_2k"), |b| {
            b.iter_batched(
                || (Kernel::new(), FlowNet::new(&platform, policy)),
                |(mut k, mut net)| {
                    let mut route = Vec::new();
                    let mut open = Vec::new();
                    for i in 0..n {
                        let s = (i % 64) as u32;
                        let d = ((i * 31 + 7) % 64) as u32;
                        if s != d {
                            platform.route(HostId(s), HostId(d), &mut route);
                            open.push(net.open(&mut k, &route, 1e6, 1e9));
                        }
                        if open.len() > 32 {
                            let f = open.swap_remove((i % 32) as usize);
                            net.close(&mut k, f);
                        }
                    }
                    for f in open {
                        net.close(&mut k, f);
                    }
                    (k, net)
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

/// Incremental vs full max-min recomputation where it matters: a
/// hierarchical cluster whose intra-cabinet routes never touch the
/// backbone, so the live flows split into one sharing component per
/// cabinet. Incremental recomputation re-solves only the component the
/// churned flow belongs to; the reference re-solves all of them.
fn component_churn(c: &mut Criterion) {
    const CABINETS: u32 = perfwork::CABINETS;
    const PER_CAB: u32 = perfwork::PER_CAB;
    let platform = perfwork::showcase_platform();
    let mut g = c.benchmark_group("component_churn");
    let churn = 2_000u64;
    g.throughput(Throughput::Elements(churn));
    // Live-flow counts: one disjoint pair per cabinet up to several
    // concurrent flows per cabinet. The gap between MaxMin and
    // MaxMinFull widens with the live count — the acceptance target
    // (>= 2x) is judged at the largest.
    for live in [16u64, 64, 128] {
        for policy in [SharingPolicy::MaxMin, SharingPolicy::MaxMinFull] {
            g.bench_function(format!("{policy:?}_live{live}"), |b| {
                b.iter_batched(
                    || (Kernel::new(), FlowNet::new(&platform, policy)),
                    |(mut k, mut net)| {
                        let mut route = Vec::new();
                        let mut open = Vec::new();
                        for i in 0..churn {
                            // Pick src/dst inside the same cabinet so the
                            // route is up -> down with no shared backbone.
                            let cab = (i % u64::from(CABINETS)) as u32;
                            let s = cab * PER_CAB + (i % u64::from(PER_CAB)) as u32;
                            let d = cab * PER_CAB + ((i * 3 + 1) % u64::from(PER_CAB)) as u32;
                            if s != d {
                                platform.route(HostId(s), HostId(d), &mut route);
                                open.push(net.open(&mut k, &route, 1e6, 1e9));
                            }
                            if open.len() as u64 > live {
                                let f = open.swap_remove((i % live) as usize);
                                net.close(&mut k, f);
                            }
                        }
                        for f in open {
                            net.close(&mut k, f);
                        }
                        (k, net)
                    },
                    BatchSize::SmallInput,
                );
            });
        }
    }
    g.finish();
}

criterion_group!(benches, flow_churn, component_churn);
criterion_main!(benches);
