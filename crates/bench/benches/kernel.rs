//! Micro-benchmarks of the discrete-event kernel: event-queue throughput
//! and activity scheduling churn (the simulator's innermost loops), each
//! measured under both future-event-list implementations so the
//! ladder-vs-heap trade-off stays visible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tit_replay::simkernel::queue::{EventKind, EventQueue};
use tit_replay::simkernel::{ActorId, FelImpl, Kernel, Time};

const FELS: [(FelImpl, &str); 2] = [(FelImpl::Heap, "heap"), (FelImpl::Ladder, "ladder")];

fn event_queue_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        for (fel, name) in FELS {
            g.bench_function(format!("push_pop_{n}_{name}"), |b| {
                b.iter_batched(
                    || EventQueue::with_fel(fel),
                    |mut q| {
                        for i in 0..n {
                            // Pseudo-random interleaved timestamps.
                            let t = ((i.wrapping_mul(2654435761)) % 1_000_000) as f64 * 1e-6;
                            q.push(Time::from_secs(t), EventKind::Timer { actor: 0, key: i });
                        }
                        while q.pop().is_some() {}
                        q
                    },
                    BatchSize::SmallInput,
                );
            });
        }
    }
    g.finish();
}

fn activity_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_activities");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    for (fel, name) in FELS {
        g.bench_function(format!("start_complete_10k_{name}"), |b| {
            b.iter_batched(
                || Kernel::with_capacity_fel(0, 0, fel),
                |mut k| {
                    for i in 0..n {
                        let a = k.start_activity(1.0 + (i % 7) as f64, 1.0);
                        k.subscribe(a, ActorId(0));
                    }
                    while k.next_wake().is_some() {}
                    k
                },
                BatchSize::SmallInput,
            );
        });
        g.bench_function(format!("rate_changes_10k_{name}"), |b| {
            b.iter_batched(
                || {
                    let mut k = Kernel::with_capacity_fel(0, 0, fel);
                    let acts: Vec<_> = (0..64).map(|_| k.start_activity(1e9, 1.0)).collect();
                    (k, acts)
                },
                |(mut k, acts)| {
                    for i in 0..n {
                        let a = acts[(i % 64) as usize];
                        k.set_rate(a, 1.0 + (i % 13) as f64);
                    }
                    (k, acts)
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, event_queue_throughput, activity_churn);
criterion_main!(benches);
