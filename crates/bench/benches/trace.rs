//! Trace format throughput: emit and parse rates on a realistic LU trace.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tit_replay::acquisition::{acquire, CompilerOpt, Instrumentation};
use tit_replay::prelude::*;
use tit_replay::titrace::{parse, write};

fn trace_io(c: &mut Criterion) {
    let lu = LuConfig::new(LuClass::S, 8).with_steps(10);
    let trace = acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace;
    let actions = trace.len() as u64;
    let text = write::to_string(&trace);

    let mut g = c.benchmark_group("trace_io");
    g.throughput(Throughput::Elements(actions));
    g.bench_function("emit", |b| b.iter(|| write::to_string(&trace)));
    g.bench_function("parse", |b| {
        b.iter(|| parse::parse_merged(&text, 8).expect("parse"))
    });
    g.bench_function("validate", |b| {
        b.iter(|| tit_replay::titrace::validate::validate(&trace))
    });
    g.finish();
}

criterion_group!(benches, trace_io);
criterion_main!(benches);
