//! Trace format throughput: emit, parse, pack, and unpack rates on a
//! realistic LU trace, across the text and binary ingestion paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tit_replay::acquisition::{acquire, CompilerOpt, Instrumentation};
use tit_replay::prelude::*;
use tit_replay::titrace::{binfmt, parse, stream, write};

fn trace_io(c: &mut Criterion) {
    let lu = LuConfig::new(LuClass::S, 8).with_steps(10);
    let trace = acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace;
    let actions = trace.len() as u64;
    let text = write::to_string(&trace);

    let mut g = c.benchmark_group("trace_io");
    g.throughput(Throughput::Elements(actions));
    g.bench_function("emit", |b| b.iter(|| write::to_string(&trace)));
    g.bench_function("parse", |b| {
        b.iter(|| parse::parse_merged(&text, 8).expect("parse"))
    });
    g.bench_function("validate", |b| {
        b.iter(|| tit_replay::titrace::validate::validate(&trace))
    });
    g.finish();
}

fn trace_ingest(c: &mut Criterion) {
    let lu = LuConfig::new(LuClass::S, 16).with_steps(25);
    let trace = acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace;
    let actions = trace.len() as u64;
    let text = write::to_string(&trace);
    let packed = binfmt::encode(&trace);

    let mut g = c.benchmark_group("trace_ingest");
    g.throughput(Throughput::Elements(actions));
    g.bench_function("text_sequential", |b| {
        b.iter(|| stream::parse_merged_bytes(text.as_bytes(), 16).expect("parse"))
    });
    for workers in [2usize, 4] {
        g.bench_function(format!("text_parallel_{workers}"), |b| {
            b.iter(|| stream::parse_merged_parallel(text.as_bytes(), 16, workers).expect("parse"))
        });
    }
    g.bench_function("pack", |b| b.iter(|| binfmt::encode(&trace)));
    g.bench_function("unpack", |b| {
        b.iter(|| binfmt::decode(&packed).expect("decode"))
    });
    g.finish();
}

criterion_group!(benches, trace_io, trace_ingest);
criterion_main!(benches);
