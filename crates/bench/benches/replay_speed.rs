//! End-to-end simulator performance: simulated events per second for
//! both replay back-ends and the emulated testbed (the paper's
//! "efficiency" axis as it applies to this implementation).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tit_replay::acquisition::{acquire, CompilerOpt, Instrumentation};
use tit_replay::emulator::Testbed;
use tit_replay::prelude::*;

fn replay_speed(c: &mut Criterion) {
    let lu = LuConfig::new(LuClass::S, 16).with_steps(10);
    let trace = Arc::new(
        acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace,
    );
    let platform = tit_replay::platform::clusters::bordereau();
    // Measure the event count once per engine for throughput reporting.
    let events = |engine| {
        replay(
            &platform,
            &trace,
            &ReplayConfig {
                engine,
                rate: 2e9,
                placement: Placement::OnePerNode,
                copy_model: None,
            },
        )
        .unwrap()
        .events
    };
    let mut g = c.benchmark_group("replay_speed");
    g.sample_size(20);
    for engine in [ReplayEngine::Smpi, ReplayEngine::Msg] {
        g.throughput(Throughput::Elements(events(engine)));
        g.bench_with_input(
            BenchmarkId::new("engine", format!("{engine:?}")),
            &engine,
            |b, engine| {
                b.iter(|| {
                    replay(
                        &platform,
                        &trace,
                        &ReplayConfig {
                            engine: *engine,
                            rate: 2e9,
                            placement: Placement::OnePerNode,
                            copy_model: None,
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("emulation_speed");
    g.sample_size(10);
    let tb = Testbed::bordereau();
    let ev = tb
        .run_lu(&lu, Instrumentation::None, CompilerOpt::O3)
        .unwrap()
        .events;
    g.throughput(Throughput::Elements(ev));
    g.bench_function("testbed_lu_s16", |b| {
        b.iter(|| tb.run_lu(&lu, Instrumentation::None, CompilerOpt::O3).unwrap())
    });
    g.finish();
}

criterion_group!(benches, replay_speed);
criterion_main!(benches);
