//! End-to-end simulator performance: simulated events per second for
//! both replay back-ends and the emulated testbed (the paper's
//! "efficiency" axis as it applies to this implementation), plus the
//! cost of the exact max-min sharing policies at the largest configured
//! process count — incremental recomputation vs full recomputation.

use std::sync::Arc;

use bench::perfwork;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tit_replay::acquisition::{acquire, CompilerOpt, Instrumentation};
use tit_replay::emulator::Testbed;
use tit_replay::netmodel::SharingPolicy;
use tit_replay::prelude::*;
use tit_replay::simkernel::FelImpl;

fn config(engine: ReplayEngine, sharing: SharingPolicy) -> ReplayConfig {
    ReplayConfig {
        engine,
        rate: 2e9,
        placement: Placement::OnePerNode,
        copy_model: None,
        sharing,
        fel: FelImpl::default(),
        // Pinned sequential: these benches measure the single-thread
        // hot path regardless of the environment.
        threads: 1,
        window_s: None,
        collective_agg: false,
    }
}

fn replay_speed(c: &mut Criterion) {
    let lu = LuConfig::new(LuClass::S, 16).with_steps(10);
    let trace = Arc::new(acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace);
    let platform = tit_replay::platform::clusters::bordereau();
    // Measure the event count once per engine for throughput reporting.
    let events = |engine| {
        replay(
            &platform,
            &trace,
            &config(engine, SharingPolicy::Bottleneck),
        )
        .unwrap()
        .events
    };
    let mut g = c.benchmark_group("replay_speed");
    g.sample_size(20);
    for engine in [ReplayEngine::Smpi, ReplayEngine::Msg] {
        g.throughput(Throughput::Elements(events(engine)));
        g.bench_with_input(
            BenchmarkId::new("engine", format!("{engine:?}")),
            &engine,
            |b, engine| {
                b.iter(|| {
                    replay(
                        &platform,
                        &trace,
                        &config(*engine, SharingPolicy::Bottleneck),
                    )
                    .unwrap()
                })
            },
        );
    }
    g.finish();

    // Exact max-min sharing at the largest configured process count
    // (P=128), on the showcase cabinet platform whose intra-cabinet
    // halo-exchange traffic splits into one sharing component per
    // cabinet: incremental recomputation only re-solves the component a
    // flow touches, the full-recompute reference re-solves every live
    // flow on every churn event. Same simulated times, bit for bit —
    // only the wall clock differs.
    let showcase = perfwork::showcase_platform();
    let halo = Arc::new(perfwork::halo_exchange_trace(128, 50, 1 << 20));
    let halo_events = replay(
        &showcase,
        &halo,
        &config(ReplayEngine::Smpi, SharingPolicy::MaxMin),
    )
    .unwrap()
    .events;
    let mut g = c.benchmark_group("replay_sharing");
    g.sample_size(10);
    g.throughput(Throughput::Elements(halo_events));
    for sharing in [SharingPolicy::MaxMinFull, SharingPolicy::MaxMin] {
        g.bench_with_input(
            BenchmarkId::new("halo_p128", format!("{sharing:?}")),
            &sharing,
            |b, sharing| {
                b.iter(|| replay(&showcase, &halo, &config(ReplayEngine::Smpi, *sharing)).unwrap())
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("emulation_speed");
    g.sample_size(10);
    let tb = Testbed::bordereau();
    let ev = tb
        .run_lu(&lu, Instrumentation::None, CompilerOpt::O3)
        .unwrap()
        .events;
    g.throughput(Throughput::Elements(ev));
    g.bench_function("testbed_lu_s16", |b| {
        b.iter(|| {
            tb.run_lu(&lu, Instrumentation::None, CompilerOpt::O3)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, replay_speed);
criterion_main!(benches);
