//! Figure 7: the Figure 6 accuracy study on the *graphene* cluster. The
//! paper observes a consistent slight underestimation (the unmodeled
//! eager memory-copy time) within a narrow band.

use bench::{accuracy_figure, emit, graphene_grid, Options};
use tit_replay::emulator::Testbed;
use tit_replay::prelude::*;

fn main() {
    let opts = Options::from_args();
    let records = accuracy_figure(
        "fig7",
        &Testbed::graphene(),
        &graphene_grid(),
        Pipeline::improved(),
        &opts,
    );
    emit(
        &records,
        &["real_s", "simulated_s", "rel_err_pct", "rate_ips"],
        &opts,
    );
}
