//! Figure 2: the Figure 1 instruction-count discrepancy study on the
//! *graphene* cluster, with instances up to 128 processes.

use bench::{counter_discrepancy_figure, emit, graphene_grid, Options};
use tit_replay::acquisition::{CompilerOpt, Instrumentation};

fn main() {
    let opts = Options::from_args();
    let records = counter_discrepancy_figure(
        "fig2",
        "graphene",
        &graphene_grid(),
        Instrumentation::legacy_default(),
        CompilerOpt::O0,
        &opts,
    );
    emit(
        &records,
        &[
            "min_pct",
            "q1_pct",
            "median_pct",
            "q3_pct",
            "max_pct",
            "mean_pct",
        ],
        &opts,
    );
}
