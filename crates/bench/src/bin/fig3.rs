//! Figure 3: evolution with the number of processes of the relative
//! error between execution and simulated times for LU under the *first*
//! implementation (fine-grain -O0 traces, A-4 calibration, MSG replay)
//! on *bordereau*. The paper's diagnosis: the error grows roughly
//! linearly with the process count.

use bench::{accuracy_figure, bordereau_grid, emit, Options};
use tit_replay::emulator::Testbed;
use tit_replay::prelude::*;

fn main() {
    let opts = Options::from_args();
    let records = accuracy_figure(
        "fig3",
        &Testbed::bordereau(),
        &bordereau_grid(),
        Pipeline::legacy(),
        &opts,
    );
    emit(
        &records,
        &["real_s", "simulated_s", "rel_err_pct", "rate_ips"],
        &opts,
    );
}
