//! Quick tuning probe: prints the key quantities of every experiment at
//! reduced scale, for model-parameter fitting against the paper.

use bench::{accuracy_figure, bordereau_grid, counter_discrepancy_figure, overhead_table, Options};
use tit_replay::acquisition::{CompilerOpt, Instrumentation};
use tit_replay::emulator::Testbed;
use tit_replay::prelude::*;

fn main() {
    let opts = Options::from_args();
    let tb = Testbed::bordereau();
    eprintln!(
        "== B-8 absolute anchor (x{} of official steps) ==",
        opts.steps
    );
    let b8 = opts.instance(LuClass::B, 8);
    let orig = tb
        .run_lu(&b8, Instrumentation::None, CompilerOpt::O0)
        .unwrap();
    let scale = 250.0 / opts.steps as f64;
    eprintln!(
        "B-8 original (O0): {:.2}s scaled->{:.1}s (paper 93.05s); events {}",
        orig.time,
        orig.time * scale,
        orig.events
    );
    eprintln!("== Table 1 (bordereau overheads) ==");
    overhead_table("t1", &tb, &bordereau_grid(), &opts);
    eprintln!("== Fig 1 (fine vs coarse counters, O0) ==");
    counter_discrepancy_figure(
        "fig1",
        "bordereau",
        &bordereau_grid(),
        Instrumentation::legacy_default(),
        CompilerOpt::O0,
        &opts,
    );
    eprintln!("== Fig 4 (minimal vs coarse counters, O3) ==");
    counter_discrepancy_figure(
        "fig4",
        "bordereau",
        &bordereau_grid(),
        Instrumentation::Minimal,
        CompilerOpt::O3,
        &opts,
    );
    eprintln!("== Fig 3 (legacy accuracy) ==");
    accuracy_figure("fig3", &tb, &bordereau_grid(), Pipeline::legacy(), &opts);
    eprintln!("== Fig 6 (improved accuracy) ==");
    accuracy_figure("fig6", &tb, &bordereau_grid(), Pipeline::improved(), &opts);
}
