//! The paper's future work, implemented and evaluated (beyond the
//! paper): the improved pipeline versus the future-work pipeline that
//! adds (a) the eager memory-copy model in the replay engine and (b) the
//! automatic cache-aware calibration. Expectation: the Figures 6-7
//! residual error collapses further.

use bench::{accuracy_figure, bordereau_grid, emit, graphene_grid, Options};
use tit_replay::emulator::Testbed;
use tit_replay::metrics::ErrorBand;
use tit_replay::prelude::*;

fn main() {
    let opts = Options::from_args();
    let mut all = Vec::new();
    let mut bands = Vec::new();
    for (testbed, grid) in [
        (Testbed::bordereau(), bordereau_grid()),
        (Testbed::graphene(), graphene_grid()),
    ] {
        for pipeline in [Pipeline::improved(), Pipeline::future_work()] {
            let name = format!("{}:{}", testbed.platform.name, pipeline.name);
            eprintln!("== {name} ==");
            let records = accuracy_figure(
                &format!("futurework:{name}"),
                &testbed,
                &grid,
                pipeline,
                &opts,
            );
            let mut band = ErrorBand::new();
            for r in &records {
                band.add(r.value("rel_err_pct").expect("recorded"));
            }
            bands.push((name, band));
            all.extend(records);
        }
    }
    emit(&all, &["real_s", "simulated_s", "rel_err_pct"], &opts);
    println!();
    println!(
        "{:<34}{:>12}{:>12}{:>10}",
        "configuration", "min_err%", "max_err%", "width"
    );
    for (name, band) in bands {
        println!(
            "{:<34}{:>12.1}{:>12.1}{:>10.1}",
            name,
            band.min,
            band.max,
            band.width()
        );
    }
}
