//! Figure 4: distribution across processes of the relative difference of
//! measured instruction counts between *minimal* and coarse
//! instrumentation of optimized (-O3) LU instances on *bordereau*.

use bench::{bordereau_grid, counter_discrepancy_figure, emit, Options};
use tit_replay::acquisition::{CompilerOpt, Instrumentation};

fn main() {
    let opts = Options::from_args();
    let records = counter_discrepancy_figure(
        "fig4",
        "bordereau",
        &bordereau_grid(),
        Instrumentation::Minimal,
        CompilerOpt::O3,
        &opts,
    );
    emit(
        &records,
        &[
            "min_pct",
            "q1_pct",
            "median_pct",
            "q3_pct",
            "max_pct",
            "mean_pct",
        ],
        &opts,
    );
}
