//! Figure 1: distribution across processes of the relative difference
//! (in %) of measured instruction counts between fine- and coarse-grain
//! instrumented LU instances on *bordereau* (unoptimized build).

use bench::{bordereau_grid, counter_discrepancy_figure, emit, Options};
use tit_replay::acquisition::{CompilerOpt, Instrumentation};

fn main() {
    let opts = Options::from_args();
    let records = counter_discrepancy_figure(
        "fig1",
        "bordereau",
        &bordereau_grid(),
        Instrumentation::legacy_default(),
        CompilerOpt::O0,
        &opts,
    );
    emit(
        &records,
        &[
            "min_pct",
            "q1_pct",
            "median_pct",
            "q3_pct",
            "max_pct",
            "mean_pct",
        ],
        &opts,
    );
}
