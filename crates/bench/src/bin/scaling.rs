//! Scaling study (beyond the paper): the framework's raison d'être —
//! predicting instances *larger than any the trace donor cluster can
//! run*. LU class C traces are acquired once per process count and
//! replayed on a hypothetical 512-node cluster, producing the strong-
//! scaling curve a procurement study would look at, including the point
//! where communication kills the speedup.

use std::sync::Arc;

use bench::Options;
use tit_replay::platform::spec::{PlatformSpec, SpecKind};
use tit_replay::prelude::*;

fn main() {
    let opts = Options::from_args();
    // A hypothetical future cluster: 512 nodes, faster cores, GigE-class
    // interconnect (the bottleneck this study exposes).
    let spec = PlatformSpec {
        name: "hypothetical-512".into(),
        kind: SpecKind::Cabinets {
            cabinets: 8,
            nodes_per_cabinet: 64,
            host_speed: 5.0e9,
            cores: 8,
            cache_bytes: 8 << 20,
            link_bandwidth: 1.21e8,
            link_latency: 12e-6,
            cabinet_bandwidth: 1.2e9,
            cabinet_latency: 2e-6,
            backbone_bandwidth: 4.8e9,
            backbone_latency: 2e-6,
        },
    };
    let platform = spec.build();
    println!(
        "strong scaling of LU class C on `{}` ({} steps per instance)\n",
        platform.name, opts.steps
    );
    println!(
        "{:<10}{:>14}{:>12}{:>12}{:>14}",
        "procs", "predicted(s)", "speedup", "efficiency", "messages"
    );
    let mut base: Option<f64> = None;
    for procs in [8u32, 16, 32, 64, 128, 256, 512] {
        let lu = LuConfig::new(LuClass::C, procs).with_steps(opts.steps);
        let trace = Arc::new(
            acquire(
                lu.sources(),
                Instrumentation::Minimal,
                CompilerOpt::O3,
                opts.seed,
            )
            .trace,
        );
        let sim = replay(&platform, &trace, &ReplayConfig::improved(5.0e9))
            .unwrap_or_else(|e| panic!("C-{procs}: {e}"));
        let b = *base.get_or_insert(sim.time * 8.0); // normalize to 1 proc
        let speedup = b / sim.time;
        println!(
            "{:<10}{:>14.3}{:>12.1}{:>11.0}%{:>14}",
            procs,
            sim.time,
            speedup,
            speedup / f64::from(procs) * 100.0,
            sim.messages
        );
    }
    println!("\nEfficiency collapse marks where the wavefront's small-message");
    println!("latency dominates the shrinking per-rank compute — the regime the");
    println!("paper's improved back-end was built to predict correctly.");
}
