//! Table 2: the same overhead study as Table 1 on the *graphene*
//! cluster, with instances up to 128 processes.

use bench::{emit, graphene_grid, overhead_table, Options};
use tit_replay::emulator::Testbed;

fn main() {
    let opts = Options::from_args();
    let records = overhead_table("table2", &Testbed::graphene(), &graphene_grid(), &opts);
    emit(
        &records,
        &[
            "old_orig_s",
            "old_instr_s",
            "old_overhead_pct",
            "new_orig_s",
            "new_instr_s",
            "new_overhead_pct",
        ],
        &opts,
    );
}
