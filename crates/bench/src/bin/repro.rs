//! `repro` — runs the complete paper reproduction in one shot and emits a
//! combined markdown report: Tables 1-2, Figures 1-7, the ablation, and
//! the future-work comparison.
//!
//! `cargo run --release -p bench --bin repro -- [--steps N | --full]`

use bench::{
    accuracy_figure, bordereau_grid, counter_discrepancy_figure, graphene_grid, overhead_table,
    Options,
};
use tit_replay::acquisition::{CompilerOpt, Instrumentation};
use tit_replay::emulator::Testbed;
use tit_replay::metrics::{ErrorBand, ExperimentRecord};
use tit_replay::pipeline::AblationKnob;
use tit_replay::prelude::*;

fn md_table(records: &[ExperimentRecord], columns: &[(&str, &str)]) {
    print!("| instance |");
    for (_, label) in columns {
        print!(" {label} |");
    }
    println!();
    print!("|---|");
    for _ in columns {
        print!("---|");
    }
    println!();
    for r in records {
        print!("| {} |", r.instance);
        for (key, _) in columns {
            match r.value(key) {
                Some(v) => print!(" {v:.2} |"),
                None => print!(" - |"),
            }
        }
        println!();
    }
    println!();
}

fn band(records: &[ExperimentRecord], key: &str) -> ErrorBand {
    let mut b = ErrorBand::new();
    for r in records {
        b.add(r.value(key).expect("value recorded"));
    }
    b
}

fn main() {
    let opts = Options::from_args();
    let bordereau = Testbed::bordereau();
    let graphene = Testbed::graphene();
    println!(
        "# Paper reproduction report ({} LU time steps; official count 250)\n",
        opts.steps
    );

    let overhead_cols: [(&str, &str); 6] = [
        ("old_orig_s", "orig (old) s"),
        ("old_instr_s", "instr (old) s"),
        ("old_overhead_pct", "overhead (old) %"),
        ("new_orig_s", "orig (new) s"),
        ("new_instr_s", "instr (new) s"),
        ("new_overhead_pct", "overhead (new) %"),
    ];
    eprintln!("== Table 1 ==");
    println!("## Table 1 — instrumentation overhead, bordereau\n");
    md_table(
        &overhead_table("table1", &bordereau, &bordereau_grid(), &opts),
        &overhead_cols,
    );
    eprintln!("== Table 2 ==");
    println!("## Table 2 — instrumentation overhead, graphene\n");
    md_table(
        &overhead_table("table2", &graphene, &graphene_grid(), &opts),
        &overhead_cols,
    );

    let counter_cols: [(&str, &str); 3] = [
        ("min_pct", "min %"),
        ("median_pct", "median %"),
        ("max_pct", "max %"),
    ];
    for (fig, cluster, grid, mode, opt) in [
        (
            "Figure 1",
            "bordereau",
            bordereau_grid(),
            Instrumentation::legacy_default(),
            CompilerOpt::O0,
        ),
        (
            "Figure 2",
            "graphene",
            graphene_grid(),
            Instrumentation::legacy_default(),
            CompilerOpt::O0,
        ),
        (
            "Figure 4",
            "bordereau",
            bordereau_grid(),
            Instrumentation::Minimal,
            CompilerOpt::O3,
        ),
        (
            "Figure 5",
            "graphene",
            graphene_grid(),
            Instrumentation::Minimal,
            CompilerOpt::O3,
        ),
    ] {
        eprintln!("== {fig} ==");
        println!(
            "## {fig} — counter discrepancy, {} ({})\n",
            cluster,
            mode.label()
        );
        md_table(
            &counter_discrepancy_figure(fig, cluster, &grid, mode, opt, &opts),
            &counter_cols,
        );
    }

    let acc_cols: [(&str, &str); 3] = [
        ("real_s", "real s"),
        ("simulated_s", "simulated s"),
        ("rel_err_pct", "relative error %"),
    ];
    let mut bands: Vec<(String, ErrorBand)> = Vec::new();
    for (fig, testbed, grid, pipeline) in [
        (
            "Figure 3 — legacy accuracy, bordereau",
            &bordereau,
            bordereau_grid(),
            Pipeline::legacy(),
        ),
        (
            "Figure 6 — improved accuracy, bordereau",
            &bordereau,
            bordereau_grid(),
            Pipeline::improved(),
        ),
        (
            "Figure 7 — improved accuracy, graphene",
            &graphene,
            graphene_grid(),
            Pipeline::improved(),
        ),
    ] {
        eprintln!("== {fig} ==");
        println!("## {fig}\n");
        let records = accuracy_figure(fig, testbed, &grid, pipeline, &opts);
        md_table(&records, &acc_cols);
        bands.push((fig.to_string(), band(&records, "rel_err_pct")));
    }

    eprintln!("== ablation ==");
    println!("## Ablation — error bands over the bordereau grid\n");
    println!("| configuration | min % | max % | width |");
    println!("|---|---|---|---|");
    let mut ablation_pipelines = vec![Pipeline::improved(), Pipeline::legacy()];
    for knob in AblationKnob::all() {
        ablation_pipelines.push(Pipeline::improved_without(knob));
    }
    ablation_pipelines.push(Pipeline::future_work());
    for pipeline in ablation_pipelines {
        let name = pipeline.name.clone();
        eprintln!("  -- {name}");
        let records = accuracy_figure(&name, &bordereau, &bordereau_grid(), pipeline, &opts);
        let b = band(&records, "rel_err_pct");
        println!(
            "| {name} | {:.1} | {:.1} | {:.1} |",
            b.min,
            b.max,
            b.width()
        );
    }
    println!();
    println!("## Accuracy bands\n");
    println!("| experiment | band |");
    println!("|---|---|");
    for (name, b) in bands {
        println!("| {name} | {b} |");
    }
}
