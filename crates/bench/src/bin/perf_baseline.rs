//! Machine-readable performance baseline: times the replay back-ends,
//! the incremental-vs-full max-min sharing recomputation, and a small
//! experiment sweep, then writes `BENCH_replay.json` for CI and the
//! README's performance table.
//!
//! The "before" column is the full-recompute reference policy
//! ([`SharingPolicy::MaxMinFull`]) — the exact same solver invoked from
//! scratch on every flow open/close — so the speedup isolates the
//! incremental recomputation, not a model change: both columns produce
//! bit-identical simulated times.
//!
//! ```text
//! cargo run --release -p bench --bin perf_baseline -- [--out BENCH_replay.json]
//! ```

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use bench::{accuracy_figure, perfwork, sweep, Options};
use tit_replay::acquisition::{acquire, CompilerOpt, Instrumentation};
use tit_replay::emulator::Testbed;
use tit_replay::netmodel::{FlowNet, SharingPolicy};
use tit_replay::platform::{HostId, Platform};
use tit_replay::prelude::*;
use tit_replay::simkernel::Kernel;

/// Top-level document written to `BENCH_replay.json`.
#[derive(Debug, Serialize)]
struct Baseline {
    /// Tool that produced the file.
    generated_by: String,
    /// Worker threads available to the sweep layer on the measuring host.
    host_parallelism: f64,
    /// Simulated events per second, per replay back-end.
    backends: Vec<BackendSpeed>,
    /// Incremental vs full-recompute max-min sharing, end to end.
    sharing: Vec<SharingSpeedup>,
    /// Netmodel-level churn with per-cabinet sharing components.
    component_churn: Vec<ChurnSpeedup>,
    /// Trace ingestion throughput per path (text cold, text parallel,
    /// `.titb` binary) on a P=64 LU trace.
    ingest: Vec<IngestSpeed>,
    /// Wall time per experiment cell of a small accuracy sweep.
    sweep_cells: Vec<SweepCell>,
}

/// Events-per-second measurement of one back-end.
#[derive(Debug, Serialize)]
struct BackendSpeed {
    /// "Smpi" or "Msg".
    backend: String,
    /// Workload label.
    workload: String,
    /// Kernel events simulated per replay.
    events: f64,
    /// Best-of-N wall time for one replay, seconds.
    wall_s: f64,
    /// `events / wall_s`.
    events_per_s: f64,
}

/// End-to-end replay under the two exact-sharing policies.
#[derive(Debug, Serialize)]
struct SharingSpeedup {
    /// Workload label.
    workload: String,
    /// Full-recompute reference, seconds (the "before").
    before_full_s: f64,
    /// Incremental recomputation, seconds (the "after").
    after_incremental_s: f64,
    /// `before / after`.
    speedup: f64,
    /// Simulated makespan — identical under both policies by design.
    simulated_s: f64,
}

/// Netmodel flow churn at a given live-flow count.
#[derive(Debug, Serialize)]
struct ChurnSpeedup {
    /// Live flows held open while churning.
    live_flows: f64,
    /// Open/close operations performed.
    operations: f64,
    /// Full-recompute wall time, seconds.
    before_full_s: f64,
    /// Incremental wall time, seconds.
    after_incremental_s: f64,
    /// `before / after`.
    speedup: f64,
}

/// Throughput of one ingestion path over the same trace.
#[derive(Debug, Serialize)]
struct IngestSpeed {
    /// Ingestion path: "text-cold", "text-parallel-N", or "titb".
    path: String,
    /// Workload label.
    workload: String,
    /// On-disk bytes read by this path.
    bytes: f64,
    /// Actions decoded (identical across paths).
    actions: f64,
    /// Best-of-N wall time for one full load, seconds.
    wall_s: f64,
    /// `bytes / wall_s / 1e6`.
    mb_per_s: f64,
    /// `actions / wall_s` — the cross-format comparable rate.
    actions_per_s: f64,
    /// Process peak RSS (VmHWM) when this row was measured, MiB.
    /// Monotone over the process lifetime; 0 outside Linux.
    peak_rss_mb: f64,
}

/// One cell of the experiment sweep.
#[derive(Debug, Serialize)]
struct SweepCell {
    /// Instance label ("B-8").
    instance: String,
    /// Wall time to predict this cell, seconds.
    wall_s: f64,
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn replay_cfg(engine: ReplayEngine, sharing: SharingPolicy) -> ReplayConfig {
    ReplayConfig {
        engine,
        rate: 2e9,
        placement: Placement::OnePerNode,
        copy_model: None,
        sharing,
    }
}

fn backend_speeds(platform: &Platform, trace: &Arc<Trace>, workload: &str) -> Vec<BackendSpeed> {
    [ReplayEngine::Smpi, ReplayEngine::Msg]
        .into_iter()
        .map(|engine| {
            let cfg = replay_cfg(engine, SharingPolicy::Bottleneck);
            let events = replay(platform, trace, &cfg).unwrap().events as f64;
            let wall_s = time_best(5, || replay(platform, trace, &cfg).unwrap());
            BackendSpeed {
                backend: format!("{engine:?}"),
                workload: workload.into(),
                events,
                wall_s,
                events_per_s: events / wall_s,
            }
        })
        .collect()
}

fn sharing_speedup(platform: &Platform, trace: &Arc<Trace>, workload: &str) -> SharingSpeedup {
    let run = |sharing| {
        let cfg = replay_cfg(ReplayEngine::Smpi, sharing);
        let sim = replay(platform, trace, &cfg).unwrap().time;
        (time_best(3, || replay(platform, trace, &cfg).unwrap()), sim)
    };
    let (before_full_s, sim_full) = run(SharingPolicy::MaxMinFull);
    let (after_incremental_s, sim_inc) = run(SharingPolicy::MaxMin);
    assert_eq!(
        sim_full.to_bits(),
        sim_inc.to_bits(),
        "incremental sharing changed the simulated time"
    );
    SharingSpeedup {
        workload: workload.into(),
        before_full_s,
        after_incremental_s,
        speedup: before_full_s / after_incremental_s,
        simulated_s: sim_inc,
    }
}

/// Intra-cabinet flow churn on a 16-cabinet cluster: every route is
/// `up -> down` with no backbone, so live flows form one sharing
/// component per cabinet and incremental recomputation touches 1/16th
/// of what the full reference re-solves.
fn component_churn() -> Vec<ChurnSpeedup> {
    const CABINETS: u32 = perfwork::CABINETS;
    const PER_CAB: u32 = perfwork::PER_CAB;
    let platform = perfwork::showcase_platform();
    let churn = 2_000u64;
    let run = |policy, live: u64| {
        let mut k = Kernel::new();
        let mut net = FlowNet::new(&platform, policy);
        let mut route = Vec::new();
        let mut open = Vec::new();
        for i in 0..churn {
            let cab = (i % u64::from(CABINETS)) as u32;
            let s = cab * PER_CAB + (i % u64::from(PER_CAB)) as u32;
            let d = cab * PER_CAB + ((i * 3 + 1) % u64::from(PER_CAB)) as u32;
            if s != d {
                platform.route(HostId(s), HostId(d), &mut route);
                open.push(net.open(&mut k, &route, 1e6, 1e9));
            }
            if open.len() as u64 > live {
                let f = open.swap_remove((i % live) as usize);
                net.close(&mut k, f);
            }
        }
        for f in open {
            net.close(&mut k, f);
        }
    };
    [16u64, 64, 128]
        .into_iter()
        .map(|live| {
            let before_full_s = time_best(3, || run(SharingPolicy::MaxMinFull, live));
            let after_incremental_s = time_best(3, || run(SharingPolicy::MaxMin, live));
            ChurnSpeedup {
                live_flows: live as f64,
                operations: churn as f64,
                before_full_s,
                after_incremental_s,
                speedup: before_full_s / after_incremental_s,
            }
        })
        .collect()
}

/// The process's peak resident set (VmHWM) in MiB, 0 where
/// `/proc/self/status` is unavailable.
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            let line = s.lines().find(|l| l.starts_with("VmHWM:"))?;
            line.split_whitespace().nth(1)?.parse::<f64>().ok()
        })
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Times the three ingestion paths over one P=64 LU trace and asserts
/// that all of them replay to the same simulated time, bit for bit.
fn ingest_speeds() -> Vec<IngestSpeed> {
    use tit_replay::titrace::{binfmt, files, stream};

    let lu = LuConfig::new(LuClass::B, 64).with_steps(10);
    let workload = format!("lu-{}-steps10", lu.label().to_lowercase());
    let trace = acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace;
    let ranks = trace.ranks();
    let dir = std::env::temp_dir().join(format!("titr-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("ingest temp dir");
    let text_path = dir.join("lu.trace");
    files::write_merged(&trace, &text_path).expect("write text trace");
    let bin_path = dir.join("lu.titb");
    binfmt::write_file(&trace, &bin_path, None).expect("write binary trace");
    let text_bytes = std::fs::metadata(&text_path).map_or(0, |m| m.len()) as f64;
    let bin_bytes = std::fs::metadata(&bin_path).map_or(0, |m| m.len()) as f64;
    let actions = trace.len() as f64;

    let row = |path: String, bytes: f64, wall_s: f64| IngestSpeed {
        path,
        workload: workload.clone(),
        bytes,
        actions,
        wall_s,
        mb_per_s: bytes / wall_s / 1e6,
        actions_per_s: actions / wall_s,
        peak_rss_mb: peak_rss_mb(),
    };

    let mut rows = Vec::new();
    let cold = time_best(3, || {
        let bytes = std::fs::read(&text_path).unwrap();
        stream::parse_merged_bytes(&bytes, ranks).unwrap()
    });
    rows.push(row("text-cold".into(), text_bytes, cold));
    for workers in [2usize, 4, 8] {
        let wall = time_best(3, || {
            let bytes = std::fs::read(&text_path).unwrap();
            stream::parse_merged_parallel(&bytes, ranks, workers).unwrap()
        });
        rows.push(row(format!("text-parallel-{workers}"), text_bytes, wall));
    }
    let titb = time_best(3, || {
        let bytes = std::fs::read(&bin_path).unwrap();
        binfmt::decode(&bytes).unwrap()
    });
    rows.push(row("titb".into(), bin_bytes, titb));

    // The paths must be interchangeable: same trace, same replay, same
    // bits. (Determinism across worker counts is covered by titrace's
    // own tests.)
    let from_bin = binfmt::read_file(&bin_path).expect("read binary trace");
    assert_eq!(from_bin, trace, "binary round-trip changed the trace");
    let cfg = replay_cfg(ReplayEngine::Smpi, SharingPolicy::Bottleneck);
    let bordereau = tit_replay::platform::clusters::bordereau();
    let inputs = [
        tit_replay::titrace::TraceInput::Memory(Arc::new(trace)),
        tit_replay::titrace::TraceInput::MergedText(text_path),
        tit_replay::titrace::TraceInput::Binary(bin_path),
    ];
    let times: Vec<u64> = inputs
        .iter()
        .map(|input| {
            tit_replay::replay::replay_input(&bordereau, input, ranks, &cfg)
                .expect("ingest replay failed")
                .time
                .to_bits()
        })
        .collect();
    assert!(
        times.windows(2).all(|w| w[0] == w[1]),
        "ingestion paths disagree on the simulated time"
    );
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

fn sweep_cells() -> Vec<SweepCell> {
    let opts = Options {
        steps: 5,
        json: false,
        seed: 42,
    };
    let testbed = Testbed::bordereau();
    let grid = [(LuClass::B, 8), (LuClass::B, 16), (LuClass::B, 32)];
    // Time each cell individually (workers may overlap them; the wall
    // time per cell is still what a scheduler needs for load balance).
    let timed = sweep::run(&grid, |_, &(class, procs)| {
        let t = Instant::now();
        let recs = accuracy_figure(
            "perf",
            &testbed,
            &[(class, procs)],
            Pipeline::improved(),
            &opts,
        );
        (recs[0].instance.clone(), t.elapsed().as_secs_f64())
    });
    timed
        .into_iter()
        .map(|(instance, wall_s)| SweepCell { instance, wall_s })
        .collect()
}

fn usage() -> ! {
    eprintln!("usage: perf_baseline [--out <BENCH_replay.json>]");
    std::process::exit(2);
}

fn main() {
    let mut out_path = String::from("BENCH_replay.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => usage(),
            },
            _ => usage(),
        }
    }

    eprintln!("timing replay back-ends (LU S-16, bordereau)...");
    let lu = LuConfig::new(LuClass::S, 16).with_steps(10);
    let trace = Arc::new(
        acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace,
    );
    let bordereau = tit_replay::platform::clusters::bordereau();
    let backends = backend_speeds(&bordereau, &trace, "lu-s16-steps10");

    eprintln!("timing sharing policies (halo exchange P=128; LU S-64, graphene)...");
    let showcase = perfwork::showcase_platform();
    let halo = Arc::new(perfwork::halo_exchange_trace(128, 200, 1 << 20));
    let big = LuConfig::new(LuClass::S, 64).with_steps(10);
    let big_trace = Arc::new(
        acquire(big.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace,
    );
    let graphene = tit_replay::platform::clusters::graphene();
    let sharing = vec![
        sharing_speedup(&showcase, &halo, "halo-exchange-p128-iters200"),
        sharing_speedup(&graphene, &big_trace, "lu-s64-steps10-smpi"),
    ];

    eprintln!("timing component churn (16-cabinet cluster)...");
    let churn = component_churn();

    eprintln!("timing trace ingestion paths (LU B-64)...");
    let ingest = ingest_speeds();

    eprintln!("timing sweep cells (accuracy figure, bordereau)...");
    let cells = sweep_cells();

    let doc = Baseline {
        generated_by: "bench/perf_baseline".into(),
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()) as f64,
        backends,
        sharing,
        component_churn: churn,
        ingest,
        sweep_cells: cells,
    };
    let json = serde_json::to_string_pretty(&doc).expect("baseline always serializes");
    std::fs::write(&out_path, json + "\n").expect("write baseline");
    eprintln!("wrote {out_path}");
}
