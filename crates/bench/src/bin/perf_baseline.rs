//! Machine-readable performance baseline: times the replay back-ends,
//! the incremental-vs-full max-min sharing recomputation, and a small
//! experiment sweep, then writes `BENCH_replay.json` for CI and the
//! README's performance table.
//!
//! The "before" column is the full-recompute reference policy
//! ([`SharingPolicy::MaxMinFull`]) — the exact same solver invoked from
//! scratch on every flow open/close — so the speedup isolates the
//! incremental recomputation, not a model change: both columns produce
//! bit-identical simulated times.
//!
//! ```text
//! cargo run --release -p bench --bin perf_baseline -- [--out BENCH_replay.json]
//! ```

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use bench::{accuracy_figure, perfwork, sweep, Options};
use tit_replay::acquisition::{acquire, CompilerOpt, Instrumentation};
use tit_replay::emulator::Testbed;
use tit_replay::netmodel::{FlowNet, SharingPolicy};
use tit_replay::platform::{HostId, Platform};
use tit_replay::prelude::*;
use tit_replay::simkernel::queue::{EventKind, EventQueue};
use tit_replay::simkernel::{FelImpl, FelProfile, Kernel, Time};

/// Counting wrapper around the system allocator. The steady-state rows
/// of the `fel` section report the number of heap allocations observed
/// across the second half of the churn workload — the zero-allocation
/// claim of the event core, measured rather than asserted.
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    // SAFETY: pure delegation to `System`, plus a relaxed counter bump.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Heap allocations observed so far (monotone, process-wide).
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

/// Top-level document written to `BENCH_replay.json`.
#[derive(Debug, Serialize)]
struct Baseline {
    /// Tool that produced the file.
    generated_by: String,
    /// Worker threads available to the sweep layer on the measuring host.
    host_parallelism: f64,
    /// Simulated events per second, per replay back-end.
    backends: Vec<BackendSpeed>,
    /// Incremental vs full-recompute max-min sharing, end to end.
    sharing: Vec<SharingSpeedup>,
    /// Conservative parallel replay: wall-clock speedup over thread
    /// counts, with bit-identical results asserted at every count.
    parallel: Vec<ParallelSpeedup>,
    /// Windowed PDES inside one coupled component: sub-shard counts,
    /// window-barrier rounds, mailbox traffic, and wall time per thread
    /// count, with bit-identical results asserted at every count.
    pdes: Vec<PdesRow>,
    /// Collective flow aggregation on vs off, with bit-identical
    /// simulated results asserted per row; the sharing-churn and
    /// live-entity reductions are the measured win.
    agg: Vec<AggSpeedup>,
    /// Netmodel-level churn with per-cabinet sharing components.
    component_churn: Vec<ChurnSpeedup>,
    /// Trace ingestion throughput per path (text cold, text parallel,
    /// `.titb` binary) on a P=64 LU trace.
    ingest: Vec<IngestSpeed>,
    /// Wall time per experiment cell of a small accuracy sweep.
    sweep_cells: Vec<SweepCell>,
    /// Heap-vs-ladder future event list: churn microbenchmark with
    /// hot-path counters plus end-to-end replay wall times.
    fel: FelSection,
    /// Recorder overhead: replay with the span recorder disabled vs
    /// enabled (the disabled column is the plain entry point).
    obs: Vec<ObsOverhead>,
    /// Wall-clock profiling overhead: the profiled entry point with
    /// profiling off vs on (the off column is the production path),
    /// with bit-identical results asserted per row.
    telemetry: Vec<TelemetryOverhead>,
    /// Replay-as-a-service throughput: an embedded `titserved` on
    /// loopback answering what-if queries cold, memoized, and under a
    /// concurrent identical burst (deduplicated to one execution).
    serve: ServeSection,
}

/// Events-per-second measurement of one back-end.
#[derive(Debug, Serialize)]
struct BackendSpeed {
    /// "Smpi" or "Msg".
    backend: String,
    /// Workload label.
    workload: String,
    /// Future-event-list implementation ("Heap" = before, "Ladder" =
    /// after; results are bit-identical, only wall time differs).
    fel: String,
    /// Kernel events simulated per replay.
    events: f64,
    /// Best-of-N wall time for one replay, seconds.
    wall_s: f64,
    /// `events / wall_s`.
    events_per_s: f64,
}

/// The heap-vs-ladder comparison rows.
#[derive(Debug, Serialize)]
struct FelSection {
    /// High-churn FEL microbenchmark (hold model plus supersede churn),
    /// one row per implementation.
    churn: Vec<FelChurn>,
    /// `heap ops/s` over `ladder ops/s` on the churn workload.
    churn_speedup: f64,
    /// End-to-end replay wall time per implementation on the
    /// halo-exchange churn workload.
    replay: Vec<FelReplay>,
}

/// One FEL implementation under the churn microbenchmark.
#[derive(Debug, Serialize)]
struct FelChurn {
    /// "Heap" or "Ladder".
    fel: String,
    /// Live events held in the queue throughout.
    live_events: f64,
    /// Hold operations performed (pop + re-push).
    hold_ops: f64,
    /// Best-of-N wall time, seconds.
    wall_s: f64,
    /// Queue operations (events scheduled + popped).
    fel_ops: f64,
    /// `fel_ops / wall_s`.
    fel_ops_per_s: f64,
    /// Hot-path counters (requires the `profile` feature, which this
    /// binary builds with).
    scheduled: f64,
    superseded: f64,
    fired: f64,
    stale_popped: f64,
    spills: f64,
    bucket_sorts: f64,
    reseeds: f64,
    compactions: f64,
    /// Heap allocations observed during the second half of the workload
    /// (the steady state) via the counting allocator. 0 = the hot path
    /// is allocation-free.
    steady_allocs: f64,
}

/// End-to-end replay wall time under one FEL implementation.
#[derive(Debug, Serialize)]
struct FelReplay {
    /// Workload label.
    workload: String,
    /// "Heap" or "Ladder".
    fel: String,
    /// Kernel events simulated.
    events: f64,
    /// Best-of-N wall time, seconds.
    wall_s: f64,
    /// `events / wall_s`.
    events_per_s: f64,
}

/// Replay wall time with the span recorder off vs on. The disabled
/// column *is* the plain replay path (every public entry point wraps
/// the observed runner with recording off), so the delta is the full
/// cost of structured tracing.
#[derive(Debug, Serialize)]
struct ObsOverhead {
    /// Workload label.
    workload: String,
    /// Best-of-N wall time with no recorder installed, seconds.
    disabled_wall_s: f64,
    /// Best-of-N wall time with the span recorder installed, seconds.
    enabled_wall_s: f64,
    /// `(enabled - disabled) / disabled * 100`.
    overhead_percent: f64,
    /// Spans recorded by the enabled run.
    spans: f64,
    /// Network flows recorded by the enabled run.
    flows: f64,
    /// Simulated makespan — bit-identical with and without the
    /// recorder, asserted when this row is measured.
    simulated_s: f64,
}

/// Replay wall time with per-worker wall-clock profiling off vs on,
/// through the same entry point (`replay_input_profiled`; the off
/// column *is* the production path — `replay_input_observed` forwards
/// here with profiling off), so the delta is the full cost of the
/// worker stopwatches.
#[derive(Debug, Serialize)]
struct TelemetryOverhead {
    /// Workload label.
    workload: String,
    /// Worker threads configured.
    threads: f64,
    /// Best-of-N wall time with profiling off, seconds.
    off_wall_s: f64,
    /// Best-of-N wall time with profiling on, seconds.
    on_wall_s: f64,
    /// `(on - off) / off * 100`.
    overhead_percent: f64,
    /// Worker rows in the profile of the enabled run.
    workers: f64,
    /// Max/mean work-time ratio across those workers.
    imbalance: f64,
    /// Simulated makespan — bit-identical with profiling on or off,
    /// asserted when this row is measured.
    simulated_s: f64,
}

/// End-to-end replay under the two exact-sharing policies.
#[derive(Debug, Serialize)]
struct SharingSpeedup {
    /// Workload label.
    workload: String,
    /// Full-recompute reference, seconds (the "before").
    before_full_s: f64,
    /// Incremental recomputation, seconds (the "after").
    after_incremental_s: f64,
    /// `before / after`.
    speedup: f64,
    /// Simulated makespan — identical under both policies by design.
    simulated_s: f64,
}

/// Parallel replay at one thread count.
#[derive(Debug, Serialize)]
struct ParallelSpeedup {
    /// Workload label.
    workload: String,
    /// Worker threads configured.
    threads: f64,
    /// Worker threads the engine actually ran: `min(threads, islands)`,
    /// degenerating to 1 (the sequential path) when either is 1. The
    /// speedup column should be judged against this, not `threads`.
    effective_threads: f64,
    /// Coupling islands the trace decomposes into (1 = the parallel
    /// path degenerates to the sequential replay).
    islands: f64,
    /// Best-of-N wall time, seconds.
    wall_s: f64,
    /// Wall time at threads=1 over this row's wall time.
    speedup: f64,
    /// Simulated makespan — bit-identical across thread counts by
    /// construction (asserted before the row is emitted).
    simulated_s: f64,
}

/// Windowed-PDES replay of one workload at one thread count. When the
/// sub-shard certificate holds (single coupled component, eager-only
/// cross traffic, exclusive link ownership) the engine shards the
/// component and the mailbox columns are live; when it does not (LU's
/// collectives, the allreduce backbone) the engine falls back and the
/// row records `shards: 1` with zero windows — the identity assertions
/// hold either way.
#[derive(Debug, Serialize)]
struct PdesRow {
    /// Workload label.
    workload: String,
    /// Worker threads configured.
    threads: f64,
    /// Sub-shards the windowed engine actually ran (1 = it fell back to
    /// the sequential or island path).
    shards: f64,
    /// Window-barrier rounds executed.
    windows: f64,
    /// Cross-shard eager envelopes forwarded through mailboxes.
    mailbox_envelopes: f64,
    /// Cross-shard payload arrivals forwarded through mailboxes.
    mailbox_arrivals: f64,
    /// Conservative lookahead of the certified plan, seconds (0 when
    /// the engine fell back).
    lookahead_s: f64,
    /// Effective window width, seconds (0 when the engine fell back).
    window_s: f64,
    /// Best-of-N wall time, seconds.
    wall_s: f64,
    /// Wall time at threads=1 over this row's wall time.
    speedup: f64,
    /// Simulated makespan — bit-identical across thread counts by
    /// construction (asserted before the row is emitted).
    simulated_s: f64,
}

/// Collective flow aggregation on vs off over one workload. The
/// simulated time and per-rank times are asserted bit-identical before
/// the row is emitted, so the counter columns measure pure bookkeeping
/// savings, not a model change.
#[derive(Debug, Serialize)]
struct AggSpeedup {
    /// Workload label.
    workload: String,
    /// Ranks replayed.
    ranks: f64,
    /// Simulated makespan — bit-identical with aggregation on or off.
    simulated_s: f64,
    /// Sharing churn (re-solves + rate updates) with aggregation off.
    off_churn: f64,
    /// Sharing churn with aggregation on.
    on_churn: f64,
    /// `off_churn / on_churn` — the headline reduction.
    churn_reduction: f64,
    /// High-water mark of live flows (identical both ways).
    live_flow_hwm: f64,
    /// High-water mark of live *entities* with aggregation on.
    live_entity_hwm: f64,
    /// `live_flow_hwm / live_entity_hwm` — the O(P)→O(1) collapse.
    entity_reduction: f64,
    /// Aggregate entities formed over the run.
    agg_formed: f64,
    /// Aggregates dissolved early by outside traffic.
    agg_splits: f64,
    /// Best-of-N wall time with aggregation off, seconds.
    off_wall_s: f64,
    /// Best-of-N wall time with aggregation on, seconds.
    on_wall_s: f64,
    /// `off_wall_s / on_wall_s`.
    wall_speedup: f64,
}

/// Netmodel flow churn at a given live-flow count.
#[derive(Debug, Serialize)]
struct ChurnSpeedup {
    /// Live flows held open while churning.
    live_flows: f64,
    /// Open/close operations performed.
    operations: f64,
    /// Full-recompute wall time, seconds.
    before_full_s: f64,
    /// Incremental wall time, seconds.
    after_incremental_s: f64,
    /// `before / after`.
    speedup: f64,
}

/// Throughput of one ingestion path over the same trace.
#[derive(Debug, Serialize)]
struct IngestSpeed {
    /// Ingestion path: "text-cold", "text-parallel-N", or "titb".
    path: String,
    /// Workload label.
    workload: String,
    /// On-disk bytes read by this path.
    bytes: f64,
    /// Actions decoded (identical across paths).
    actions: f64,
    /// Best-of-N wall time for one full load, seconds.
    wall_s: f64,
    /// `bytes / wall_s / 1e6`.
    mb_per_s: f64,
    /// `actions / wall_s` — the cross-format comparable rate.
    actions_per_s: f64,
    /// Process peak RSS (VmHWM) when this row was measured, MiB.
    /// Monotone over the process lifetime; 0 outside Linux.
    peak_rss_mb: f64,
}

/// Service-level query throughput against an embedded `titserved`.
///
/// Every number includes the full loopback HTTP round trip (connect,
/// request parse, response). The cold row is a single observation by
/// construction: repeating the query would hit the memo table, which is
/// exactly what the memoized row then measures.
#[derive(Debug, Serialize)]
struct ServeSection {
    /// Workload label.
    workload: String,
    /// Worker threads in the service replay pool.
    workers: f64,
    /// Wall time of the first query at a fresh key — parse, trace
    /// load, replay, manifest — seconds.
    cold_wall_s: f64,
    /// `1 / cold_wall_s`.
    cold_qps: f64,
    /// Repeats of the same query answered from the memo table.
    memo_queries: f64,
    /// Wall time for all memoized repeats, seconds.
    memo_wall_s: f64,
    /// `memo_queries / memo_wall_s`.
    memo_qps: f64,
    /// `memo_qps / cold_qps` — the win from never replaying twice.
    memo_speedup: f64,
    /// Concurrent identical queries fired at a key the service has
    /// never seen.
    dedup_clients: f64,
    /// Replays actually executed for that burst (asserted == 1).
    dedup_executions: f64,
    /// `dedup_clients / dedup_executions` — answers per replay.
    dedup_amplification: f64,
}

/// One cell of the experiment sweep.
#[derive(Debug, Serialize)]
struct SweepCell {
    /// Instance label ("B-8").
    instance: String,
    /// Wall time to predict this cell, seconds.
    wall_s: f64,
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn replay_cfg(engine: ReplayEngine, sharing: SharingPolicy) -> ReplayConfig {
    ReplayConfig {
        engine,
        rate: 2e9,
        placement: Placement::OnePerNode,
        copy_model: None,
        sharing,
        fel: FelImpl::default(),
        // Pinned sequential; the `parallel` section opts in explicitly.
        threads: 1,
        window_s: None,
        collective_agg: false,
    }
}

fn backend_speeds(platform: &Platform, trace: &Arc<Trace>, workload: &str) -> Vec<BackendSpeed> {
    let mut rows = Vec::new();
    for engine in [ReplayEngine::Smpi, ReplayEngine::Msg] {
        for fel in [FelImpl::Heap, FelImpl::Ladder] {
            let mut cfg = replay_cfg(engine, SharingPolicy::Bottleneck);
            cfg.fel = fel;
            let events = replay(platform, trace, &cfg).unwrap().events as f64;
            let wall_s = time_best(5, || replay(platform, trace, &cfg).unwrap());
            rows.push(BackendSpeed {
                backend: format!("{engine:?}"),
                workload: workload.into(),
                fel: format!("{fel:?}"),
                events,
                wall_s,
                events_per_s: events / wall_s,
            });
        }
    }
    rows
}

// ----------------------------------------------------------------------
// FEL churn microbenchmark (hold model + supersede churn)
// ----------------------------------------------------------------------

/// Live events held in the queue throughout the churn workload. Sized
/// like a large replay (P=8192 ranks × 8 in-flight activities): at this
/// depth the heap pays ~16 comparisons per pop while the ladder stays
/// O(1) amortized.
const HOLD_LIVE: u64 = 1 << 16;
/// Hold operations (pop + re-push) per run.
const HOLD_OPS: u64 = 1 << 20;
/// Every `DOOM_EVERY`-th hold op also pushes a doomed event that is
/// immediately superseded, driving the lazy-cancellation and compaction
/// machinery the replay runtimes exercise on every rate change.
const DOOM_EVERY: u64 = 4;

/// Deterministic xorshift64* stream (no external RNG dependency; the
/// workload must be identical across implementations and runs).
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Builds a queue holding `live` events at pseudo-random times.
fn hold_queue(fel: FelImpl, live: u64, rng: &mut u64) -> EventQueue {
    let mut q = EventQueue::with_capacity_fel(2 * live as usize, fel);
    for i in 0..live {
        let t = (next_rand(rng) % 1_000_000) as f64 * 1e-6;
        q.push(Time::from_secs(t), EventKind::Timer { actor: 0, key: i });
    }
    q
}

/// Runs hold operations `ops` on `q`: pop the minimum, push a successor a
/// pseudo-random increment later — the classic FEL "hold" access pattern
/// under which calendar/ladder queues beat binary heaps — with a doomed
/// (superseded) event mixed in every [`DOOM_EVERY`] ops. Doomed events
/// use `actor: 1` so pops can recognise and skip them, and compaction
/// can drop them, exactly as the kernel does for rescheduled activities.
fn hold_ops(q: &mut EventQueue, ops: std::ops::Range<u64>, rng: &mut u64) {
    for i in ops {
        let now;
        loop {
            let (t, kind) = q.pop().expect("hold queue never drains");
            if matches!(kind, EventKind::Timer { actor: 1, .. }) {
                q.note_stale_popped();
                continue;
            }
            // Increment on the scale of the event window, so successors
            // redistribute across the whole horizon (the standard hold
            // model) instead of piling up just ahead of `now`.
            let delta = 1e-6 * (1 + next_rand(rng) % 1_000_000) as f64;
            q.push(Time::from_secs(t.as_secs() + delta), kind);
            now = t.as_secs();
            break;
        }
        if i % DOOM_EVERY == 0 {
            // Superseded entries linger in the far future — exactly where
            // a rescheduled activity leaves its stale completion event —
            // until lazy compaction drops them.
            let delta = 1e-6 * (1_000_000 + next_rand(rng) % 1_000_000) as f64;
            q.push(
                Time::from_secs(now + delta),
                EventKind::Timer { actor: 1, key: i },
            );
            q.note_superseded();
        }
        if q.should_compact() {
            q.compact(|kind| !matches!(kind, EventKind::Timer { actor: 1, .. }));
        }
    }
}

/// Checks the profile-counter invariants the smoke gate relies on.
fn assert_counters_sane(fel: FelImpl, p: &FelProfile) {
    assert_eq!(
        p.popped,
        p.fired() + p.stale_popped,
        "{fel:?}: popped must split into fired + stale"
    );
    assert!(
        p.scheduled >= p.popped,
        "{fel:?}: popped more events than were ever scheduled"
    );
    assert!(
        p.superseded >= p.stale_popped,
        "{fel:?}: stale pops exceed superseded entries"
    );
    assert!(p.scheduled > 0 && p.popped > 0, "{fel:?}: counters dead");
    if fel == FelImpl::Ladder {
        assert!(p.bucket_sorts > 0, "ladder never sorted a bucket");
        assert!(p.reseeds > 0, "ladder never reseeded an epoch");
    }
}

/// One churn row: best-of-N wall time, then an uncounted run split in
/// half around an allocation snapshot — the second half is the steady
/// state and must not allocate for the ladder.
fn fel_churn_row(fel: FelImpl, live: u64, hold_ops_n: u64) -> FelChurn {
    let wall_s = time_best(3, || {
        let mut rng = 0x5eed_5eed_5eed_5eedu64;
        let mut q = hold_queue(fel, live, &mut rng);
        hold_ops(&mut q, 0..hold_ops_n, &mut rng);
        q
    });
    let mut rng = 0x5eed_5eed_5eed_5eedu64;
    let mut q = hold_queue(fel, live, &mut rng);
    hold_ops(&mut q, 0..hold_ops_n / 2, &mut rng);
    let before = alloc_counter::allocations();
    hold_ops(&mut q, hold_ops_n / 2..hold_ops_n, &mut rng);
    let steady_allocs = (alloc_counter::allocations() - before) as f64;
    let p = q.profile();
    assert_counters_sane(fel, &p);
    let fel_ops = (p.scheduled + p.popped) as f64;
    FelChurn {
        fel: format!("{fel:?}"),
        live_events: live as f64,
        hold_ops: hold_ops_n as f64,
        wall_s,
        fel_ops,
        fel_ops_per_s: fel_ops / wall_s,
        scheduled: p.scheduled as f64,
        superseded: p.superseded as f64,
        fired: p.fired() as f64,
        stale_popped: p.stale_popped as f64,
        spills: p.spills as f64,
        bucket_sorts: p.bucket_sorts as f64,
        reseeds: p.reseeds as f64,
        compactions: p.compactions as f64,
        steady_allocs,
    }
}

/// Times one workload across thread counts and asserts bit-identical
/// simulated times at every count. The >=2x speedup expectation at 4
/// threads only applies on hosts that can actually run 4 workers (and
/// to traces that decompose into more than one island); the identity
/// assertions are unconditional.
fn parallel_rows(
    platform: &Platform,
    trace: &Arc<Trace>,
    workload: &str,
    host: usize,
    rows: &mut Vec<ParallelSpeedup>,
) {
    use tit_replay::replay::partition;
    let islands = {
        let input = TraceInput::Memory(Arc::clone(trace));
        let sources = tit_replay::titrace::stream::open_sources(&input, trace.ranks()).unwrap();
        let scan = partition::scan_sources(sources).unwrap();
        let hosts = Placement::OnePerNode
            .assign(platform, trace.ranks())
            .unwrap();
        partition::partition_ranks(&scan, platform, &hosts)
            .islands
            .len()
    };
    let mut base: Option<(f64, u64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut cfg = replay_cfg(ReplayEngine::Smpi, SharingPolicy::Bottleneck);
        cfg.threads = threads;
        let result = replay(platform, trace, &cfg).unwrap();
        let wall_s = time_best(3, || replay(platform, trace, &cfg).unwrap());
        let (base_wall, base_bits) = *base.get_or_insert((wall_s, result.time.to_bits()));
        assert_eq!(
            result.time.to_bits(),
            base_bits,
            "{workload}: parallel replay at {threads} threads diverged"
        );
        let effective = if threads <= 1 || islands <= 1 {
            1
        } else {
            threads.min(islands)
        };
        rows.push(ParallelSpeedup {
            workload: workload.into(),
            threads: threads as f64,
            effective_threads: effective as f64,
            islands: islands as f64,
            wall_s,
            speedup: base_wall / wall_s,
            simulated_s: result.time,
        });
    }
    if islands >= 4 && host >= 4 {
        let four = rows.iter().rfind(|r| r.threads == 4.0).unwrap();
        assert!(
            four.speedup >= 2.0,
            "{workload}: expected >=2x speedup at 4 threads, got {:.2}x",
            four.speedup
        );
    }
}

/// A non-blocking crossbar: every host pair gets a dedicated NIC-link
/// pair, so single-source-per-receiver traffic (rings) certifies a
/// sub-shard plan for the windowed engine.
fn xbar_platform(nodes: u32, link_latency: f64) -> Platform {
    use tit_replay::platform::topology::{direct_cluster, DirectClusterSpec};
    direct_cluster(&DirectClusterSpec {
        name: "xbar".into(),
        nodes,
        host_speed: 1e9,
        cores: 1,
        cache_bytes: 1 << 20,
        link_bandwidth: 1.25e8,
        link_latency,
    })
}

/// A coupled ring with relaxed synchronisation: each rank streams
/// `burst` eager messages to its ring successor per block (one source
/// per receiver, so the crossbar certificate holds), then waits for
/// the matching receives and computes a rank- and block-dependent
/// amount. The burst keeps events dense inside each conservative
/// window so the per-window work amortises the barrier cost; the
/// skewed compute keeps event times from tying across ranks.
fn pdes_ring_trace(ranks: u32, blocks: u32, burst: u32, bytes: u64) -> Trace {
    let mut trace = Trace::new(ranks);
    for r in 0..ranks {
        let next = Rank((r + 1) % ranks);
        let prev = Rank((r + ranks - 1) % ranks);
        let rank = Rank(r);
        trace.push(rank, Action::Init);
        for b in 0..blocks {
            for _ in 0..burst {
                trace.push(rank, Action::Irecv { src: prev, bytes });
                trace.push(rank, Action::Isend { dst: next, bytes });
            }
            trace.push(rank, Action::WaitAll);
            trace.push(
                rank,
                Action::Compute {
                    amount: 1e5 + (r as f64) * 1.7e3 + (b as f64) * 3.1e2,
                },
            );
        }
        trace.push(rank, Action::Finalize);
    }
    trace
}

/// Times one workload through the windowed-PDES entry point across
/// thread counts, asserting bit-identical simulated times at every
/// count. `expect_engaged` demands that the engine actually sharded the
/// component at threads >= 2 (set it for certified workloads only; LU
/// and allreduce fall back by design). The >=2x speedup expectation at
/// 4 threads only applies on hosts with >= 4 workers; the identity
/// assertions are unconditional.
fn pdes_rows(
    platform: &Platform,
    trace: &Arc<Trace>,
    workload: &str,
    host: usize,
    expect_engaged: bool,
    rows: &mut Vec<PdesRow>,
) {
    use tit_replay::replay::replay_observed;
    let mut base: Option<(f64, u64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut cfg = replay_cfg(ReplayEngine::Smpi, SharingPolicy::Bottleneck);
        cfg.threads = threads;
        let report = replay_observed(platform, trace, &cfg, false).unwrap();
        let wall_s = time_best(3, || replay(platform, trace, &cfg).unwrap());
        let (base_wall, base_bits) = *base.get_or_insert((wall_s, report.result.time.to_bits()));
        assert_eq!(
            report.result.time.to_bits(),
            base_bits,
            "{workload}: windowed replay at {threads} threads diverged"
        );
        if threads > 1 && expect_engaged {
            assert!(
                report.pdes.is_some(),
                "{workload}: windowed engine failed to engage at {threads} threads"
            );
        }
        let p = report.pdes;
        rows.push(PdesRow {
            workload: workload.into(),
            threads: threads as f64,
            shards: p.map_or(1.0, |p| p.shards as f64),
            windows: p.map_or(0.0, |p| p.windows as f64),
            mailbox_envelopes: p.map_or(0.0, |p| p.mailbox_envelopes as f64),
            mailbox_arrivals: p.map_or(0.0, |p| p.mailbox_arrivals as f64),
            lookahead_s: p.map_or(0.0, |p| p.lookahead_s),
            window_s: p.map_or(0.0, |p| p.window_s),
            wall_s,
            speedup: base_wall / wall_s,
            simulated_s: report.result.time,
        });
    }
    if expect_engaged && host >= 4 {
        let four = rows
            .iter()
            .rfind(|r| r.workload == workload && r.threads == 4.0)
            .unwrap();
        assert!(
            four.speedup >= 2.0,
            "{workload}: expected >=2x windowed speedup at 4 threads, got {:.2}x",
            four.speedup
        );
    }
}

/// A flat switched cluster for the collective-dense aggregation rows:
/// one rank per node, every collective phase contending on the shared
/// backbone with P uniform flows.
fn agg_flat_platform(nodes: u32) -> Platform {
    use tit_replay::platform::spec::SpecKind;
    PlatformSpec {
        name: "agg-flat".into(),
        kind: SpecKind::Flat {
            nodes,
            host_speed: 2e9,
            cores: 1,
            cache_bytes: 1 << 20,
            link_bandwidth: 1.25e9,
            link_latency: 1e-5,
            backbone_bandwidth: 1e10,
            backbone_latency: 1e-6,
        },
    }
    .build()
}

/// The allreduce-heavy synthetic workload (`titrace-gen --workload
/// allreduce`): compute, then a P-wide allreduce, every iteration.
fn allreduce_trace(ranks: u32, iters: u32, bytes: u64) -> Trace {
    let mut trace = Trace::new(ranks);
    for r in 0..ranks {
        let rank = Rank(r);
        trace.push(rank, Action::Init);
        for _ in 0..iters {
            trace.push(rank, Action::Compute { amount: 1e5 });
            trace.push(rank, Action::Allreduce { bytes });
        }
        trace.push(rank, Action::Finalize);
    }
    trace
}

/// Measures one aggregation row: replays `trace` with `collective_agg`
/// off and on, asserts bit-identical simulated results, and returns the
/// counter comparison. `min_churn_reduction` / `min_entity_reduction`
/// gate the row (1.0 = only "never worse").
fn agg_row(
    platform: &Platform,
    trace: &Arc<Trace>,
    workload: &str,
    min_churn_reduction: f64,
    min_entity_reduction: f64,
) -> AggSpeedup {
    use tit_replay::replay::replay_observed;
    let off_cfg = replay_cfg(ReplayEngine::Smpi, SharingPolicy::Bottleneck);
    let mut on_cfg = off_cfg.clone();
    on_cfg.collective_agg = true;
    let off = replay_observed(platform, trace, &off_cfg, false).unwrap();
    let on = replay_observed(platform, trace, &on_cfg, false).unwrap();
    assert_eq!(
        off.result.time.to_bits(),
        on.result.time.to_bits(),
        "{workload}: aggregation changed the simulated time"
    );
    let off_bits: Vec<u64> = off.result.rank_times.iter().map(|t| t.to_bits()).collect();
    let on_bits: Vec<u64> = on.result.rank_times.iter().map(|t| t.to_bits()).collect();
    assert_eq!(
        off_bits, on_bits,
        "{workload}: aggregation changed per-rank completion times"
    );
    assert_eq!(
        off.metrics.live_flow_hwm, on.metrics.live_flow_hwm,
        "{workload}: aggregation changed the live-flow high-water mark"
    );
    let off_churn = (off.metrics.sharing_resolves + off.metrics.sharing_rate_updates) as f64;
    let on_churn = (on.metrics.sharing_resolves + on.metrics.sharing_rate_updates) as f64;
    let churn_reduction = off_churn / on_churn.max(1.0);
    let entity_reduction =
        on.metrics.live_flow_hwm as f64 / (on.metrics.live_entity_hwm as f64).max(1.0);
    assert!(
        churn_reduction >= min_churn_reduction,
        "{workload}: expected >={min_churn_reduction}x churn reduction, got {churn_reduction:.2}x"
    );
    assert!(
        entity_reduction >= min_entity_reduction,
        "{workload}: expected >={min_entity_reduction}x entity reduction, got \
         {entity_reduction:.2}x"
    );
    let off_wall_s = time_best(3, || replay(platform, trace, &off_cfg).unwrap());
    let on_wall_s = time_best(3, || replay(platform, trace, &on_cfg).unwrap());
    AggSpeedup {
        workload: workload.into(),
        ranks: trace.ranks() as f64,
        simulated_s: off.result.time,
        off_churn,
        on_churn,
        churn_reduction,
        live_flow_hwm: on.metrics.live_flow_hwm as f64,
        live_entity_hwm: on.metrics.live_entity_hwm as f64,
        entity_reduction,
        agg_formed: on.metrics.agg_formed as f64,
        agg_splits: on.metrics.agg_splits as f64,
        off_wall_s,
        on_wall_s,
        wall_speedup: off_wall_s / on_wall_s,
    }
}

fn fel_section(showcase: &Platform, halo: &Arc<Trace>) -> FelSection {
    let churn: Vec<FelChurn> = [FelImpl::Heap, FelImpl::Ladder]
        .into_iter()
        .map(|fel| fel_churn_row(fel, HOLD_LIVE, HOLD_OPS))
        .collect();
    let churn_speedup = churn[0].wall_s / churn[1].wall_s;
    let replay_rows = [FelImpl::Heap, FelImpl::Ladder]
        .into_iter()
        .map(|fel| {
            let mut cfg = replay_cfg(ReplayEngine::Smpi, SharingPolicy::Bottleneck);
            cfg.fel = fel;
            let events = replay(showcase, halo, &cfg).unwrap().events as f64;
            let wall_s = time_best(3, || replay(showcase, halo, &cfg).unwrap());
            FelReplay {
                workload: "halo-exchange-p128-iters200".into(),
                fel: format!("{fel:?}"),
                events,
                wall_s,
                events_per_s: events / wall_s,
            }
        })
        .collect();
    FelSection {
        churn,
        churn_speedup,
        replay: replay_rows,
    }
}

fn obs_overhead(platform: &Platform, trace: &Arc<Trace>, workload: &str) -> ObsOverhead {
    use tit_replay::replay::replay_observed;
    let cfg = replay_cfg(ReplayEngine::Smpi, SharingPolicy::Bottleneck);
    let plain = replay(platform, trace, &cfg).unwrap();
    let enabled = replay_observed(platform, trace, &cfg, true).unwrap();
    assert_eq!(
        plain.time.to_bits(),
        enabled.result.time.to_bits(),
        "span recorder changed the simulated time"
    );
    let log = enabled.spans.as_ref().expect("recorder was enabled");
    let disabled_wall_s = time_best(5, || replay(platform, trace, &cfg).unwrap());
    let enabled_wall_s = time_best(5, || replay_observed(platform, trace, &cfg, true).unwrap());
    ObsOverhead {
        workload: workload.into(),
        disabled_wall_s,
        enabled_wall_s,
        overhead_percent: (enabled_wall_s - disabled_wall_s) / disabled_wall_s * 100.0,
        spans: log.total_spans() as f64,
        flows: log.flows().len() as f64,
        simulated_s: plain.time,
    }
}

fn telemetry_overhead(
    platform: &Platform,
    trace: &Arc<Trace>,
    workload: &str,
    threads: usize,
) -> TelemetryOverhead {
    use tit_replay::replay::replay_input_profiled;
    use tit_replay::titrace::TraceInput;
    let mut cfg = replay_cfg(ReplayEngine::Smpi, SharingPolicy::Bottleneck);
    cfg.threads = threads;
    let ranks = trace.ranks();
    let input = TraceInput::Memory(Arc::clone(trace));
    let off = replay_input_profiled(platform, &input, ranks, &cfg, false, false).unwrap();
    let on = replay_input_profiled(platform, &input, ranks, &cfg, false, true).unwrap();
    assert_eq!(
        off.result.time.to_bits(),
        on.result.time.to_bits(),
        "wall-clock profiling changed the simulated time"
    );
    assert_eq!(off.result, on.result, "profiling changed the replay result");
    assert_eq!(off.metrics, on.metrics, "profiling changed the metrics");
    let prof = on.profile.expect("profiled run carries a profile");
    let off_wall_s = time_best(5, || {
        replay_input_profiled(platform, &input, ranks, &cfg, false, false).unwrap()
    });
    let on_wall_s = time_best(5, || {
        replay_input_profiled(platform, &input, ranks, &cfg, false, true).unwrap()
    });
    TelemetryOverhead {
        workload: workload.into(),
        threads: threads as f64,
        off_wall_s,
        on_wall_s,
        overhead_percent: (on_wall_s - off_wall_s) / off_wall_s * 100.0,
        workers: prof.workers.len() as f64,
        imbalance: prof.imbalance(),
        simulated_s: off.result.time,
    }
}

fn sharing_speedup(platform: &Platform, trace: &Arc<Trace>, workload: &str) -> SharingSpeedup {
    let run = |sharing| {
        let cfg = replay_cfg(ReplayEngine::Smpi, sharing);
        let sim = replay(platform, trace, &cfg).unwrap().time;
        (time_best(3, || replay(platform, trace, &cfg).unwrap()), sim)
    };
    let (before_full_s, sim_full) = run(SharingPolicy::MaxMinFull);
    let (after_incremental_s, sim_inc) = run(SharingPolicy::MaxMin);
    assert_eq!(
        sim_full.to_bits(),
        sim_inc.to_bits(),
        "incremental sharing changed the simulated time"
    );
    SharingSpeedup {
        workload: workload.into(),
        before_full_s,
        after_incremental_s,
        speedup: before_full_s / after_incremental_s,
        simulated_s: sim_inc,
    }
}

/// Intra-cabinet flow churn on a 16-cabinet cluster: every route is
/// `up -> down` with no backbone, so live flows form one sharing
/// component per cabinet and incremental recomputation touches 1/16th
/// of what the full reference re-solves.
fn component_churn() -> Vec<ChurnSpeedup> {
    const CABINETS: u32 = perfwork::CABINETS;
    const PER_CAB: u32 = perfwork::PER_CAB;
    let platform = perfwork::showcase_platform();
    let churn = 2_000u64;
    let run = |policy, live: u64| {
        let mut k = Kernel::new();
        let mut net = FlowNet::new(&platform, policy);
        let mut route = Vec::new();
        let mut open = Vec::new();
        for i in 0..churn {
            let cab = (i % u64::from(CABINETS)) as u32;
            let s = cab * PER_CAB + (i % u64::from(PER_CAB)) as u32;
            let d = cab * PER_CAB + ((i * 3 + 1) % u64::from(PER_CAB)) as u32;
            if s != d {
                platform.route(HostId(s), HostId(d), &mut route);
                open.push(net.open(&mut k, &route, 1e6, 1e9));
            }
            if open.len() as u64 > live {
                let f = open.swap_remove((i % live) as usize);
                net.close(&mut k, f);
            }
        }
        for f in open {
            net.close(&mut k, f);
        }
    };
    [16u64, 64, 128]
        .into_iter()
        .map(|live| {
            let before_full_s = time_best(3, || run(SharingPolicy::MaxMinFull, live));
            let after_incremental_s = time_best(3, || run(SharingPolicy::MaxMin, live));
            ChurnSpeedup {
                live_flows: live as f64,
                operations: churn as f64,
                before_full_s,
                after_incremental_s,
                speedup: before_full_s / after_incremental_s,
            }
        })
        .collect()
}

/// The process's peak resident set (VmHWM) in MiB, 0 where
/// `/proc/self/status` is unavailable.
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            let line = s.lines().find(|l| l.starts_with("VmHWM:"))?;
            line.split_whitespace().nth(1)?.parse::<f64>().ok()
        })
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Times the three ingestion paths over one P=64 LU trace and asserts
/// that all of them replay to the same simulated time, bit for bit.
fn ingest_speeds() -> Vec<IngestSpeed> {
    use tit_replay::titrace::{binfmt, files, stream};

    let lu = LuConfig::new(LuClass::B, 64).with_steps(10);
    let workload = format!("lu-{}-steps10", lu.label().to_lowercase());
    let trace = acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace;
    let ranks = trace.ranks();
    let dir = std::env::temp_dir().join(format!("titr-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("ingest temp dir");
    let text_path = dir.join("lu.trace");
    files::write_merged(&trace, &text_path).expect("write text trace");
    let bin_path = dir.join("lu.titb");
    binfmt::write_file(&trace, &bin_path, None).expect("write binary trace");
    let text_bytes = std::fs::metadata(&text_path).map_or(0, |m| m.len()) as f64;
    let bin_bytes = std::fs::metadata(&bin_path).map_or(0, |m| m.len()) as f64;
    let actions = trace.len() as f64;

    let row = |path: String, bytes: f64, wall_s: f64| IngestSpeed {
        path,
        workload: workload.clone(),
        bytes,
        actions,
        wall_s,
        mb_per_s: bytes / wall_s / 1e6,
        actions_per_s: actions / wall_s,
        peak_rss_mb: peak_rss_mb(),
    };

    let mut rows = Vec::new();
    let cold = time_best(3, || {
        let bytes = std::fs::read(&text_path).unwrap();
        stream::parse_merged_bytes(&bytes, ranks).unwrap()
    });
    rows.push(row("text-cold".into(), text_bytes, cold));
    for workers in [2usize, 4, 8] {
        let wall = time_best(3, || {
            let bytes = std::fs::read(&text_path).unwrap();
            stream::parse_merged_parallel(&bytes, ranks, workers).unwrap()
        });
        rows.push(row(format!("text-parallel-{workers}"), text_bytes, wall));
    }
    let titb = time_best(3, || {
        let bytes = std::fs::read(&bin_path).unwrap();
        binfmt::decode(&bytes).unwrap()
    });
    rows.push(row("titb".into(), bin_bytes, titb));

    // The paths must be interchangeable: same trace, same replay, same
    // bits. (Determinism across worker counts is covered by titrace's
    // own tests.)
    let from_bin = binfmt::read_file(&bin_path).expect("read binary trace");
    assert_eq!(from_bin, trace, "binary round-trip changed the trace");
    let cfg = replay_cfg(ReplayEngine::Smpi, SharingPolicy::Bottleneck);
    let bordereau = tit_replay::platform::clusters::bordereau();
    let inputs = [
        tit_replay::titrace::TraceInput::Memory(Arc::new(trace)),
        tit_replay::titrace::TraceInput::MergedText(text_path),
        tit_replay::titrace::TraceInput::Binary(bin_path),
    ];
    let times: Vec<u64> = inputs
        .iter()
        .map(|input| {
            tit_replay::replay::replay_input(&bordereau, input, ranks, &cfg)
                .expect("ingest replay failed")
                .time
                .to_bits()
        })
        .collect();
    assert!(
        times.windows(2).all(|w| w[0] == w[1]),
        "ingestion paths disagree on the simulated time"
    );
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

fn sweep_cells() -> Vec<SweepCell> {
    let opts = Options {
        steps: 5,
        json: false,
        seed: 42,
    };
    let testbed = Testbed::bordereau();
    let grid = [(LuClass::B, 8), (LuClass::B, 16), (LuClass::B, 32)];
    // Time each cell individually (workers may overlap them; the wall
    // time per cell is still what a scheduler needs for load balance).
    let timed = sweep::run(&grid, |_, &(class, procs)| {
        let t = Instant::now();
        let recs = accuracy_figure(
            "perf",
            &testbed,
            &[(class, procs)],
            Pipeline::improved(),
            &opts,
        );
        (recs[0].instance.clone(), t.elapsed().as_secs_f64())
    });
    timed
        .into_iter()
        .map(|(instance, wall_s)| SweepCell { instance, wall_s })
        .collect()
}

// ----------------------------------------------------------------------
// Replay-as-a-service throughput (embedded titserved over loopback)

/// Reads one numeric field out of the service's `/stats` body.
fn stats_field(addr: &str, key: &str) -> f64 {
    let resp = titserved::client::get(addr, "/stats").expect("stats request");
    let body = String::from_utf8(resp.body).expect("stats utf-8");
    let needle = format!("\"{key}\":");
    body.lines()
        .find_map(|l| l.trim().strip_prefix(needle.as_str()))
        .and_then(|v| v.trim().trim_end_matches(',').parse().ok())
        .unwrap_or_else(|| panic!("stats missing {key}: {body}"))
}

/// Boots a `titserved` on an ephemeral loopback port, serves `trace`
/// from a temp file, and measures the three service-level rates: the
/// cold first query, memoized repeats, and a concurrent identical burst
/// at a fresh key. Asserts the burst deduplicates to one execution with
/// byte-identical bodies before reporting it as amplification.
fn serve_section(
    trace: &Trace,
    workload: &str,
    workers: usize,
    memo_queries: usize,
    clients: usize,
) -> ServeSection {
    use tit_replay::platform::spec::{PlatformSpec, SpecKind};
    use tit_replay::titrace::files;
    use titserved::client;
    use titserved::server::{Server, ServerConfig};

    let ranks = trace.ranks();
    let dir = std::env::temp_dir().join(format!("titr-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("serve temp dir");
    let trace_path = dir.join("bench.trace");
    files::write_merged(trace, &trace_path).expect("write service trace");

    let spec = PlatformSpec {
        name: "bench-serve".into(),
        kind: SpecKind::Flat {
            nodes: ranks,
            host_speed: 1e9,
            cores: 1,
            cache_bytes: 1 << 20,
            link_bandwidth: 1.25e9,
            link_latency: 1.5e-5,
            backbone_bandwidth: 1.25e10,
            backbone_latency: 5e-6,
        },
    };
    // Access logging off: the benchmark drives thousands of requests
    // and the stderr lines are pure noise at that volume.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            sidecar: true,
            access_log: false,
        },
    )
    .expect("bind loopback");
    let addr = format!("127.0.0.1:{}", server.addr().port());
    let handle = std::thread::spawn(move || server.run());
    let body = |rate: f64| {
        format!(
            "{{\"trace\": \"{}\", \"ranks\": {ranks}, \"platform\": {}, \
             \"config\": {{\"rate\": {rate}, \"threads\": 1}}}}",
            trace_path.display(),
            spec.to_json()
        )
    };

    // Cold: first sight of this key — parse, trace load, replay,
    // manifest, all inside one round trip.
    let cold_body = body(2e9);
    let t = Instant::now();
    let first = client::predict(&addr, &cold_body).expect("cold predict");
    let cold_wall_s = t.elapsed().as_secs_f64();
    assert_eq!(
        first.status,
        200,
        "cold query failed: {}",
        String::from_utf8_lossy(&first.body)
    );

    // Memoized: the same key again and again, answered from the memo
    // table with the stored bytes and no replay.
    let t = Instant::now();
    for _ in 0..memo_queries {
        let r = client::predict(&addr, &cold_body).expect("memo predict");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, first.body, "memo hit must return the stored bytes");
    }
    let memo_wall_s = t.elapsed().as_secs_f64();

    // Dedup: a concurrent burst at a key the service has never seen.
    // One client wins the slot and replays; everyone else blocks on the
    // in-flight entry and shares its bytes.
    let fresh_body = body(3e9);
    let exec_before = stats_field(&addr, "executions");
    let burst: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| s.spawn(|| client::predict(&addr, &fresh_body).expect("dedup predict")))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for r in &burst {
        assert_eq!(r.status, 200);
        assert_eq!(
            r.body, burst[0].body,
            "dedup responses must be byte-identical"
        );
    }
    let dedup_executions = stats_field(&addr, "executions") - exec_before;
    assert_eq!(
        dedup_executions, 1.0,
        "{clients} identical concurrent queries must run exactly one replay"
    );

    client::post(&addr, "/shutdown", "").expect("shutdown");
    handle.join().expect("join server").expect("server run");
    let _ = std::fs::remove_dir_all(&dir);

    let cold_qps = 1.0 / cold_wall_s;
    let memo_qps = memo_queries as f64 / memo_wall_s;
    ServeSection {
        workload: workload.into(),
        workers: workers as f64,
        cold_wall_s,
        cold_qps,
        memo_queries: memo_queries as f64,
        memo_wall_s,
        memo_qps,
        memo_speedup: memo_qps / cold_qps,
        dedup_clients: clients as f64,
        dedup_executions,
        dedup_amplification: clients as f64 / dedup_executions,
    }
}

fn usage() -> ! {
    eprintln!("usage: perf_baseline [--out <BENCH_replay.json>] [--smoke]");
    std::process::exit(2);
}

/// CI gate: a reduced churn run per FEL implementation, checking the
/// profile-counter invariants and that the ladder's steady state is
/// allocation-free. Writes nothing.
fn smoke() {
    // Scaled down so compaction (and with it the steady state) is
    // reached well inside the first half of the run.
    let (live, ops) = (HOLD_LIVE / 16, HOLD_OPS / 16);
    for fel in [FelImpl::Heap, FelImpl::Ladder] {
        let row = fel_churn_row(fel, live, ops);
        eprintln!(
            "smoke {:>6}: {:.0} fel-ops/s, {} steady-state allocs, \
             {} compactions",
            row.fel, row.fel_ops_per_s, row.steady_allocs, row.compactions
        );
        if fel == FelImpl::Ladder {
            assert_eq!(
                row.steady_allocs, 0.0,
                "ladder steady state allocated {} times",
                row.steady_allocs
            );
        }
    }
    obs_smoke();
    parallel_smoke();
    pdes_smoke();
    agg_smoke();
    serve_smoke();
    telemetry_smoke();
    println!(
        "PERF_SMOKE ok (counters sane, ladder steady state allocation-free, \
         disabled recorder cost-free, threads=1 dispatch cost-free, \
         parallel replay bit-identical, windowed PDES bit-identical and \
         dispatch cost-free on coupled workloads, aggregation \
         bit-identical and churn-free, service dedup single-execution \
         and memo faster than cold, wall-clock profiling bit-identical \
         and cost-free when off)"
    );
}

/// Telemetry gate: with profiling off, the profiled entry point must
/// stay within 1% of the plain observed entry point (it *is* that
/// function's implementation — the delta bounds measurement noise plus
/// the dormant stopwatch branches), and a profiled parallel run must
/// change no simulated bit while carrying a coherent per-worker
/// breakdown (each worker's timed sections fit inside its own wall
/// interval).
fn telemetry_smoke() {
    use tit_replay::replay::{replay_input_observed, replay_input_profiled};
    use tit_replay::titrace::TraceInput;
    let showcase = perfwork::showcase_platform();
    let halo = Arc::new(perfwork::halo_exchange_trace(32, 50, 1 << 18));
    let ranks = halo.ranks();
    let input = TraceInput::Memory(Arc::clone(&halo));

    let mut cfg = replay_cfg(ReplayEngine::Smpi, SharingPolicy::Bottleneck);
    cfg.threads = 4;
    let off = replay_input_profiled(&showcase, &input, ranks, &cfg, false, false).unwrap();
    let on = replay_input_profiled(&showcase, &input, ranks, &cfg, false, true).unwrap();
    assert!(
        off.profile.is_none(),
        "profiling off must not attach a profile"
    );
    assert_eq!(
        off.result.time.to_bits(),
        on.result.time.to_bits(),
        "wall-clock profiling changed the simulated time"
    );
    assert_eq!(off.result, on.result, "profiling changed the replay result");
    assert_eq!(off.metrics, on.metrics, "profiling changed the metrics");
    let prof = on.profile.expect("profiled run carries a profile");
    assert!(
        prof.workers.len() >= 2,
        "halo exchange should profile >= 2 workers, got {}",
        prof.workers.len()
    );
    for w in &prof.workers {
        let parts = w.work_s + w.barrier_s + w.mailbox_s;
        assert!(
            parts <= w.wall_s + 5e-3,
            "worker {}: timed sections ({parts:.6}s) exceed its wall interval ({:.6}s)",
            w.worker,
            w.wall_s
        );
    }
    eprintln!(
        "smoke    tel: {} workers (mode {}), imbalance {:.2}, bit-identical on/off",
        prof.workers.len(),
        prof.mode,
        prof.imbalance()
    );

    // Wall-time gate for the disabled path, sequential (the shape every
    // production replay takes when nobody asks for a profile).
    cfg.threads = 1;
    let plain_s = time_best(5, || {
        replay_input_observed(&showcase, &input, ranks, &cfg, false).unwrap()
    });
    let off_s = time_best(5, || {
        replay_input_profiled(&showcase, &input, ranks, &cfg, false, false).unwrap()
    });
    let slack = (plain_s * 0.01).max(1e-3);
    eprintln!("smoke    tel: churn replay plain {plain_s:.6}s, profiling off {off_s:.6}s");
    assert!(
        off_s <= plain_s + slack,
        "profiling-off path regressed the churn replay by more than 1%: \
         {off_s:.6}s vs {plain_s:.6}s"
    );
}

/// Service gate: an embedded `titserved` must collapse a concurrent
/// burst of identical queries into exactly one replay with
/// byte-identical bodies (asserted inside [`serve_section`]), and the
/// memoized repeat rate must beat the cold query rate.
fn serve_smoke() {
    let lu = LuConfig::new(LuClass::S, 8).with_steps(4);
    let trace = acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace;
    let row = serve_section(&trace, "lu-s8-steps4", 2, 20, 6);
    eprintln!(
        "smoke  serve: cold {:.1} q/s, memoized {:.1} q/s ({:.0}x), \
         {}-client burst -> {} execution(s)",
        row.cold_qps, row.memo_qps, row.memo_speedup, row.dedup_clients, row.dedup_executions
    );
    assert!(
        row.memo_qps > row.cold_qps,
        "memoized repeats ({:.1} q/s) must beat the cold query ({:.1} q/s)",
        row.memo_qps,
        row.cold_qps
    );
}

/// Windowed-PDES gate: on a *coupled* workload (one island — the shape
/// the windowed engine exists for) the threads=1 entry point must stay
/// within 1% of the raw sequential runner (the sub-shard planner never
/// runs unless threads > 1), and the windowed replay at 4 threads must
/// actually engage, shard the component, and stay bit-identical to the
/// sequential result.
fn pdes_smoke() {
    use tit_replay::replay::{replay_observed, replay_sources_observed};
    use tit_replay::titrace::stream;
    let xbar = xbar_platform(8, 2e-4);
    let ring = Arc::new(pdes_ring_trace(8, 60, 8, 1 << 10));
    let input = TraceInput::Memory(Arc::clone(&ring));
    let cfg = replay_cfg(ReplayEngine::Smpi, SharingPolicy::Bottleneck);
    assert_eq!(cfg.threads, 1, "bench config must pin the sequential path");
    let raw_s = time_best(5, || {
        let sources = stream::open_sources(&input, ring.ranks()).unwrap();
        replay_sources_observed(&xbar, sources, &cfg, false).unwrap()
    });
    let dispatch_s = time_best(5, || replay(&xbar, &ring, &cfg).unwrap());
    let slack = (raw_s * 0.01).max(1e-3);
    eprintln!("smoke   pdes: raw sequential {raw_s:.6}s, threads=1 dispatch {dispatch_s:.6}s");
    assert!(
        dispatch_s <= raw_s + slack,
        "threads=1 replay of a coupled workload regressed the sequential \
         path by more than 1%: {dispatch_s:.6}s vs {raw_s:.6}s"
    );

    let base = replay_observed(&xbar, &ring, &cfg, false).unwrap();
    let mut cfg4 = cfg.clone();
    cfg4.threads = 4;
    let par = replay_observed(&xbar, &ring, &cfg4, false).unwrap();
    assert_eq!(
        base.result.time.to_bits(),
        par.result.time.to_bits(),
        "windowed replay at 4 threads diverged from the sequential result"
    );
    let stats = par
        .pdes
        .expect("windowed engine failed to engage on the coupled ring");
    assert_eq!(
        stats.shards, 4,
        "windowed engine did not shard the ring 4 ways"
    );
    assert!(stats.windows > 0 && stats.mailbox_envelopes > 0);
    eprintln!(
        "smoke   pdes: 4-thread windowed replay bit-identical \
         ({} shards, {} windows, {} cross envelopes, simulated {:.6}s)",
        stats.shards, stats.windows, stats.mailbox_envelopes, base.result.time
    );
}

/// Aggregation gate: collective flow aggregation must be bit-identical
/// to the constituent path and must never *increase* the sharing churn
/// — on the collective-dense shape it must strictly reduce it and
/// collapse the live entities.
fn agg_smoke() {
    let ar_platform = agg_flat_platform(16);
    let ar_trace = Arc::new(allreduce_trace(16, 10, 1 << 16));
    let row = agg_row(&ar_platform, &ar_trace, "allreduce-p16-iters10", 2.0, 4.0);
    eprintln!(
        "smoke    agg: allreduce churn {:.0} -> {:.0} ({:.1}x), entities {} -> {}",
        row.off_churn, row.on_churn, row.churn_reduction, row.live_flow_hwm, row.live_entity_hwm
    );
    let lu = LuConfig::new(LuClass::S, 8).with_steps(4);
    let trace = Arc::new(acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace);
    let bordereau = tit_replay::platform::clusters::bordereau();
    let row = agg_row(&bordereau, &trace, "lu-s8-steps4", 1.0, 1.0);
    eprintln!(
        "smoke    agg: LU churn {:.0} -> {:.0} ({:.2}x), bit-identical",
        row.off_churn, row.on_churn, row.churn_reduction
    );
}

/// Parallel-replay gate: the threads=1 entry point must cost the same
/// as the raw sequential runner (the parallel dispatch short-circuits
/// before any scan work), and a multi-island replay at 4 threads must
/// be bit-identical to the sequential result.
fn parallel_smoke() {
    use tit_replay::replay::replay_sources_observed;
    use tit_replay::titrace::stream;
    let showcase = perfwork::showcase_platform();
    let halo = Arc::new(perfwork::halo_exchange_trace(32, 50, 1 << 18));
    let input = TraceInput::Memory(Arc::clone(&halo));
    let cfg = replay_cfg(ReplayEngine::Smpi, SharingPolicy::Bottleneck);
    assert_eq!(cfg.threads, 1, "bench config must pin the sequential path");
    let raw_s = time_best(5, || {
        let sources = stream::open_sources(&input, halo.ranks()).unwrap();
        replay_sources_observed(&showcase, sources, &cfg, false).unwrap()
    });
    let dispatch_s = time_best(5, || replay(&showcase, &halo, &cfg).unwrap());
    let slack = (raw_s * 0.01).max(1e-3);
    eprintln!("smoke    par: raw sequential {raw_s:.6}s, threads=1 dispatch {dispatch_s:.6}s");
    assert!(
        dispatch_s <= raw_s + slack,
        "threads=1 replay regressed the sequential path by more than 1%: \
         {dispatch_s:.6}s vs {raw_s:.6}s"
    );

    let base = replay(&showcase, &halo, &cfg).unwrap();
    let mut cfg4 = cfg.clone();
    cfg4.threads = 4;
    let par = replay(&showcase, &halo, &cfg4).unwrap();
    assert_eq!(
        base.time.to_bits(),
        par.time.to_bits(),
        "parallel replay at 4 threads diverged from the sequential result"
    );
    eprintln!(
        "smoke    par: 4-thread replay bit-identical (simulated {:.6}s)",
        base.time
    );
}

/// Observability gate: with no recorder installed, replay must be the
/// plain path — bit-identical simulated time, no workload-scaling heap
/// allocations, and wall time within 1% of the plain entry point on a
/// churn-heavy workload (the hold-model-style halo exchange that
/// dominates the FEL bench).
fn obs_smoke() {
    use tit_replay::replay::replay_observed;
    let bordereau = tit_replay::platform::clusters::bordereau();
    let cfg = replay_cfg(ReplayEngine::Smpi, SharingPolicy::Bottleneck);

    // Allocation check at two workload sizes: the observed entry point
    // may pay a small per-run constant over the plain one (the metrics
    // snapshot itself), but the difference must not grow with the
    // workload — that would mean the disabled path allocates per event.
    let mut deltas = Vec::new();
    for steps in [2u32, 8] {
        let lu = LuConfig::new(LuClass::S, 8).with_steps(steps);
        let trace =
            Arc::new(acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace);
        // Warm-up so the counted runs see steady-state behaviour only.
        let warm = replay(&bordereau, &trace, &cfg).unwrap().time;
        let before = alloc_counter::allocations();
        let plain = replay(&bordereau, &trace, &cfg).unwrap();
        let plain_allocs = alloc_counter::allocations() - before;
        let before = alloc_counter::allocations();
        let report = replay_observed(&bordereau, &trace, &cfg, false).unwrap();
        let observed_allocs = alloc_counter::allocations() - before;
        assert!(report.spans.is_none(), "disabled recorder produced spans");
        assert_eq!(
            plain.time.to_bits(),
            report.result.time.to_bits(),
            "observed (disabled) replay changed the simulated time"
        );
        assert_eq!(
            warm.to_bits(),
            plain.time.to_bits(),
            "replay not deterministic"
        );
        deltas.push(observed_allocs as i64 - plain_allocs as i64);
    }
    eprintln!(
        "smoke    obs: disabled-recorder alloc delta {} (steps=2) vs {} (steps=8)",
        deltas[0], deltas[1]
    );
    assert_eq!(
        deltas[0], deltas[1],
        "disabled-recorder allocation overhead scales with the workload \
         (want a per-run constant, i.e. zero steady-state allocations)"
    );

    // Wall-time check on the churn workload. Plain replay *is* the
    // observed runner with recording off, so this bounds measurement
    // noise plus any wrapper cost; a 1% band with a small absolute
    // floor keeps the gate meaningful without being timer-flaky.
    let halo = Arc::new(perfwork::halo_exchange_trace(32, 50, 1 << 18));
    let showcase = perfwork::showcase_platform();
    let plain_s = time_best(5, || replay(&showcase, &halo, &cfg).unwrap());
    let disabled_s = time_best(5, || {
        replay_observed(&showcase, &halo, &cfg, false).unwrap()
    });
    let slack = (plain_s * 0.01).max(1e-3);
    eprintln!("smoke    obs: churn replay plain {plain_s:.6}s, disabled recorder {disabled_s:.6}s");
    assert!(
        disabled_s <= plain_s + slack,
        "disabled-recorder path regressed the churn replay by more than 1%: \
         {disabled_s:.6}s vs {plain_s:.6}s"
    );
}

fn main() {
    let mut out_path = String::from("BENCH_replay.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => usage(),
            },
            "--smoke" => {
                smoke();
                return;
            }
            _ => usage(),
        }
    }

    // Captured before any measurement work: worker pools and allocator
    // pressure can shrink what `available_parallelism` reports later in
    // the run, which used to record `host_parallelism: 1` next to a
    // `parallel` section asserting >=2x speedups.
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("timing replay back-ends (LU S-16, bordereau)...");
    let lu = LuConfig::new(LuClass::S, 16).with_steps(10);
    let trace = Arc::new(acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace);
    let bordereau = tit_replay::platform::clusters::bordereau();
    let backends = backend_speeds(&bordereau, &trace, "lu-s16-steps10");

    eprintln!("timing sharing policies (halo exchange P=128; LU S-64, graphene)...");
    let showcase = perfwork::showcase_platform();
    let halo = Arc::new(perfwork::halo_exchange_trace(128, 200, 1 << 20));
    let big = LuConfig::new(LuClass::S, 64).with_steps(10);
    let big_trace =
        Arc::new(acquire(big.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace);
    let graphene = tit_replay::platform::clusters::graphene();
    let sharing = vec![
        sharing_speedup(&showcase, &halo, "halo-exchange-p128-iters200"),
        sharing_speedup(&graphene, &big_trace, "lu-s64-steps10-smpi"),
    ];

    eprintln!("timing parallel replay (halo exchange P=128; LU C-64, graphene)...");
    let mut parallel = Vec::new();
    parallel_rows(
        &showcase,
        &halo,
        "halo-exchange-p128-iters200",
        host_parallelism,
        &mut parallel,
    );
    let lu_c64 = LuConfig::new(LuClass::C, 64).with_steps(10);
    let lu_c64_trace = Arc::new(
        acquire(
            lu_c64.sources(),
            Instrumentation::Minimal,
            CompilerOpt::O3,
            1,
        )
        .trace,
    );
    parallel_rows(
        &graphene,
        &lu_c64_trace,
        "lu-c64-steps10",
        host_parallelism,
        &mut parallel,
    );

    eprintln!("timing collective aggregation (allreduce P=128; LU C-64)...");
    let ar_ranks = 128u32;
    let ar_platform = agg_flat_platform(ar_ranks);
    let ar_trace = Arc::new(allreduce_trace(ar_ranks, 50, 1 << 16));

    eprintln!("timing windowed PDES (coupled ring on crossbar; LU C-64; allreduce P=128)...");
    let xbar = xbar_platform(16, 2e-4);
    let ring = Arc::new(pdes_ring_trace(16, 300, 32, 1 << 10));
    let mut pdes = Vec::new();
    pdes_rows(
        &xbar,
        &ring,
        "coupled-ring-p16-blocks300-burst32",
        host_parallelism,
        true,
        &mut pdes,
    );
    pdes_rows(
        &graphene,
        &lu_c64_trace,
        "lu-c64-steps10",
        host_parallelism,
        false,
        &mut pdes,
    );
    pdes_rows(
        &ar_platform,
        &ar_trace,
        "allreduce-p128-iters50",
        host_parallelism,
        false,
        &mut pdes,
    );
    let agg = vec![
        // The collective-dense showcase: O(P)→O(1), so the churn must
        // shrink >=2x and the entity HWM by >=P/4.
        agg_row(
            &ar_platform,
            &ar_trace,
            "allreduce-p128-iters50",
            2.0,
            f64::from(ar_ranks) / 4.0,
        ),
        // The p2p-dominated end-to-end case: aggregation must never
        // make anything worse.
        agg_row(&graphene, &lu_c64_trace, "lu-c64-steps10", 1.0, 1.0),
    ];

    eprintln!("timing component churn (16-cabinet cluster)...");
    let churn = component_churn();

    eprintln!("timing trace ingestion paths (LU B-64)...");
    let ingest = ingest_speeds();

    eprintln!("timing sweep cells (accuracy figure, bordereau)...");
    let cells = sweep_cells();

    eprintln!("timing heap-vs-ladder FEL (churn microbench; halo replay)...");
    let fel = fel_section(&showcase, &halo);

    eprintln!("timing recorder overhead (LU S-16; halo exchange)...");
    let obs = vec![
        obs_overhead(&bordereau, &trace, "lu-s16-steps10"),
        obs_overhead(&showcase, &halo, "halo-exchange-p128-iters200"),
    ];

    eprintln!("timing wall-clock profiling overhead (halo exchange P=128)...");
    let telemetry = vec![
        telemetry_overhead(&showcase, &halo, "halo-exchange-p128-iters200", 1),
        telemetry_overhead(&showcase, &halo, "halo-exchange-p128-iters200", 4),
    ];

    eprintln!("timing the prediction service (LU B-8 over loopback)...");
    let serve_lu = LuConfig::new(LuClass::B, 8).with_steps(10);
    let serve_trace = acquire(
        serve_lu.sources(),
        Instrumentation::Minimal,
        CompilerOpt::O3,
        1,
    )
    .trace;
    let serve = serve_section(&serve_trace, "lu-b8-steps10", 4, 200, 8);

    let doc = Baseline {
        generated_by: "bench/perf_baseline".into(),
        host_parallelism: host_parallelism as f64,
        backends,
        sharing,
        parallel,
        pdes,
        agg,
        component_churn: churn,
        ingest,
        sweep_cells: cells,
        fel,
        obs,
        telemetry,
        serve,
    };
    let json = serde_json::to_string_pretty(&doc).expect("baseline always serializes");
    std::fs::write(&out_path, json + "\n").expect("write baseline");
    eprintln!("wrote {out_path}");
}
