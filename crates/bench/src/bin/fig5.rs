//! Figure 5: the Figure 4 minimal-instrumentation discrepancy study on
//! the *graphene* cluster.

use bench::{counter_discrepancy_figure, emit, graphene_grid, Options};
use tit_replay::acquisition::{CompilerOpt, Instrumentation};

fn main() {
    let opts = Options::from_args();
    let records = counter_discrepancy_figure(
        "fig5",
        "graphene",
        &graphene_grid(),
        Instrumentation::Minimal,
        CompilerOpt::O3,
        &opts,
    );
    emit(
        &records,
        &[
            "min_pct",
            "q1_pct",
            "median_pct",
            "q3_pct",
            "max_pct",
            "mean_pct",
        ],
        &opts,
    );
}
