//! Ablation study (beyond the paper): starting from the improved
//! pipeline, revert each of the four fixes in isolation and measure the
//! resulting accuracy band over the bordereau grid. Attributes the
//! accuracy gain to individual fixes.

use bench::{accuracy_figure, bordereau_grid, emit, Options};
use tit_replay::emulator::Testbed;
use tit_replay::metrics::ErrorBand;
use tit_replay::pipeline::AblationKnob;
use tit_replay::prelude::*;

fn main() {
    let opts = Options::from_args();
    let tb = Testbed::bordereau();
    let grid = bordereau_grid();
    let mut all = Vec::new();
    let mut bands: Vec<(String, ErrorBand)> = Vec::new();
    let mut pipelines = vec![Pipeline::improved(), Pipeline::legacy()];
    for knob in AblationKnob::all() {
        pipelines.push(Pipeline::improved_without(knob));
    }
    for pipeline in pipelines {
        let name = pipeline.name.clone();
        eprintln!("== {name} ==");
        let records = accuracy_figure(&format!("ablation:{name}"), &tb, &grid, pipeline, &opts);
        let mut band = ErrorBand::new();
        for r in &records {
            band.add(r.value("rel_err_pct").expect("error recorded"));
        }
        bands.push((name, band));
        all.extend(records);
    }
    emit(&all, &["real_s", "simulated_s", "rel_err_pct"], &opts);
    println!();
    println!(
        "{:<40}{:>12}{:>12}{:>10}",
        "pipeline", "min_err%", "max_err%", "width"
    );
    for (name, band) in bands {
        println!(
            "{:<40}{:>12.1}{:>12.1}{:>10.1}",
            name,
            band.min,
            band.max,
            band.width()
        );
    }
}
