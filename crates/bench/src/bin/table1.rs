//! Table 1: evolution on the *bordereau* cluster of the execution time
//! and overhead of original and instrumented versions of LU instances,
//! between the former implementation (TAU fine-grain, -O0) and the
//! modified one (-O3 + minimal instrumentation).

use bench::{bordereau_grid, emit, overhead_table, Options};
use tit_replay::emulator::Testbed;

fn main() {
    let opts = Options::from_args();
    let records = overhead_table("table1", &Testbed::bordereau(), &bordereau_grid(), &opts);
    emit(
        &records,
        &[
            "old_orig_s",
            "old_instr_s",
            "old_overhead_pct",
            "new_orig_s",
            "new_instr_s",
            "new_overhead_pct",
        ],
        &opts,
    );
}
