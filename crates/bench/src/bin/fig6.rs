//! Figure 6: relative error between execution and simulated times for LU
//! with the *new* replay framework (-O3, minimal instrumentation,
//! cache-aware calibration, SMPI back-end) on *bordereau*. The headline
//! result: the error band narrows drastically and the linear growth with
//! the process count disappears.

use bench::{accuracy_figure, bordereau_grid, emit, Options};
use tit_replay::emulator::Testbed;
use tit_replay::prelude::*;

fn main() {
    let opts = Options::from_args();
    let records = accuracy_figure(
        "fig6",
        &Testbed::bordereau(),
        &bordereau_grid(),
        Pipeline::improved(),
        &opts,
    );
    emit(
        &records,
        &["real_s", "simulated_s", "rel_err_pct", "rate_ips"],
        &opts,
    );
}
