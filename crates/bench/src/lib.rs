//! Shared infrastructure of the experiment harness.
//!
//! One binary per paper table/figure lives in `src/bin/`; this library
//! provides the common pieces: instance grids, option parsing, table
//! rendering, and the three experiment drivers (overhead tables,
//! instruction-discrepancy figures, accuracy figures).

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::sync::Arc;

use tit_replay::acquisition::{mean_rank_counters, CompilerOpt, Instrumentation};
use tit_replay::emulator::Testbed;
use tit_replay::metrics::ExperimentRecord;
use tit_replay::prelude::*;
use tit_replay::simkernel::stats::Summary;

/// Default time-step count for harness runs. All reported quantities
/// (times, instruction counts) scale linearly in the step count, so a
/// reduced run reproduces the paper's *relative* numbers exactly while
/// absolute times are `steps/250` of the official instances; pass
/// `--full` for the official 250 steps.
pub const DEFAULT_STEPS: u32 = 25;

/// Runs of the counter experiments to average (the paper uses ten).
pub const COUNTER_RUNS: u32 = 10;

/// Harness options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// LU time steps per instance.
    pub steps: u32,
    /// Emit records as JSON instead of a text table.
    pub json: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Options {
    /// Parses `--steps N`, `--full`, `--json`, `--seed N` from argv.
    pub fn from_args() -> Options {
        let mut opts = Options {
            steps: DEFAULT_STEPS,
            json: false,
            seed: 42,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--steps" => {
                    let v = args.next().expect("--steps needs a value");
                    opts.steps = v.parse().expect("--steps needs an integer");
                }
                "--full" => opts.steps = 250,
                "--json" => opts.json = true,
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed needs an integer");
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: [--steps N | --full] [--json] [--seed N]\n\
                         default: --steps {DEFAULT_STEPS} (all quantities scale linearly)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown option `{other}`"),
            }
        }
        opts
    }

    /// An LU instance at this option set's step count.
    pub fn instance(&self, class: LuClass, procs: u32) -> LuConfig {
        LuConfig::new(class, procs).with_steps(self.steps)
    }
}

/// The paper's bordereau instance grid (Table 1, Figures 1/3/4/6).
pub fn bordereau_grid() -> Vec<(LuClass, u32)> {
    let mut v = Vec::new();
    for class in [LuClass::B, LuClass::C] {
        for procs in [8u32, 16, 32, 64] {
            v.push((class, procs));
        }
    }
    v
}

/// The paper's graphene instance grid (Table 2, Figures 2/5/7 — up to
/// 128 processes).
pub fn graphene_grid() -> Vec<(LuClass, u32)> {
    let mut v = Vec::new();
    for class in [LuClass::B, LuClass::C] {
        for procs in [8u32, 16, 32, 64, 128] {
            v.push((class, procs));
        }
    }
    v
}

/// Renders records as a fixed-width text table with the given value
/// columns, or JSON with `--json`.
pub fn emit(records: &[ExperimentRecord], columns: &[&str], opts: &Options) {
    if opts.json {
        println!("{}", ExperimentRecord::to_json(records));
        return;
    }
    print!("{:<10}{:<12}{:<10}", "exp", "cluster", "instance");
    for c in columns {
        print!("{c:>18}");
    }
    println!();
    let width = 32 + 18 * columns.len();
    println!("{}", "-".repeat(width));
    for r in records {
        print!("{:<10}{:<12}{:<10}", r.experiment, r.cluster, r.instance);
        for c in columns {
            match r.value(c) {
                Some(v) => print!("{v:>18.3}"),
                None => print!("{:>18}", "-"),
            }
        }
        println!();
    }
}

// ----------------------------------------------------------------------
// Experiment drivers
// ----------------------------------------------------------------------

/// Driver for Tables 1-2: original vs instrumented execution times, for
/// the legacy acquisition (TAU fine, `-O0`) and the modified one
/// (minimal, `-O3`).
pub fn overhead_table(
    experiment: &str,
    testbed: &Testbed,
    grid: &[(LuClass, u32)],
    opts: &Options,
) -> Vec<ExperimentRecord> {
    let mut records = Vec::new();
    for (class, procs) in grid {
        let lu = opts.instance(*class, *procs);
        let legacy = testbed
            .overhead_lu(&lu, Instrumentation::legacy_default(), CompilerOpt::O0)
            .unwrap_or_else(|e| panic!("{}: {e}", lu.label()));
        let modified = testbed
            .overhead_lu(&lu, Instrumentation::Minimal, CompilerOpt::O3)
            .unwrap_or_else(|e| panic!("{}: {e}", lu.label()));
        records.push(
            ExperimentRecord::new(experiment, &testbed.platform.name, lu.label())
                .with("old_orig_s", legacy.original)
                .with("old_instr_s", legacy.instrumented)
                .with("old_overhead_pct", legacy.overhead_percent())
                .with("new_orig_s", modified.original)
                .with("new_instr_s", modified.instrumented)
                .with("new_overhead_pct", modified.overhead_percent()),
        );
        eprintln!(
            "  {}: old {:.2}s -> {:.2}s (+{:.1}%) | new {:.2}s -> {:.2}s (+{:.1}%)",
            lu.label(),
            legacy.original,
            legacy.instrumented,
            legacy.overhead_percent(),
            modified.original,
            modified.instrumented,
            modified.overhead_percent()
        );
    }
    records
}

/// Driver for Figures 1/2/4/5: per-process distribution of the relative
/// difference of measured instruction counts between an instrumented
/// mode and the coarse reference.
pub fn counter_discrepancy_figure(
    experiment: &str,
    cluster: &str,
    grid: &[(LuClass, u32)],
    mode: Instrumentation,
    compiler: CompilerOpt,
    opts: &Options,
) -> Vec<ExperimentRecord> {
    let mut records = Vec::new();
    for (class, procs) in grid {
        let lu = opts.instance(*class, *procs);
        let coarse = mean_rank_counters(
            || lu.sources(),
            Instrumentation::Coarse,
            compiler,
            opts.seed,
            COUNTER_RUNS,
        );
        let instrumented = mean_rank_counters(
            || lu.sources(),
            mode,
            compiler,
            opts.seed.wrapping_add(0x5851F42D4C957F2D),
            COUNTER_RUNS,
        );
        let diffs: Vec<f64> = instrumented
            .iter()
            .zip(coarse.iter())
            .map(|(i, c)| (i - c) / c * 100.0)
            .collect();
        let s = Summary::of(&diffs).expect("non-empty rank set");
        records.push(
            ExperimentRecord::new(experiment, cluster, lu.label())
                .with("min_pct", s.min)
                .with("q1_pct", s.q1)
                .with("median_pct", s.median)
                .with("q3_pct", s.q3)
                .with("max_pct", s.max)
                .with("mean_pct", s.mean),
        );
        eprintln!("  {}: {}", lu.label(), s);
    }
    records
}

/// Driver for Figures 3/6/7: relative error between emulated-real and
/// simulated execution times over the instance grid, under one pipeline.
pub fn accuracy_figure(
    experiment: &str,
    testbed: &Testbed,
    grid: &[(LuClass, u32)],
    pipeline: Pipeline,
    opts: &Options,
) -> Vec<ExperimentRecord> {
    let predictor = Predictor::new(testbed, pipeline, opts.seed).expect("calibration failed");
    let mut records = Vec::new();
    for (class, procs) in grid {
        let lu = opts.instance(*class, *procs);
        let p = predictor
            .predict(&lu, opts.seed.wrapping_add(u64::from(*procs)))
            .unwrap_or_else(|e| panic!("{}: {e}", lu.label()));
        records.push(
            ExperimentRecord::new(experiment, &testbed.platform.name, lu.label())
                .with("real_s", p.real_seconds)
                .with("simulated_s", p.simulated_seconds)
                .with("rel_err_pct", p.relative_error_percent())
                .with("rate_ips", p.calibrated_rate),
        );
        eprintln!(
            "  {}: real {:.2}s sim {:.2}s err {:+.1}%",
            lu.label(),
            p.real_seconds,
            p.simulated_seconds,
            p.relative_error_percent()
        );
    }
    records
}

/// Replays one already-acquired trace and returns the error against a
/// given real time (used by the crossover/what-if examples).
pub fn replay_error(
    platform: &Platform,
    trace: &Arc<Trace>,
    config: &ReplayConfig,
    real_seconds: f64,
) -> f64 {
    let sim = replay(platform, trace, config).expect("replay failed");
    (sim.time - real_seconds) / real_seconds * 100.0
}
