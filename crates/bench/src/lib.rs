//! Shared infrastructure of the experiment harness.
//!
//! One binary per paper table/figure lives in `src/bin/`; this library
//! provides the common pieces: instance grids, option parsing, table
//! rendering, and the three experiment drivers (overhead tables,
//! instruction-discrepancy figures, accuracy figures).

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::sync::Arc;

use tit_replay::acquisition::{mean_rank_counters, CompilerOpt, Instrumentation};
use tit_replay::emulator::Testbed;
use tit_replay::metrics::ExperimentRecord;
use tit_replay::prelude::*;
use tit_replay::simkernel::stats::Summary;

/// Default time-step count for harness runs. All reported quantities
/// (times, instruction counts) scale linearly in the step count, so a
/// reduced run reproduces the paper's *relative* numbers exactly while
/// absolute times are `steps/250` of the official instances; pass
/// `--full` for the official 250 steps.
pub const DEFAULT_STEPS: u32 = 25;

/// Runs of the counter experiments to average (the paper uses ten).
pub const COUNTER_RUNS: u32 = 10;

/// Harness options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// LU time steps per instance.
    pub steps: u32,
    /// Emit records as JSON instead of a text table.
    pub json: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Options {
    /// Parses `--steps N`, `--full`, `--json`, `--seed N` from argv.
    pub fn from_args() -> Options {
        let mut opts = Options {
            steps: DEFAULT_STEPS,
            json: false,
            seed: 42,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--steps" => {
                    let v = args.next().expect("--steps needs a value");
                    opts.steps = v.parse().expect("--steps needs an integer");
                }
                "--full" => opts.steps = 250,
                "--json" => opts.json = true,
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed needs an integer");
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: [--steps N | --full] [--json] [--seed N]\n\
                         default: --steps {DEFAULT_STEPS} (all quantities scale linearly)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown option `{other}`"),
            }
        }
        opts
    }

    /// An LU instance at this option set's step count.
    pub fn instance(&self, class: LuClass, procs: u32) -> LuConfig {
        LuConfig::new(class, procs).with_steps(self.steps)
    }
}

/// The paper's bordereau instance grid (Table 1, Figures 1/3/4/6).
pub fn bordereau_grid() -> Vec<(LuClass, u32)> {
    let mut v = Vec::new();
    for class in [LuClass::B, LuClass::C] {
        for procs in [8u32, 16, 32, 64] {
            v.push((class, procs));
        }
    }
    v
}

/// The paper's graphene instance grid (Table 2, Figures 2/5/7 — up to
/// 128 processes).
pub fn graphene_grid() -> Vec<(LuClass, u32)> {
    let mut v = Vec::new();
    for class in [LuClass::B, LuClass::C] {
        for procs in [8u32, 16, 32, 64, 128] {
            v.push((class, procs));
        }
    }
    v
}

/// Renders records as a fixed-width text table with the given value
/// columns, or JSON with `--json`.
pub fn emit(records: &[ExperimentRecord], columns: &[&str], opts: &Options) {
    if opts.json {
        println!("{}", ExperimentRecord::to_json(records));
        return;
    }
    print!("{:<10}{:<12}{:<10}", "exp", "cluster", "instance");
    for c in columns {
        print!("{c:>18}");
    }
    println!();
    let width = 32 + 18 * columns.len();
    println!("{}", "-".repeat(width));
    for r in records {
        print!("{:<10}{:<12}{:<10}", r.experiment, r.cluster, r.instance);
        for c in columns {
            match r.value(c) {
                Some(v) => print!("{v:>18.3}"),
                None => print!("{:>18}", "-"),
            }
        }
        println!();
    }
}

// ----------------------------------------------------------------------
// Parallel sweeps
// ----------------------------------------------------------------------

/// Parallel execution of independent experiment cells.
///
/// Every cell of an experiment grid (one `(class, procs)` instance) is an
/// independent simulation, so the drivers fan cells out over a scoped
/// worker pool. Results land in index-ordered slots and per-cell log
/// output is buffered and emitted in grid order, so a parallel sweep's
/// output is byte-identical to a sequential one — only the wall-clock
/// time changes.
pub mod sweep {
    use parking_lot::Mutex;

    /// Chooses the worker count for `cells` work items: the
    /// `TITR_SWEEP_THREADS` environment variable when set (a value of 1
    /// forces sequential execution), otherwise the machine's available
    /// parallelism, never more than the number of cells. One definition
    /// serves both experiment sweeps and trace ingestion — this is the
    /// same pool policy as [`tit_replay::titrace::stream::worker_count`].
    pub fn worker_count(cells: usize) -> usize {
        tit_replay::titrace::stream::worker_count(cells)
    }

    /// Runs `f(i, &items[i])` for every item on [`worker_count`] workers
    /// and returns the outputs in item order.
    pub fn run<I, T, F>(items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        run_with_workers(items, worker_count(items.len()), f)
    }

    /// Like [`run`] with an explicit worker count. `workers <= 1`
    /// degenerates to a plain in-order loop; any other count yields the
    /// same output vector (slots are keyed by item index, and cells are
    /// independent), which the determinism tests verify.
    pub fn run_with_workers<I, T, F>(items: &[I], workers: usize, f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        if workers <= 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
        }
        let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        let slots = Mutex::new(slots);
        let next = Mutex::new(0usize);
        crossbeam::thread::scope(|s| {
            for _ in 0..workers.min(items.len()) {
                s.spawn(|_| loop {
                    let i = {
                        let mut n = next.lock();
                        let i = *n;
                        *n += 1;
                        i
                    };
                    let Some(item) = items.get(i) else { break };
                    let out = f(i, item);
                    slots.lock()[i] = Some(out);
                });
            }
        })
        .expect("sweep scope failed");
        slots
            .into_inner()
            .into_iter()
            .map(|slot| slot.expect("worker exited before filling its slot"))
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parallel_output_matches_sequential() {
            let items: Vec<u64> = (0..37).collect();
            let f = |i: usize, x: &u64| (i as u64) * 1000 + x * x;
            let sequential = run_with_workers(&items, 1, f);
            for workers in [2, 4, 16] {
                assert_eq!(run_with_workers(&items, workers, f), sequential);
            }
        }

        #[test]
        fn slow_early_cells_do_not_reorder_results() {
            // Earlier cells sleep longer, so later cells finish first;
            // slot ordering must hide that entirely.
            let items: Vec<u64> = (0..8).collect();
            let out = run_with_workers(&items, 4, |i, x| {
                std::thread::sleep(std::time::Duration::from_millis(8 - i as u64));
                *x
            });
            assert_eq!(out, items);
        }

        #[test]
        fn worker_count_is_positive_and_capped() {
            assert_eq!(worker_count(0), 1);
            assert_eq!(worker_count(1), 1);
            assert!(worker_count(1000) >= 1);
        }
    }
}

/// Workloads and platforms shared by the Criterion benches and the
/// `perf_baseline` binary, so `BENCH_replay.json` and the bench reports
/// measure the same thing.
pub mod perfwork {
    use tit_replay::platform::topology::{cabinet_cluster, CabinetClusterSpec};
    use tit_replay::platform::Platform;
    use tit_replay::titrace::{Action, Rank, Trace};

    /// Cabinets in [`showcase_platform`].
    pub const CABINETS: u32 = 16;
    /// Nodes per cabinet in [`showcase_platform`].
    pub const PER_CAB: u32 = 8;

    /// The incremental-sharing showcase platform: a 16x8 cabinet
    /// cluster. Intra-cabinet routes are `up -> down` and never touch
    /// the backbone, so intra-cabinet traffic decomposes into one
    /// sharing component per cabinet — incremental recomputation
    /// re-solves a single component where the full reference re-solves
    /// every live flow.
    pub fn showcase_platform() -> Platform {
        cabinet_cluster(&CabinetClusterSpec {
            name: "cc".into(),
            cabinets: CABINETS,
            nodes_per_cabinet: PER_CAB,
            host_speed: 1e9,
            cores: 1,
            cache_bytes: 1 << 20,
            link_bandwidth: 1.25e8,
            link_latency: 1e-5,
            cabinet_bandwidth: 1.25e9,
            cabinet_latency: 2e-6,
            backbone_bandwidth: 2.5e9,
            backbone_latency: 1e-6,
        })
    }

    /// A communication-bound halo-exchange trace for `ranks` processes
    /// placed one per node on [`showcase_platform`]: each iteration,
    /// every rank exchanges `bytes` with both ring neighbours *inside
    /// its own cabinet*, then computes briefly. All ranks communicate
    /// concurrently, so up to `2 * ranks` flows are live at once —
    /// split across `ranks / PER_CAB` disjoint sharing components.
    pub fn halo_exchange_trace(ranks: u32, iters: u32, bytes: u64) -> Trace {
        assert!(
            ranks.is_multiple_of(PER_CAB),
            "ranks must fill whole cabinets"
        );
        let mut trace = Trace::new(ranks);
        let neighbour = |r: u32, step: u32| {
            let cab = r / PER_CAB;
            cab * PER_CAB + (r % PER_CAB + step) % PER_CAB
        };
        for r in 0..ranks {
            let rank = Rank(r);
            let right = Rank(neighbour(r, 1));
            let left = Rank(neighbour(r, PER_CAB - 1));
            trace.push(rank, Action::Init);
            for _ in 0..iters {
                trace.push(rank, Action::Irecv { src: left, bytes });
                trace.push(rank, Action::Irecv { src: right, bytes });
                trace.push(rank, Action::Isend { dst: right, bytes });
                trace.push(rank, Action::Isend { dst: left, bytes });
                trace.push(rank, Action::WaitAll);
                trace.push(rank, Action::Compute { amount: 1e5 });
            }
            trace.push(rank, Action::Finalize);
        }
        trace
    }
}

/// Emits each cell's buffered log to stderr in grid order and unwraps
/// the records.
fn collect_cells(cells: Vec<(ExperimentRecord, String)>) -> Vec<ExperimentRecord> {
    cells
        .into_iter()
        .map(|(record, log)| {
            eprint!("{log}");
            record
        })
        .collect()
}

// ----------------------------------------------------------------------
// Experiment drivers
// ----------------------------------------------------------------------

/// Driver for Tables 1-2: original vs instrumented execution times, for
/// the legacy acquisition (TAU fine, `-O0`) and the modified one
/// (minimal, `-O3`).
pub fn overhead_table(
    experiment: &str,
    testbed: &Testbed,
    grid: &[(LuClass, u32)],
    opts: &Options,
) -> Vec<ExperimentRecord> {
    let cells = sweep::run(grid, |_, (class, procs)| {
        let lu = opts.instance(*class, *procs);
        let legacy = testbed
            .overhead_lu(&lu, Instrumentation::legacy_default(), CompilerOpt::O0)
            .unwrap_or_else(|e| panic!("{}: {e}", lu.label()));
        let modified = testbed
            .overhead_lu(&lu, Instrumentation::Minimal, CompilerOpt::O3)
            .unwrap_or_else(|e| panic!("{}: {e}", lu.label()));
        let record = ExperimentRecord::new(experiment, &testbed.platform.name, lu.label())
            .with("old_orig_s", legacy.original)
            .with("old_instr_s", legacy.instrumented)
            .with("old_overhead_pct", legacy.overhead_percent())
            .with("new_orig_s", modified.original)
            .with("new_instr_s", modified.instrumented)
            .with("new_overhead_pct", modified.overhead_percent());
        let log = format!(
            "  {}: old {:.2}s -> {:.2}s (+{:.1}%) | new {:.2}s -> {:.2}s (+{:.1}%)\n",
            lu.label(),
            legacy.original,
            legacy.instrumented,
            legacy.overhead_percent(),
            modified.original,
            modified.instrumented,
            modified.overhead_percent()
        );
        (record, log)
    });
    collect_cells(cells)
}

/// Driver for Figures 1/2/4/5: per-process distribution of the relative
/// difference of measured instruction counts between an instrumented
/// mode and the coarse reference.
pub fn counter_discrepancy_figure(
    experiment: &str,
    cluster: &str,
    grid: &[(LuClass, u32)],
    mode: Instrumentation,
    compiler: CompilerOpt,
    opts: &Options,
) -> Vec<ExperimentRecord> {
    let cells = sweep::run(grid, |_, (class, procs)| {
        let lu = opts.instance(*class, *procs);
        let coarse = mean_rank_counters(
            || lu.sources(),
            Instrumentation::Coarse,
            compiler,
            opts.seed,
            COUNTER_RUNS,
        );
        let instrumented = mean_rank_counters(
            || lu.sources(),
            mode,
            compiler,
            opts.seed.wrapping_add(0x5851F42D4C957F2D),
            COUNTER_RUNS,
        );
        let diffs: Vec<f64> = instrumented
            .iter()
            .zip(coarse.iter())
            .map(|(i, c)| (i - c) / c * 100.0)
            .collect();
        let s = Summary::of(&diffs).expect("non-empty rank set");
        let record = ExperimentRecord::new(experiment, cluster, lu.label())
            .with("min_pct", s.min)
            .with("q1_pct", s.q1)
            .with("median_pct", s.median)
            .with("q3_pct", s.q3)
            .with("max_pct", s.max)
            .with("mean_pct", s.mean);
        let log = format!("  {}: {}\n", lu.label(), s);
        (record, log)
    });
    collect_cells(cells)
}

/// Driver for Figures 3/6/7: relative error between emulated-real and
/// simulated execution times over the instance grid, under one pipeline.
pub fn accuracy_figure(
    experiment: &str,
    testbed: &Testbed,
    grid: &[(LuClass, u32)],
    pipeline: Pipeline,
    opts: &Options,
) -> Vec<ExperimentRecord> {
    // Calibration happens once, up front; only the per-instance
    // predictions fan out.
    let predictor = Predictor::new(testbed, pipeline, opts.seed).expect("calibration failed");
    let cells = sweep::run(grid, |_, (class, procs)| {
        let lu = opts.instance(*class, *procs);
        let p = predictor
            .predict(&lu, opts.seed.wrapping_add(u64::from(*procs)))
            .unwrap_or_else(|e| panic!("{}: {e}", lu.label()));
        let record = ExperimentRecord::new(experiment, &testbed.platform.name, lu.label())
            .with("real_s", p.real_seconds)
            .with("simulated_s", p.simulated_seconds)
            .with("rel_err_pct", p.relative_error_percent())
            .with("rate_ips", p.calibrated_rate);
        let log = format!(
            "  {}: real {:.2}s sim {:.2}s err {:+.1}%\n",
            lu.label(),
            p.real_seconds,
            p.simulated_seconds,
            p.relative_error_percent()
        );
        (record, log)
    });
    collect_cells(cells)
}

/// Replays one already-acquired trace and returns the error against a
/// given real time (used by the crossover/what-if examples).
pub fn replay_error(
    platform: &Platform,
    trace: &Arc<Trace>,
    config: &ReplayConfig,
    real_seconds: f64,
) -> f64 {
    let sim = replay(platform, trace, config).expect("replay failed");
    (sim.time - real_seconds) / real_seconds * 100.0
}
