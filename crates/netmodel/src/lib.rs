//! Flow-level network models.
//!
//! A network transfer is a kernel activity whose work is the message size
//! in bytes and whose rate is the bandwidth currently allotted to the
//! flow. This crate maintains that allotment as flows come and go:
//!
//! * [`SharingPolicy::Bottleneck`] — each flow receives
//!   `min_over_route(capacity / flows_on_link)`, capped by its own
//!   protocol ceiling. This is the fast model used for large simulations;
//!   it guarantees no link is oversubscribed but does not redistribute
//!   head-room (same family of approximation as SimGrid's fast default
//!   without cross-traffic).
//! * [`SharingPolicy::MaxMin`] — exact progressive-filling max-min
//!   fairness, recomputed incrementally: an arrival or departure
//!   re-solves only the connected component of the flow/link graph it
//!   touches, and only rate changes reach the kernel.
//! * [`SharingPolicy::MaxMinFull`] — the same solver run over every
//!   component on every change. Reference for the incremental path; the
//!   two are bit-identical in both rates and kernel event sequence, which
//!   the tests enforce.
//!
//! For collective traffic there is additionally a **deferred** open/close
//! path ([`FlowNet::open_deferred`] / [`FlowNet::close_deferred`]): the
//! per-flow tables update immediately, but the re-solve is batched to the
//! end of the current instant ([`FlowNet::flush`], driven by a zero-delay
//! [`FLUSH_KEY`] timer). Same-instant rate changes cannot affect any
//! completion time, and the flush re-solves each affected component on
//! the instant's *final* graph — the same state the per-op sequence ends
//! in — so allotments stay bit-identical while a P-flow collective phase
//! costs O(1) solves instead of O(P). When a flushed batch turns out to
//! be uniform and link-isolated, it is recorded as ONE aggregate entity
//! ([`sharing::AggregateLedger`]), which is what the live-entity counters
//! report: O(1) entities per collective phase instead of O(P).
//!
//! [`piecewise::PiecewiseFactors`] implements SMPI's piece-wise linear
//! correction of nominal latency/bandwidth by message size — the paper's
//! "original piece-wise linear model to take into account the specifics of
//! the cluster interconnect".

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod piecewise;
pub mod sharing;

pub use piecewise::PiecewiseFactors;
pub use sharing::SharingPolicy;

use platform::{LinkId, Platform};
use simkernel::{ActivityId, ActorId, Duration, Kernel};

const NO_FREE: u32 = u32::MAX;

/// Timer key of the deferred-sharing flush tick. Chosen just below the
/// engines' own sentinel keys (`u64::MAX`, `u64::MAX - 1`) and far above
/// any packed slab id, so transports can recognise it before unpacking.
/// A transport that installed itself via [`FlowNet::set_flush_actor`]
/// must call [`FlowNet::flush`] when a timer with this key fires.
pub const FLUSH_KEY: u64 = u64::MAX - 2;

/// Handle to an open flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
struct Flow {
    route: Vec<LinkId>,
    activity: ActivityId,
    /// Per-flow rate ceiling (protocol-corrected nominal bandwidth).
    cap: f64,
    /// Last allotted rate (maintained by the max-min policies only; the
    /// bottleneck policy derives rates from link occupancy on demand).
    rate: f64,
    /// Monotonic open-order stamp. Slab indices are recycled through the
    /// free list, so index order says nothing about which flow opened
    /// first; rate pushes to the kernel are ordered by this stamp
    /// instead, keeping the kernel's event-insertion order a function of
    /// the flows' own history (open order) rather than of slab reuse.
    seq: u64,
    generation: u32,
    live: bool,
    next_free: u32,
}

#[derive(Debug, Clone, Copy)]
struct LinkState {
    capacity: f64,
    nflows: u32,
}

/// Borrowed view of the network tables handed to the max-min solver.
struct NetView<'a> {
    links: &'a [LinkState],
    flows: &'a [Flow],
    per_link: &'a [Vec<u32>],
}

impl sharing::SharingProblem for NetView<'_> {
    fn capacity(&self, link: u32) -> f64 {
        self.links[link as usize].capacity
    }

    fn live_flows_on(&self, link: u32) -> u32 {
        self.per_link[link as usize].len() as u32
    }

    fn route(&self, flow: u32) -> &[LinkId] {
        &self.flows[flow as usize].route
    }

    fn ceiling(&self, flow: u32) -> f64 {
        self.flows[flow as usize].cap
    }
}

/// Always-on counters of the sharing solver's administrative work.
/// Plain integer increments on the (cold) open/close/re-solve paths —
/// they cannot perturb simulated times and need no feature gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Flows opened.
    pub flows_opened: u64,
    /// Flows closed.
    pub flows_closed: u64,
    /// Sharing re-solves: bottleneck neighbor recomputations or max-min
    /// component solves.
    pub resolves: u64,
    /// Rate changes pushed to the kernel.
    pub rate_updates: u64,
    /// High-water mark of concurrently live flows.
    pub live_flow_hwm: u64,
    /// High-water mark of live *entities* — an aggregate counts once —
    /// sampled at settle points (after per-op re-solves and batch
    /// flushes). Without aggregation this equals the flow mark.
    pub live_entity_hwm: u64,
    /// Aggregate entities formed from uniform deferred batches.
    pub agg_formed: u64,
    /// Member flows covered by the formed aggregates.
    pub agg_members: u64,
    /// Aggregates dissolved because a re-solve touched a member (outside
    /// traffic arrived); dissolution at member close — the phase ending —
    /// is not counted.
    pub agg_splits: u64,
    /// Deferred batches flushed.
    pub flush_batches: u64,
}

/// The live network: link occupancies and flow allotments.
#[derive(Debug)]
pub struct FlowNet {
    links: Vec<LinkState>,
    flows: Vec<Flow>,
    free_head: u32,
    /// Flows crossing each link.
    per_link: Vec<Vec<u32>>,
    policy: SharingPolicy,
    scratch: Vec<u32>,
    live_count: usize,
    /// Progressive-filling solver with reusable scratch (max-min policies).
    solver: sharing::MaxMinSolver,
    /// Flows of the component currently being solved (sorted before fill).
    comp_flows: Vec<u32>,
    /// Links of the component currently being solved.
    comp_links: Vec<u32>,
    /// Component-membership stamps; a flow/link is in the current
    /// component iff its stamp equals `epoch` (no per-reshare clearing).
    flow_mark: Vec<u64>,
    link_mark: Vec<u64>,
    epoch: u64,
    /// Flows whose freshly solved rate differs from their stored rate;
    /// applied to the kernel in flow-open order so the event sequence is
    /// independent of component discovery order and slab reuse.
    pending: Vec<u32>,
    /// Next value of [`Flow::seq`].
    next_seq: u64,
    stats: NetStats,
    /// Partition-safety guard: when set, opening a flow over a link
    /// outside this mask panics. `None` (the default) allows every link.
    allowed: Option<Vec<bool>>,
    /// Deferred-batching sink: when set, the first deferred op of an
    /// instant schedules a zero-delay [`FLUSH_KEY`] timer to this actor,
    /// whose owner then calls [`FlowNet::flush`].
    flush_actor: Option<ActorId>,
    /// Whether a flush timer is already pending for the current instant.
    flush_scheduled: bool,
    /// Flows opened deferred since the last flush.
    batch_opened: Vec<u32>,
    /// Re-solve seeds from deferred closes: the survivors that shared a
    /// link with each departing flow at its close (filtered for liveness
    /// at flush — a seed may itself close later in the same batch).
    batch_seeds: Vec<u32>,
    /// Slab slots freed by deferred closes, returned to the free list at
    /// flush — never mid-batch, so batch indices stay unambiguous.
    batch_freed: Vec<u32>,
    /// Aggregate-entity bookkeeping (see [`sharing::AggregateLedger`]).
    ledger: sharing::AggregateLedger,
}

impl FlowNet {
    /// Builds the network state from a platform's links.
    pub fn new(platform: &Platform, policy: SharingPolicy) -> FlowNet {
        let links = platform
            .links()
            .iter()
            .map(|l| LinkState {
                capacity: l.bandwidth,
                nflows: 0,
            })
            .collect::<Vec<_>>();
        let per_link = links.iter().map(|_| Vec::new()).collect();
        let nlinks = links.len();
        FlowNet {
            links,
            flows: Vec::new(),
            free_head: NO_FREE,
            per_link,
            policy,
            scratch: Vec::new(),
            live_count: 0,
            solver: sharing::MaxMinSolver::new(),
            comp_flows: Vec::new(),
            comp_links: Vec::new(),
            flow_mark: Vec::new(),
            link_mark: vec![0; nlinks],
            epoch: 0,
            pending: Vec::new(),
            next_seq: 0,
            stats: NetStats::default(),
            allowed: None,
            flush_actor: None,
            flush_scheduled: false,
            batch_opened: Vec::new(),
            batch_seeds: Vec::new(),
            batch_freed: Vec::new(),
            ledger: sharing::AggregateLedger::new(),
        }
    }

    /// Restricts this network to `links`: any later [`FlowNet::open`]
    /// whose route leaves the set panics. The parallel replay engine
    /// installs each partition's link set here, so a partitioning bug
    /// (two partitions sharing a link, which would let their bandwidth
    /// interact) fails loudly and deterministically instead of silently
    /// diverging from the sequential replay.
    pub fn restrict_links(&mut self, links: &[LinkId]) {
        let mut mask = vec![false; self.links.len()];
        for l in links {
            mask[l.as_usize()] = true;
        }
        self.allowed = Some(mask);
    }

    /// Counters of the sharing work performed so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The sharing policy in effect.
    pub fn policy(&self) -> SharingPolicy {
        self.policy
    }

    /// Number of currently open flows.
    pub fn live_flows(&self) -> usize {
        self.live_count
    }

    /// Opens a flow of `bytes` over `route`, with a per-flow bandwidth
    /// ceiling `cap` (bytes/s; pass the protocol-corrected nominal
    /// bandwidth). Returns the flow handle; the underlying activity
    /// completes when the last byte is transferred.
    ///
    /// # Panics
    /// Panics if `route` is empty — loopback transfers never reach the
    /// network layer.
    pub fn open(&mut self, kernel: &mut Kernel, route: &[LinkId], bytes: f64, cap: f64) -> FlowId {
        let id = self.register(kernel, route, bytes, cap);
        self.reshare_after_change(kernel, id.index);
        self.note_entity_hwm();
        id
    }

    /// Opens a flow like [`FlowNet::open`] but defers the re-solve to the
    /// end of the current instant: the flow starts at rate 0 and receives
    /// its allotment at [`FlowNet::flush`]. Same-instant rate changes
    /// cannot move any completion time, and the flush solves the
    /// instant's final graph — the state the per-op sequence ends in — so
    /// the allotments are bit-identical to opening eagerly. Collective
    /// phases use this to pay O(1) solves for O(P) flows.
    ///
    /// A flow opened deferred must be closed with
    /// [`FlowNet::close_deferred`] (or after a flush has run), never with
    /// a same-instant [`FlowNet::close`], which would recycle its slab
    /// while the batch still references it.
    pub fn open_deferred(
        &mut self,
        kernel: &mut Kernel,
        route: &[LinkId],
        bytes: f64,
        cap: f64,
    ) -> FlowId {
        let id = self.register(kernel, route, bytes, cap);
        self.batch_opened.push(id.index);
        self.schedule_flush(kernel);
        id
    }

    /// Registers a flow in the slab and per-link tables without solving.
    fn register(&mut self, kernel: &mut Kernel, route: &[LinkId], bytes: f64, cap: f64) -> FlowId {
        assert!(!route.is_empty(), "cannot open a flow over an empty route");
        assert!(cap > 0.0 && cap.is_finite(), "invalid flow cap: {cap}");
        if let Some(mask) = &self.allowed {
            for l in route {
                assert!(
                    mask[l.as_usize()],
                    "flow route uses link {} outside the partition's allowed set",
                    l.as_usize()
                );
            }
        }
        let activity = kernel.start_activity(bytes, 0.0);
        let index = if self.free_head != NO_FREE {
            let index = self.free_head;
            let f = &mut self.flows[index as usize];
            self.free_head = f.next_free;
            f.route.clear();
            f.route.extend_from_slice(route);
            f.activity = activity;
            f.cap = cap;
            f.rate = 0.0;
            f.seq = self.next_seq;
            f.generation = f.generation.wrapping_add(1);
            f.live = true;
            f.next_free = NO_FREE;
            index
        } else {
            let index = u32::try_from(self.flows.len()).expect("too many flows");
            self.flows.push(Flow {
                route: route.to_vec(),
                activity,
                cap,
                rate: 0.0,
                seq: self.next_seq,
                generation: 0,
                live: true,
                next_free: NO_FREE,
            });
            index
        };
        for l in route {
            self.links[l.as_usize()].nflows += 1;
            self.per_link[l.as_usize()].push(index);
        }
        self.next_seq += 1;
        self.live_count += 1;
        self.stats.flows_opened += 1;
        self.ledger.ensure_flows(self.flows.len());
        if self.live_count as u64 > self.stats.live_flow_hwm {
            self.stats.live_flow_hwm = self.live_count as u64;
        }
        FlowId {
            index,
            generation: self.flows[index as usize].generation,
        }
    }

    /// The kernel activity carrying this flow's progress (subscribe to it
    /// to learn of completion).
    pub fn activity(&self, id: FlowId) -> ActivityId {
        let f = &self.flows[id.index as usize];
        assert_eq!(f.generation, id.generation, "stale FlowId");
        f.activity
    }

    /// Closes a flow (after its activity completed, or to abort it) and
    /// redistributes bandwidth. Closing an already-closed flow is an
    /// error.
    pub fn close(&mut self, kernel: &mut Kernel, id: FlowId) {
        self.unregister(kernel, id);
        let f = &mut self.flows[id.index as usize];
        f.next_free = self.free_head;
        self.free_head = id.index;
        self.reshare_after_close(kernel, &id);
        self.note_entity_hwm();
    }

    /// Closes a flow like [`FlowNet::close`] but defers the re-solve to
    /// [`FlowNet::flush`]: the flow leaves the tables immediately (so any
    /// same-instant solve already sees the departure), its surviving
    /// neighbors are recorded as re-solve seeds, and its slab slot is
    /// quarantined until the flush. A whole collective phase retiring at
    /// one instant thus costs O(1) solves instead of O(P).
    pub fn close_deferred(&mut self, kernel: &mut Kernel, id: FlowId) {
        self.unregister(kernel, id);
        for li in 0..self.flows[id.index as usize].route.len() {
            let lu = self.flows[id.index as usize].route[li].as_usize();
            self.batch_seeds.extend(self.per_link[lu].iter().copied());
        }
        self.batch_freed.push(id.index);
        self.schedule_flush(kernel);
    }

    /// Removes a flow from the live tables without recycling its slab or
    /// solving. Its aggregate, if any, dissolves — the phase is ending —
    /// which is not counted as a split.
    fn unregister(&mut self, kernel: &mut Kernel, id: FlowId) {
        let f = &mut self.flows[id.index as usize];
        assert_eq!(f.generation, id.generation, "stale FlowId");
        assert!(f.live, "double close of flow {id:?}");
        f.live = false;
        kernel.cancel(f.activity); // no-op when already completed
        self.ledger.dissolve_member(id.index);
        let route = std::mem::take(&mut self.flows[id.index as usize].route);
        for l in &route {
            let ls = &mut self.links[l.as_usize()];
            ls.nflows -= 1;
            let v = &mut self.per_link[l.as_usize()];
            let pos = v
                .iter()
                .position(|x| *x == id.index)
                .expect("flow missing from link index");
            v.swap_remove(pos);
        }
        self.live_count -= 1;
        self.stats.flows_closed += 1;
        let f = &mut self.flows[id.index as usize];
        f.route = route; // keep the allocation for reuse
    }

    /// Installs the actor that owns the deferred-flush timer. The engines
    /// point this at their transport daemon, which recognises
    /// [`FLUSH_KEY`] and calls [`FlowNet::flush`]. Without a sink,
    /// deferred ops still batch but the owner must call `flush` itself
    /// (unit tests do exactly that).
    pub fn set_flush_actor(&mut self, actor: ActorId) {
        self.flush_actor = Some(actor);
    }

    /// Live entities: live flows, with each aggregate counted once.
    pub fn live_entities(&self) -> usize {
        self.live_count - self.ledger.surplus()
    }

    fn schedule_flush(&mut self, kernel: &mut Kernel) {
        if self.flush_scheduled {
            return;
        }
        if let Some(actor) = self.flush_actor {
            kernel.set_timer(actor, Duration::ZERO, FLUSH_KEY);
            self.flush_scheduled = true;
        }
    }

    /// Applies every deferred open/close recorded since the last flush:
    /// one batched re-solve over the affected components of the
    /// instant's final graph, rate pushes in flow-open order, then — if
    /// the opened batch is uniform (bitwise-equal ceilings and solved
    /// rates) and link-isolated from all other traffic — the batch is
    /// recorded as one aggregate entity. Quarantined slab slots return to
    /// the free list last, in close order, matching the sequential
    /// path's free-list state at the end of the instant.
    pub fn flush(&mut self, kernel: &mut Kernel) {
        self.flush_scheduled = false;
        if self.batch_opened.is_empty()
            && self.batch_seeds.is_empty()
            && self.batch_freed.is_empty()
        {
            return;
        }
        self.stats.flush_batches += 1;
        match self.policy {
            SharingPolicy::Bottleneck => self.flush_bottleneck(kernel),
            SharingPolicy::MaxMin => self.flush_maxmin(kernel),
            SharingPolicy::MaxMinFull => self.reshare_maxmin_full(kernel),
        }
        self.try_form_aggregate();
        for i in 0..self.batch_freed.len() {
            let idx = self.batch_freed[i];
            self.flows[idx as usize].next_free = self.free_head;
            self.free_head = idx;
        }
        self.batch_freed.clear();
        self.batch_seeds.clear();
        self.note_entity_hwm();
    }

    /// Batched bottleneck re-solve: one recomputation over every flow
    /// sharing a link with the batch's opens plus the recorded close
    /// survivors — the exact set whose link occupancies changed. The
    /// bottleneck rate is a pure function of the final occupancies, so
    /// pushing it once per affected flow reproduces the sequential
    /// sequence's end-of-instant rates bitwise.
    fn flush_bottleneck(&mut self, kernel: &mut Kernel) {
        self.scratch.clear();
        for i in 0..self.batch_opened.len() {
            let f = self.batch_opened[i] as usize;
            if !self.flows[f].live {
                continue;
            }
            for li in 0..self.flows[f].route.len() {
                let lu = self.flows[f].route[li].as_usize();
                self.scratch.extend(self.per_link[lu].iter().copied());
            }
        }
        self.scratch.extend(self.batch_seeds.iter().copied());
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.retain(|&f| self.flows[f as usize].live);
        scratch.sort_unstable();
        scratch.dedup();
        for &f in &scratch {
            if self.ledger.dissolve_member(f) {
                self.stats.agg_splits += 1;
            }
        }
        self.stats.resolves += 1;
        self.stats.rate_updates += scratch.len() as u64;
        // Push in open order, not slab-index order: see Flow::seq.
        scratch.sort_unstable_by_key(|&i| self.flows[i as usize].seq);
        for idx in &scratch {
            let rate = self.bottleneck_rate(*idx);
            kernel.set_rate(self.flows[*idx as usize].activity, rate);
        }
        scratch.clear();
        self.scratch = scratch;
    }

    /// Batched max-min re-solve: every component reachable from a
    /// batch-opened flow or a close survivor is solved once against the
    /// final graph. A whole symmetric collective phase lands in O(1)
    /// components regardless of P.
    fn flush_maxmin(&mut self, kernel: &mut Kernel) {
        self.ensure_marks();
        let start_epoch = self.epoch;
        let mut seeds = std::mem::take(&mut self.scratch);
        seeds.clear();
        seeds.extend(self.batch_opened.iter().copied());
        seeds.extend(self.batch_seeds.iter().copied());
        seeds.retain(|&f| self.flows[f as usize].live);
        seeds.sort_unstable();
        seeds.dedup();
        for &seed in &seeds {
            if self.flow_mark[seed as usize] <= start_epoch {
                if self.ledger.dissolve_member(seed) {
                    self.stats.agg_splits += 1;
                }
                self.epoch += 1;
                self.comp_flows.clear();
                self.comp_links.clear();
                self.flow_mark[seed as usize] = self.epoch;
                self.comp_flows.push(seed);
                self.expand_component();
                self.solve_component();
            }
        }
        seeds.clear();
        self.scratch = seeds;
        self.flush_rates(kernel);
    }

    /// Records the just-flushed opens as one aggregate entity if every
    /// still-live member carries the same ceiling, landed on the same
    /// solved rate (bitwise), and no outside flow shares any member
    /// link. Those are exactly the conditions under which the batch will
    /// keep behaving as one entity until something touches it — at which
    /// point it dissolves (see [`NetStats::agg_splits`]).
    fn try_form_aggregate(&mut self) {
        let mut members = std::mem::take(&mut self.batch_opened);
        members.retain(|&f| self.flows[f as usize].live);
        if self.certify_uniform_batch(&members) {
            self.ledger.form(&members);
            self.stats.agg_formed += 1;
            self.stats.agg_members += members.len() as u64;
        }
        members.clear();
        self.batch_opened = members;
    }

    fn certify_uniform_batch(&mut self, members: &[u32]) -> bool {
        if members.len() < 2 {
            return false;
        }
        let cap0 = self.flows[members[0] as usize].cap.to_bits();
        let rate0 = self.effective_rate(members[0]).to_bits();
        for &m in members {
            if self.flows[m as usize].cap.to_bits() != cap0 {
                return false;
            }
            if self.effective_rate(m).to_bits() != rate0 {
                return false;
            }
        }
        // Link isolation: every flow on every member link is a member.
        self.ensure_marks();
        self.epoch += 1;
        for &m in members {
            self.flow_mark[m as usize] = self.epoch;
        }
        for &m in members {
            for l in &self.flows[m as usize].route {
                for &g in &self.per_link[l.as_usize()] {
                    if self.flow_mark[g as usize] != self.epoch {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The rate a live flow currently receives under the active policy.
    fn effective_rate(&self, flow: u32) -> f64 {
        match self.policy {
            SharingPolicy::Bottleneck => self.bottleneck_rate(flow),
            SharingPolicy::MaxMin | SharingPolicy::MaxMinFull => self.flows[flow as usize].rate,
        }
    }

    fn note_entity_hwm(&mut self) {
        let entities = (self.live_count - self.ledger.surplus()) as u64;
        if entities > self.stats.live_entity_hwm {
            self.stats.live_entity_hwm = entities;
        }
    }

    fn reshare_after_change(&mut self, kernel: &mut Kernel, new_flow: u32) {
        match self.policy {
            SharingPolicy::Bottleneck => {
                // Affected flows: every flow sharing a link with the new one.
                self.collect_neighbors(new_flow);
                for i in 0..self.scratch.len() {
                    let f = self.scratch[i];
                    if self.ledger.dissolve_member(f) {
                        self.stats.agg_splits += 1;
                    }
                }
                self.stats.resolves += 1;
                self.stats.rate_updates += self.scratch.len() as u64;
                let mut scratch = std::mem::take(&mut self.scratch);
                // Push in open order, not slab-index order: see Flow::seq.
                scratch.sort_unstable_by_key(|&i| self.flows[i as usize].seq);
                for idx in &scratch {
                    let rate = self.bottleneck_rate(*idx);
                    kernel.set_rate(self.flows[*idx as usize].activity, rate);
                }
                scratch.clear();
                self.scratch = scratch;
            }
            SharingPolicy::MaxMin => self.reshare_maxmin_open(kernel, new_flow),
            SharingPolicy::MaxMinFull => self.reshare_maxmin_full(kernel),
        }
    }

    fn reshare_after_close(&mut self, kernel: &mut Kernel, closed: &FlowId) {
        match self.policy {
            SharingPolicy::Bottleneck => {
                // The closed flow's former route links gained head-room.
                // Its neighbors are exactly the remaining flows on those
                // links.
                let route = self.flows[closed.index as usize].route.clone();
                self.scratch.clear();
                for l in &route {
                    self.scratch.extend(self.per_link[l.as_usize()].iter());
                }
                self.scratch.sort_unstable();
                self.scratch.dedup();
                for i in 0..self.scratch.len() {
                    let f = self.scratch[i];
                    if self.ledger.dissolve_member(f) {
                        self.stats.agg_splits += 1;
                    }
                }
                self.stats.resolves += 1;
                self.stats.rate_updates += self.scratch.len() as u64;
                let mut scratch = std::mem::take(&mut self.scratch);
                // Push in open order, not slab-index order: see Flow::seq.
                scratch.sort_unstable_by_key(|&i| self.flows[i as usize].seq);
                for idx in &scratch {
                    let rate = self.bottleneck_rate(*idx);
                    kernel.set_rate(self.flows[*idx as usize].activity, rate);
                }
                scratch.clear();
                self.scratch = scratch;
            }
            SharingPolicy::MaxMin => self.reshare_maxmin_close(kernel, closed.index),
            SharingPolicy::MaxMinFull => self.reshare_maxmin_full(kernel),
        }
    }

    fn collect_neighbors(&mut self, flow: u32) {
        self.scratch.clear();
        for l in &self.flows[flow as usize].route {
            self.scratch.extend(self.per_link[l.as_usize()].iter());
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
    }

    fn bottleneck_rate(&self, flow: u32) -> f64 {
        let f = &self.flows[flow as usize];
        let mut rate = f.cap;
        for l in &f.route {
            let ls = &self.links[l.as_usize()];
            debug_assert!(ls.nflows > 0);
            rate = rate.min(ls.capacity / ls.nflows as f64);
        }
        rate
    }

    /// A flow arrived: it may have merged previously independent
    /// components, but the result is one connected component containing
    /// the new flow — solve exactly that and leave the rest untouched.
    fn reshare_maxmin_open(&mut self, kernel: &mut Kernel, new_flow: u32) {
        self.ensure_marks();
        self.epoch += 1;
        self.comp_flows.clear();
        self.comp_links.clear();
        self.flow_mark[new_flow as usize] = self.epoch;
        self.comp_flows.push(new_flow);
        self.expand_component();
        self.solve_component();
        self.flush_rates(kernel);
    }

    /// A flow departed: its former component may have split. Each
    /// survivor on the departed route seeds a (possibly shared) component
    /// of the *current* graph; solving per component keeps every solve
    /// bitwise equal to what a full recompute would produce.
    fn reshare_maxmin_close(&mut self, kernel: &mut Kernel, closed_index: u32) {
        self.ensure_marks();
        let start_epoch = self.epoch;
        let mut seeds = std::mem::take(&mut self.scratch);
        seeds.clear();
        for li in 0..self.flows[closed_index as usize].route.len() {
            let lu = self.flows[closed_index as usize].route[li].as_usize();
            seeds.extend(self.per_link[lu].iter().copied());
        }
        seeds.sort_unstable();
        seeds.dedup();
        for &seed in &seeds {
            if self.flow_mark[seed as usize] <= start_epoch {
                if self.ledger.dissolve_member(seed) {
                    self.stats.agg_splits += 1;
                }
                self.epoch += 1;
                self.comp_flows.clear();
                self.comp_links.clear();
                self.flow_mark[seed as usize] = self.epoch;
                self.comp_flows.push(seed);
                self.expand_component();
                self.solve_component();
            }
        }
        seeds.clear();
        self.scratch = seeds;
        self.flush_rates(kernel);
    }

    /// Reference path: re-solve every component of the live flow/link
    /// graph. Components whose membership did not change re-derive
    /// bitwise the rates they already hold and are skipped at
    /// [`FlowNet::flush_rates`], so the kernel sees exactly the calls the
    /// incremental paths make.
    fn reshare_maxmin_full(&mut self, kernel: &mut Kernel) {
        self.ensure_marks();
        let start_epoch = self.epoch;
        for idx in 0..self.flows.len() {
            if self.flows[idx].live && self.flow_mark[idx] <= start_epoch {
                if self.ledger.dissolve_member(idx as u32) {
                    self.stats.agg_splits += 1;
                }
                self.epoch += 1;
                self.comp_flows.clear();
                self.comp_links.clear();
                self.flow_mark[idx] = self.epoch;
                self.comp_flows.push(idx as u32);
                self.expand_component();
                self.solve_component();
            }
        }
        self.flush_rates(kernel);
    }

    fn ensure_marks(&mut self) {
        if self.flow_mark.len() < self.flows.len() {
            self.flow_mark.resize(self.flows.len(), 0);
        }
    }

    /// Breadth-first closure of `comp_flows` over shared links: marks and
    /// collects every flow transitively sharing a link with the seeds.
    fn expand_component(&mut self) {
        let mut head = 0;
        while head < self.comp_flows.len() {
            let f = self.comp_flows[head] as usize;
            head += 1;
            for l in &self.flows[f].route {
                let lu = l.as_usize();
                if self.link_mark[lu] != self.epoch {
                    self.link_mark[lu] = self.epoch;
                    self.comp_links.push(lu as u32);
                    for &g in &self.per_link[lu] {
                        if self.flow_mark[g as usize] != self.epoch {
                            self.flow_mark[g as usize] = self.epoch;
                            if self.ledger.dissolve_member(g) {
                                self.stats.agg_splits += 1;
                            }
                            self.comp_flows.push(g);
                        }
                    }
                }
            }
        }
    }

    /// Runs the solver on the discovered component and queues flows whose
    /// allotment actually changed.
    fn solve_component(&mut self) {
        if self.comp_flows.is_empty() {
            return;
        }
        self.stats.resolves += 1;
        self.comp_flows.sort_unstable();
        let view = NetView {
            links: &self.links,
            flows: &self.flows,
            per_link: &self.per_link,
        };
        self.solver.fill(&view, &self.comp_links, &self.comp_flows);
        for i in 0..self.comp_flows.len() {
            let f = self.comp_flows[i];
            let rate = self.solver.rate(f);
            if rate.to_bits() != self.flows[f as usize].rate.to_bits() {
                self.pending.push(f);
            }
        }
    }

    /// Applies queued rate changes in flow-open order, so the event
    /// sequence the kernel records depends neither on which order
    /// components were discovered in nor on slab-index recycling (see
    /// [`Flow::seq`]).
    fn flush_rates(&mut self, kernel: &mut Kernel) {
        self.stats.rate_updates += self.pending.len() as u64;
        let flows = &self.flows;
        self.pending
            .sort_unstable_by_key(|&i| flows[i as usize].seq);
        for i in 0..self.pending.len() {
            let f = self.pending[i] as usize;
            let rate = self.solver.rate(self.pending[i]);
            self.flows[f].rate = rate;
            kernel.set_rate(self.flows[f].activity, rate);
        }
        self.pending.clear();
    }

    /// The rate each live flow currently receives (diagnostics/tests).
    pub fn current_rates(&self) -> Vec<(FlowId, f64)> {
        let mut out = Vec::new();
        for (idx, f) in self.flows.iter().enumerate() {
            if f.live {
                let id = FlowId {
                    index: idx as u32,
                    generation: f.generation,
                };
                let rate = match self.policy {
                    SharingPolicy::Bottleneck => self.bottleneck_rate(idx as u32),
                    // The max-min policies maintain the allotment.
                    SharingPolicy::MaxMin | SharingPolicy::MaxMinFull => f.rate,
                };
                out.push((id, rate));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::topology::{flat_cluster, FlatClusterSpec};
    use platform::HostId;

    fn net(policy: SharingPolicy) -> (Platform, FlowNet, Kernel) {
        let p = flat_cluster(&FlatClusterSpec {
            name: "t".into(),
            nodes: 4,
            host_speed: 1e9,
            cores: 1,
            cache_bytes: 1 << 20,
            link_bandwidth: 100.0,
            link_latency: 0.0,
            backbone_bandwidth: 150.0,
            backbone_latency: 0.0,
        });
        let f = FlowNet::new(&p, policy);
        (p, f, Kernel::new())
    }

    fn route(p: &Platform, s: u32, d: u32) -> Vec<LinkId> {
        let mut r = Vec::new();
        p.route(HostId(s), HostId(d), &mut r);
        r
    }

    #[test]
    fn single_flow_gets_bottleneck_bandwidth() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let r = route(&p, 0, 1);
        let f = net.open(&mut k, &r, 1000.0, 1e9);
        let rates = net.current_rates();
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].0, f);
        assert_eq!(rates[0].1, 100.0); // NIC limits, not the 150 backbone
    }

    #[test]
    fn restricted_net_accepts_allowed_routes() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let r = route(&p, 0, 1);
        net.restrict_links(&r);
        let _f = net.open(&mut k, &r, 1000.0, 1e9);
        assert_eq!(net.live_flows(), 1);
    }

    #[test]
    #[should_panic(expected = "outside the partition's allowed set")]
    fn restricted_net_rejects_foreign_routes() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        // Allow only 0->1's links; a 2->3 flow crosses other NICs.
        net.restrict_links(&route(&p, 0, 1));
        net.open(&mut k, &route(&p, 2, 3), 1000.0, 1e9);
    }

    #[test]
    fn cap_limits_flow_rate() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let r = route(&p, 0, 1);
        let _f = net.open(&mut k, &r, 1000.0, 42.0);
        assert_eq!(net.current_rates()[0].1, 42.0);
    }

    #[test]
    fn backbone_contention_shares_fairly() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        // Two flows from different sources to different destinations: they
        // only share the 150-capacity backbone => 75 each.
        let f1 = net.open(&mut k, &route(&p, 0, 1), 1e6, 1e9);
        let f2 = net.open(&mut k, &route(&p, 2, 3), 1e6, 1e9);
        let rates = net.current_rates();
        assert_eq!(rates.len(), 2);
        for (id, rate) in rates {
            assert!(id == f1 || id == f2);
            assert_eq!(rate, 75.0);
        }
    }

    #[test]
    fn stats_count_opens_closes_and_resolves() {
        for policy in [
            SharingPolicy::Bottleneck,
            SharingPolicy::MaxMin,
            SharingPolicy::MaxMinFull,
        ] {
            let (p, mut net, mut k) = net(policy);
            let f1 = net.open(&mut k, &route(&p, 0, 1), 1e6, 1e9);
            let f2 = net.open(&mut k, &route(&p, 2, 3), 1e6, 1e9);
            net.close(&mut k, f1);
            net.close(&mut k, f2);
            let s = net.stats();
            assert_eq!(s.flows_opened, 2, "{policy:?}");
            assert_eq!(s.flows_closed, 2, "{policy:?}");
            assert!(s.resolves >= 3, "{policy:?}: {s:?}");
            assert!(s.rate_updates >= 2, "{policy:?}: {s:?}");
        }
    }

    #[test]
    fn closing_a_flow_restores_bandwidth() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let f1 = net.open(&mut k, &route(&p, 0, 1), 1e6, 1e9);
        let f2 = net.open(&mut k, &route(&p, 2, 3), 1e6, 1e9);
        net.close(&mut k, f1);
        let rates = net.current_rates();
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].0, f2);
        assert_eq!(rates[0].1, 100.0);
        assert_eq!(net.live_flows(), 1);
    }

    #[test]
    fn flow_completion_time_under_contention() {
        // Two flows on the same NIC uplink (50 each), one finishes, the
        // survivor speeds up to 100.
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let r1 = route(&p, 0, 1);
        let r2 = route(&p, 0, 2);
        let f1 = net.open(&mut k, &r1, 100.0, 1e9); // shares uplink of host 0
        let f2 = net.open(&mut k, &r2, 1000.0, 1e9);
        let a1 = net.activity(f1);
        let a2 = net.activity(f2);
        k.subscribe(a1, simkernel::ActorId(0));
        k.subscribe(a2, simkernel::ActorId(1));
        // f1: 100 bytes at 50 B/s => done at t=2. f2 then has 1000-100=900
        // left at 100 B/s => done at 2 + 9 = 11.
        let (actor, _) = k.next_wake().unwrap();
        assert_eq!(actor, simkernel::ActorId(0));
        assert_eq!(k.now().as_secs(), 2.0);
        net.close(&mut k, f1);
        let (actor, _) = k.next_wake().unwrap();
        assert_eq!(actor, simkernel::ActorId(1));
        assert!((k.now().as_secs() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn maxmin_redistributes_headroom() {
        let (p, mut net, mut k) = net(SharingPolicy::MaxMin);
        // f1 capped at 20 on the shared backbone; f2 should receive the
        // rest of its NIC capacity (100), not the naive 75 share.
        let _f1 = net.open(&mut k, &route(&p, 0, 1), 1e6, 20.0);
        let f2 = net.open(&mut k, &route(&p, 2, 3), 1e6, 1e9);
        let rates = net.current_rates();
        let r2 = rates.iter().find(|(id, _)| *id == f2).unwrap().1;
        assert_eq!(r2, 100.0);
    }

    #[test]
    #[should_panic(expected = "empty route")]
    fn empty_route_rejected() {
        let (_p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let _ = net.open(&mut k, &[], 10.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "double close")]
    fn double_close_rejected() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let f = net.open(&mut k, &route(&p, 0, 1), 10.0, 1.0);
        net.close(&mut k, f);
        net.close(&mut k, f);
    }

    #[test]
    fn slot_reuse_yields_fresh_generation() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let f1 = net.open(&mut k, &route(&p, 0, 1), 10.0, 1.0);
        net.close(&mut k, f1);
        let f2 = net.open(&mut k, &route(&p, 0, 1), 10.0, 1.0);
        assert_ne!(f1, f2);
        let _ = net.activity(f2); // must not panic
    }

    /// The observed rate of a flow under either maintenance scheme.
    fn rate_of(net: &FlowNet, id: FlowId) -> f64 {
        net.effective_rate(id.index)
    }

    #[test]
    fn deferred_batch_matches_sequential_rates() {
        for policy in [
            SharingPolicy::Bottleneck,
            SharingPolicy::MaxMin,
            SharingPolicy::MaxMinFull,
        ] {
            let (p, mut seq, mut k_seq) = net(policy);
            let mut def = FlowNet::new(&p, policy);
            let mut k_def = Kernel::new();
            // A symmetric 2-pair phase plus one asymmetric flow.
            let routes = [route(&p, 0, 1), route(&p, 2, 3), route(&p, 0, 2)];
            let mut pairs = Vec::new();
            for r in &routes {
                pairs.push((
                    seq.open(&mut k_seq, r, 1e6, 90.0),
                    def.open_deferred(&mut k_def, r, 1e6, 90.0),
                ));
            }
            def.flush(&mut k_def);
            for (fs, fd) in &pairs {
                assert_eq!(
                    rate_of(&seq, *fs).to_bits(),
                    rate_of(&def, *fd).to_bits(),
                    "{policy:?}"
                );
            }
            // Retire the phase; the asymmetric survivor must re-expand.
            let (fs, fd) = pairs.remove(0);
            seq.close(&mut k_seq, fs);
            def.close_deferred(&mut k_def, fd);
            def.flush(&mut k_def);
            for (fs, fd) in &pairs {
                assert_eq!(
                    rate_of(&seq, *fs).to_bits(),
                    rate_of(&def, *fd).to_bits(),
                    "{policy:?}"
                );
            }
            assert_eq!(seq.live_flows(), def.live_flows());
        }
    }

    #[test]
    fn uniform_isolated_batch_forms_one_aggregate() {
        let (p, mut net, mut k) = net(SharingPolicy::MaxMin);
        // Two disjoint pairs, identical caps: a recursive-doubling round.
        let f1 = net.open_deferred(&mut k, &route(&p, 0, 1), 1e6, 90.0);
        let f2 = net.open_deferred(&mut k, &route(&p, 2, 3), 1e6, 90.0);
        net.flush(&mut k);
        let s = net.stats();
        assert_eq!(s.agg_formed, 1);
        assert_eq!(s.agg_members, 2);
        assert_eq!(s.flush_batches, 1);
        assert_eq!(s.live_flow_hwm, 2);
        assert_eq!(s.live_entity_hwm, 1, "aggregate counts once");
        assert_eq!(net.live_entities(), 1);
        // Phase retires: dissolution at close is not a split.
        net.close_deferred(&mut k, f1);
        net.close_deferred(&mut k, f2);
        net.flush(&mut k);
        let s = net.stats();
        assert_eq!(s.agg_splits, 0);
        assert_eq!(net.live_entities(), 0);
    }

    #[test]
    fn outside_traffic_splits_an_aggregate() {
        let (p, mut net, mut k) = net(SharingPolicy::MaxMin);
        let _f1 = net.open_deferred(&mut k, &route(&p, 0, 1), 1e6, 90.0);
        let _f2 = net.open_deferred(&mut k, &route(&p, 2, 3), 1e6, 90.0);
        net.flush(&mut k);
        assert_eq!(net.live_entities(), 1);
        // A normal open crossing member links dissolves the aggregate.
        let _x = net.open(&mut k, &route(&p, 0, 2), 1e6, 1e9);
        let s = net.stats();
        assert_eq!(s.agg_splits, 1);
        assert_eq!(net.live_entities(), 3);
    }

    #[test]
    fn non_uniform_batch_is_not_aggregated() {
        let (p, mut net, mut k) = net(SharingPolicy::MaxMin);
        let _f1 = net.open_deferred(&mut k, &route(&p, 0, 1), 1e6, 90.0);
        let _f2 = net.open_deferred(&mut k, &route(&p, 2, 3), 1e6, 40.0);
        net.flush(&mut k);
        assert_eq!(net.stats().agg_formed, 0);
        assert_eq!(net.live_entities(), 2);
    }

    #[test]
    fn batch_sharing_links_with_outsiders_is_not_aggregated() {
        let (p, mut net, mut k) = net(SharingPolicy::MaxMin);
        let _bg = net.open(&mut k, &route(&p, 0, 3), 1e6, 1e9);
        let _f1 = net.open_deferred(&mut k, &route(&p, 0, 1), 1e6, 90.0);
        let _f2 = net.open_deferred(&mut k, &route(&p, 2, 3), 1e6, 90.0);
        net.flush(&mut k);
        assert_eq!(net.stats().agg_formed, 0, "not isolated from bg flow");
    }

    #[test]
    fn flush_timer_reaches_the_installed_actor() {
        let (p, mut net, mut k) = net(SharingPolicy::MaxMin);
        net.set_flush_actor(simkernel::ActorId(7));
        let _f = net.open_deferred(&mut k, &route(&p, 0, 1), 1e6, 90.0);
        let (actor, wake) = k.next_wake().expect("flush timer scheduled");
        assert_eq!(actor, simkernel::ActorId(7));
        assert!(matches!(wake, simkernel::Wake::Timer(FLUSH_KEY)));
        assert_eq!(k.now().as_secs(), 0.0, "flush fires within the instant");
        net.flush(&mut k);
        assert_eq!(net.stats().flush_batches, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use platform::topology::{flat_cluster, FlatClusterSpec};
    use platform::HostId;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Under the bottleneck policy, no link's aggregate allotment ever
        /// exceeds its capacity, for any pattern of opened flows.
        #[test]
        fn no_link_oversubscription(pairs in proptest::collection::vec((0u32..6, 0u32..6), 1..40)) {
            let p = flat_cluster(&FlatClusterSpec {
                name: "pp".into(),
                nodes: 6,
                host_speed: 1e9,
                cores: 1,
                cache_bytes: 1,
                link_bandwidth: 100.0,
                link_latency: 0.0,
                backbone_bandwidth: 130.0,
                backbone_latency: 0.0,
            });
            let mut k = Kernel::new();
            let mut net = FlowNet::new(&p, SharingPolicy::Bottleneck);
            let mut r = Vec::new();
            for (s, d) in pairs {
                if s == d { continue; }
                p.route(HostId(s), HostId(d), &mut r);
                let _ = net.open(&mut k, &r, 1e6, 1e9);
            }
            // Sum allotments per link.
            let mut per_link = vec![0.0f64; p.links().len()];
            for (id, rate) in net.current_rates() {
                let f = &net.flows[id.index as usize];
                for l in &f.route {
                    per_link[l.as_usize()] += rate;
                }
            }
            for (i, used) in per_link.iter().enumerate() {
                let cap = p.links()[i].bandwidth;
                prop_assert!(*used <= cap * (1.0 + 1e-9),
                    "link {i} oversubscribed: {used} > {cap}");
            }
        }
    }

    /// Drives a net through a random open/close schedule. `ops[i] = (s, d,
    /// close_at)`: open a flow s→d, and close the flow opened `close_at`
    /// steps ago (if still open).
    fn churn_platform() -> Platform {
        flat_cluster(&FlatClusterSpec {
            name: "churn".into(),
            nodes: 8,
            host_speed: 1e9,
            cores: 1,
            cache_bytes: 1,
            link_bandwidth: 100.0,
            link_latency: 0.0,
            backbone_bandwidth: 370.0,
            backbone_latency: 0.0,
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Differential: after every open/close, the incremental
        /// allotment equals a from-scratch [`sharing::maxmin_rates`]
        /// run. Tolerance 1e-9 relative — the oracle interleaves
        /// independent components through one global pass, which can
        /// resolve sub-1e-12 cross-component ties differently.
        #[test]
        fn incremental_matches_full_recompute(
            ops in proptest::collection::vec((0u32..8, 0u32..8, 0usize..12, 1.0f64..200.0), 1..60),
        ) {
            let p = churn_platform();
            let mut k = Kernel::new();
            let mut net = FlowNet::new(&p, SharingPolicy::MaxMin);
            let mut r = Vec::new();
            let mut open: Vec<FlowId> = Vec::new();
            for (s, d, close_at, cap) in ops {
                if s != d {
                    p.route(HostId(s), HostId(d), &mut r);
                    open.push(net.open(&mut k, &r, 1e6, cap));
                }
                if close_at < open.len() {
                    let f = open.swap_remove(open.len() - 1 - close_at);
                    net.close(&mut k, f);
                }

                // Oracle: full recompute over the same live flows.
                let caps: Vec<f64> = p.links().iter().map(|l| l.bandwidth).collect();
                let flow_refs: Vec<Option<(&[LinkId], f64)>> = net
                    .flows
                    .iter()
                    .map(|f| if f.live { Some((f.route.as_slice(), f.cap)) } else { None })
                    .collect();
                let want = sharing::maxmin_rates(caps, flow_refs);
                for (idx, w) in want.iter().enumerate() {
                    if let Some(w) = w {
                        let got = net.flows[idx].rate;
                        prop_assert!(
                            (got - w).abs() <= 1e-9 * w.max(1.0),
                            "flow {idx}: incremental {got} vs full {w}"
                        );
                    }
                }
            }
        }

        /// Bit-identity: the incremental policy and the full-recompute
        /// reference, driven through the same schedule, hold bitwise
        /// equal allotments and identical kernel clocks after every op.
        #[test]
        fn incremental_is_bitwise_equal_to_reference_policy(
            ops in proptest::collection::vec((0u32..8, 0u32..8, 0usize..12, 1.0f64..200.0), 1..60),
        ) {
            let p = churn_platform();
            let mut k_inc = Kernel::new();
            let mut k_ful = Kernel::new();
            let mut inc = FlowNet::new(&p, SharingPolicy::MaxMin);
            let mut ful = FlowNet::new(&p, SharingPolicy::MaxMinFull);
            let mut r = Vec::new();
            let mut open: Vec<(FlowId, FlowId)> = Vec::new();
            for (s, d, close_at, cap) in ops {
                if s != d {
                    p.route(HostId(s), HostId(d), &mut r);
                    open.push((
                        inc.open(&mut k_inc, &r, 1e6, cap),
                        ful.open(&mut k_ful, &r, 1e6, cap),
                    ));
                }
                if close_at < open.len() {
                    let (fi, ff) = open.swap_remove(open.len() - 1 - close_at);
                    inc.close(&mut k_inc, fi);
                    ful.close(&mut k_ful, ff);
                }
                for (idx, f) in inc.flows.iter().enumerate() {
                    if f.live {
                        prop_assert!(
                            f.rate.to_bits() == ful.flows[idx].rate.to_bits(),
                            "flow {idx}: incremental {} vs reference {}",
                            f.rate,
                            ful.flows[idx].rate
                        );
                    }
                }
                prop_assert!(k_inc.now() == k_ful.now());
            }
        }

        /// Differential: a schedule applied through the deferred batch
        /// path (instant-grouped ops + one flush) ends every instant with
        /// bitwise the allotments the per-op sequential path holds, for
        /// all three policies. This is the exactness gate the collective
        /// aggregation replay path rests on.
        #[test]
        fn deferred_flush_is_bitwise_equal_to_sequential(
            instants in proptest::collection::vec(
                proptest::collection::vec(
                    (0u32..8, 0u32..8, 0usize..12, 1.0f64..200.0), 1..5),
                1..16),
        ) {
            let p = churn_platform();
            for policy in [
                SharingPolicy::Bottleneck,
                SharingPolicy::MaxMin,
                SharingPolicy::MaxMinFull,
            ] {
                let mut k_seq = Kernel::new();
                let mut k_def = Kernel::new();
                let mut seq = FlowNet::new(&p, policy);
                let mut def = FlowNet::new(&p, policy);
                let mut r = Vec::new();
                let mut open: Vec<(FlowId, FlowId)> = Vec::new();
                for ops in &instants {
                    for (s, d, close_at, cap) in ops {
                        if s != d {
                            p.route(HostId(*s), HostId(*d), &mut r);
                            open.push((
                                seq.open(&mut k_seq, &r, 1e6, *cap),
                                def.open_deferred(&mut k_def, &r, 1e6, *cap),
                            ));
                        }
                        if *close_at < open.len() {
                            let (fs, fd) = open.swap_remove(open.len() - 1 - close_at);
                            seq.close(&mut k_seq, fs);
                            def.close_deferred(&mut k_def, fd);
                        }
                    }
                    def.flush(&mut k_def);
                    for (fs, fd) in &open {
                        let rs = seq.effective_rate(fs.index);
                        let rd = def.effective_rate(fd.index);
                        prop_assert!(
                            rs.to_bits() == rd.to_bits(),
                            "{policy:?}: sequential {rs} vs deferred {rd}"
                        );
                    }
                    prop_assert!(seq.live_flows() == def.live_flows());
                    prop_assert!(def.live_entities() <= def.live_flows());
                }
            }
        }
    }
}
