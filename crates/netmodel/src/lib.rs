//! Flow-level network models.
//!
//! A network transfer is a kernel activity whose work is the message size
//! in bytes and whose rate is the bandwidth currently allotted to the
//! flow. This crate maintains that allotment as flows come and go:
//!
//! * [`SharingPolicy::Bottleneck`] — each flow receives
//!   `min_over_route(capacity / flows_on_link)`, capped by its own
//!   protocol ceiling. This is the fast model used for large simulations;
//!   it guarantees no link is oversubscribed but does not redistribute
//!   head-room (same family of approximation as SimGrid's fast default
//!   without cross-traffic).
//! * [`SharingPolicy::MaxMin`] — exact progressive-filling max-min
//!   fairness, recomputed globally on every change. The reference model:
//!   slower, used in tests and small studies to bound the error of the
//!   fast model.
//!
//! [`piecewise::PiecewiseFactors`] implements SMPI's piece-wise linear
//! correction of nominal latency/bandwidth by message size — the paper's
//! "original piece-wise linear model to take into account the specifics of
//! the cluster interconnect".

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod piecewise;
pub mod sharing;

pub use piecewise::PiecewiseFactors;
pub use sharing::SharingPolicy;

use platform::{LinkId, Platform};
use simkernel::{ActivityId, Kernel};

const NO_FREE: u32 = u32::MAX;

/// Handle to an open flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
struct Flow {
    route: Vec<LinkId>,
    activity: ActivityId,
    /// Per-flow rate ceiling (protocol-corrected nominal bandwidth).
    cap: f64,
    generation: u32,
    live: bool,
    next_free: u32,
}

#[derive(Debug, Clone, Copy)]
struct LinkState {
    capacity: f64,
    nflows: u32,
}

/// The live network: link occupancies and flow allotments.
#[derive(Debug)]
pub struct FlowNet {
    links: Vec<LinkState>,
    flows: Vec<Flow>,
    free_head: u32,
    /// Flows crossing each link.
    per_link: Vec<Vec<u32>>,
    policy: SharingPolicy,
    scratch: Vec<u32>,
    live_count: usize,
}

impl FlowNet {
    /// Builds the network state from a platform's links.
    pub fn new(platform: &Platform, policy: SharingPolicy) -> FlowNet {
        let links = platform
            .links()
            .iter()
            .map(|l| LinkState {
                capacity: l.bandwidth,
                nflows: 0,
            })
            .collect::<Vec<_>>();
        let per_link = links.iter().map(|_| Vec::new()).collect();
        FlowNet {
            links,
            flows: Vec::new(),
            free_head: NO_FREE,
            per_link,
            policy,
            scratch: Vec::new(),
            live_count: 0,
        }
    }

    /// The sharing policy in effect.
    pub fn policy(&self) -> SharingPolicy {
        self.policy
    }

    /// Number of currently open flows.
    pub fn live_flows(&self) -> usize {
        self.live_count
    }

    /// Opens a flow of `bytes` over `route`, with a per-flow bandwidth
    /// ceiling `cap` (bytes/s; pass the protocol-corrected nominal
    /// bandwidth). Returns the flow handle; the underlying activity
    /// completes when the last byte is transferred.
    ///
    /// # Panics
    /// Panics if `route` is empty — loopback transfers never reach the
    /// network layer.
    pub fn open(&mut self, kernel: &mut Kernel, route: &[LinkId], bytes: f64, cap: f64) -> FlowId {
        assert!(!route.is_empty(), "cannot open a flow over an empty route");
        assert!(cap > 0.0 && cap.is_finite(), "invalid flow cap: {cap}");
        let activity = kernel.start_activity(bytes, 0.0);
        let index = if self.free_head != NO_FREE {
            let index = self.free_head;
            let f = &mut self.flows[index as usize];
            self.free_head = f.next_free;
            f.route.clear();
            f.route.extend_from_slice(route);
            f.activity = activity;
            f.cap = cap;
            f.generation = f.generation.wrapping_add(1);
            f.live = true;
            f.next_free = NO_FREE;
            index
        } else {
            let index = u32::try_from(self.flows.len()).expect("too many flows");
            self.flows.push(Flow {
                route: route.to_vec(),
                activity,
                cap,
                generation: 0,
                live: true,
                next_free: NO_FREE,
            });
            index
        };
        for l in route {
            self.links[l.as_usize()].nflows += 1;
            self.per_link[l.as_usize()].push(index);
        }
        self.live_count += 1;
        let id = FlowId {
            index,
            generation: self.flows[index as usize].generation,
        };
        self.reshare_after_change(kernel, index);
        id
    }

    /// The kernel activity carrying this flow's progress (subscribe to it
    /// to learn of completion).
    pub fn activity(&self, id: FlowId) -> ActivityId {
        let f = &self.flows[id.index as usize];
        assert_eq!(f.generation, id.generation, "stale FlowId");
        f.activity
    }

    /// Closes a flow (after its activity completed, or to abort it) and
    /// redistributes bandwidth. Closing an already-closed flow is an
    /// error.
    pub fn close(&mut self, kernel: &mut Kernel, id: FlowId) {
        let f = &mut self.flows[id.index as usize];
        assert_eq!(f.generation, id.generation, "stale FlowId");
        assert!(f.live, "double close of flow {id:?}");
        f.live = false;
        kernel.cancel(f.activity); // no-op when already completed
        let route = std::mem::take(&mut f.route);
        for l in &route {
            let ls = &mut self.links[l.as_usize()];
            ls.nflows -= 1;
            let v = &mut self.per_link[l.as_usize()];
            let pos = v
                .iter()
                .position(|x| *x == id.index)
                .expect("flow missing from link index");
            v.swap_remove(pos);
        }
        self.live_count -= 1;
        let f = &mut self.flows[id.index as usize];
        f.route = route; // keep the allocation for reuse
        f.next_free = self.free_head;
        self.free_head = id.index;
        self.reshare_after_close(kernel, &id);
    }

    fn reshare_after_change(&mut self, kernel: &mut Kernel, new_flow: u32) {
        match self.policy {
            SharingPolicy::Bottleneck => {
                // Affected flows: every flow sharing a link with the new one.
                self.collect_neighbors(new_flow);
                let mut scratch = std::mem::take(&mut self.scratch);
                for idx in &scratch {
                    let rate = self.bottleneck_rate(*idx);
                    kernel.set_rate(self.flows[*idx as usize].activity, rate);
                }
                scratch.clear();
                self.scratch = scratch;
            }
            SharingPolicy::MaxMin => self.reshare_maxmin(kernel),
        }
    }

    fn reshare_after_close(&mut self, kernel: &mut Kernel, closed: &FlowId) {
        match self.policy {
            SharingPolicy::Bottleneck => {
                // The closed flow's former route links gained head-room.
                // Its neighbors are exactly the remaining flows on those
                // links.
                let route = self.flows[closed.index as usize].route.clone();
                self.scratch.clear();
                for l in &route {
                    self.scratch.extend(self.per_link[l.as_usize()].iter());
                }
                self.scratch.sort_unstable();
                self.scratch.dedup();
                let mut scratch = std::mem::take(&mut self.scratch);
                for idx in &scratch {
                    let rate = self.bottleneck_rate(*idx);
                    kernel.set_rate(self.flows[*idx as usize].activity, rate);
                }
                scratch.clear();
                self.scratch = scratch;
            }
            SharingPolicy::MaxMin => self.reshare_maxmin(kernel),
        }
    }

    fn collect_neighbors(&mut self, flow: u32) {
        self.scratch.clear();
        for l in &self.flows[flow as usize].route {
            self.scratch.extend(self.per_link[l.as_usize()].iter());
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
    }

    fn bottleneck_rate(&self, flow: u32) -> f64 {
        let f = &self.flows[flow as usize];
        let mut rate = f.cap;
        for l in &f.route {
            let ls = &self.links[l.as_usize()];
            debug_assert!(ls.nflows > 0);
            rate = rate.min(ls.capacity / ls.nflows as f64);
        }
        rate
    }

    /// Exact progressive-filling max-min allocation over all live flows.
    fn reshare_maxmin(&mut self, kernel: &mut Kernel) {
        let rates = sharing::maxmin_rates(
            self.links.iter().map(|l| l.capacity).collect::<Vec<_>>(),
            self.flows
                .iter()
                .map(|f| {
                    if f.live {
                        Some((f.route.as_slice(), f.cap))
                    } else {
                        None
                    }
                })
                .collect::<Vec<_>>(),
        );
        for (idx, rate) in rates.into_iter().enumerate() {
            if let Some(rate) = rate {
                kernel.set_rate(self.flows[idx].activity, rate);
            }
        }
    }

    /// The rate each live flow currently receives (diagnostics/tests).
    pub fn current_rates(&self) -> Vec<(FlowId, f64)> {
        let mut out = Vec::new();
        for (idx, f) in self.flows.iter().enumerate() {
            if f.live {
                let id = FlowId {
                    index: idx as u32,
                    generation: f.generation,
                };
                let rate = match self.policy {
                    SharingPolicy::Bottleneck => self.bottleneck_rate(idx as u32),
                    SharingPolicy::MaxMin => {
                        // Recompute from scratch (test-only path).
                        let rates = sharing::maxmin_rates(
                            self.links.iter().map(|l| l.capacity).collect::<Vec<_>>(),
                            self.flows
                                .iter()
                                .map(|f| {
                                    if f.live {
                                        Some((f.route.as_slice(), f.cap))
                                    } else {
                                        None
                                    }
                                })
                                .collect::<Vec<_>>(),
                        );
                        rates[idx].expect("live flow has a rate")
                    }
                };
                out.push((id, rate));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::topology::{flat_cluster, FlatClusterSpec};
    use platform::HostId;

    fn net(policy: SharingPolicy) -> (Platform, FlowNet, Kernel) {
        let p = flat_cluster(&FlatClusterSpec {
            name: "t".into(),
            nodes: 4,
            host_speed: 1e9,
            cores: 1,
            cache_bytes: 1 << 20,
            link_bandwidth: 100.0,
            link_latency: 0.0,
            backbone_bandwidth: 150.0,
            backbone_latency: 0.0,
        });
        let f = FlowNet::new(&p, policy);
        (p, f, Kernel::new())
    }

    fn route(p: &Platform, s: u32, d: u32) -> Vec<LinkId> {
        let mut r = Vec::new();
        p.route(HostId(s), HostId(d), &mut r);
        r
    }

    #[test]
    fn single_flow_gets_bottleneck_bandwidth() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let r = route(&p, 0, 1);
        let f = net.open(&mut k, &r, 1000.0, 1e9);
        let rates = net.current_rates();
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].0, f);
        assert_eq!(rates[0].1, 100.0); // NIC limits, not the 150 backbone
    }

    #[test]
    fn cap_limits_flow_rate() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let r = route(&p, 0, 1);
        let _f = net.open(&mut k, &r, 1000.0, 42.0);
        assert_eq!(net.current_rates()[0].1, 42.0);
    }

    #[test]
    fn backbone_contention_shares_fairly() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        // Two flows from different sources to different destinations: they
        // only share the 150-capacity backbone => 75 each.
        let f1 = net.open(&mut k, &route(&p, 0, 1), 1e6, 1e9);
        let f2 = net.open(&mut k, &route(&p, 2, 3), 1e6, 1e9);
        let rates = net.current_rates();
        assert_eq!(rates.len(), 2);
        for (id, rate) in rates {
            assert!(id == f1 || id == f2);
            assert_eq!(rate, 75.0);
        }
    }

    #[test]
    fn closing_a_flow_restores_bandwidth() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let f1 = net.open(&mut k, &route(&p, 0, 1), 1e6, 1e9);
        let f2 = net.open(&mut k, &route(&p, 2, 3), 1e6, 1e9);
        net.close(&mut k, f1);
        let rates = net.current_rates();
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].0, f2);
        assert_eq!(rates[0].1, 100.0);
        assert_eq!(net.live_flows(), 1);
    }

    #[test]
    fn flow_completion_time_under_contention() {
        // Two flows on the same NIC uplink (50 each), one finishes, the
        // survivor speeds up to 100.
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let r1 = route(&p, 0, 1);
        let r2 = route(&p, 0, 2);
        let f1 = net.open(&mut k, &r1, 100.0, 1e9); // shares uplink of host 0
        let f2 = net.open(&mut k, &r2, 1000.0, 1e9);
        let a1 = net.activity(f1);
        let a2 = net.activity(f2);
        k.subscribe(a1, simkernel::ActorId(0));
        k.subscribe(a2, simkernel::ActorId(1));
        // f1: 100 bytes at 50 B/s => done at t=2. f2 then has 1000-100=900
        // left at 100 B/s => done at 2 + 9 = 11.
        let (actor, _) = k.next_wake().unwrap();
        assert_eq!(actor, simkernel::ActorId(0));
        assert_eq!(k.now().as_secs(), 2.0);
        net.close(&mut k, f1);
        let (actor, _) = k.next_wake().unwrap();
        assert_eq!(actor, simkernel::ActorId(1));
        assert!((k.now().as_secs() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn maxmin_redistributes_headroom() {
        let (p, mut net, mut k) = net(SharingPolicy::MaxMin);
        // f1 capped at 20 on the shared backbone; f2 should receive the
        // rest of its NIC capacity (100), not the naive 75 share.
        let _f1 = net.open(&mut k, &route(&p, 0, 1), 1e6, 20.0);
        let f2 = net.open(&mut k, &route(&p, 2, 3), 1e6, 1e9);
        let rates = net.current_rates();
        let r2 = rates.iter().find(|(id, _)| *id == f2).unwrap().1;
        assert_eq!(r2, 100.0);
    }

    #[test]
    #[should_panic(expected = "empty route")]
    fn empty_route_rejected() {
        let (_p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let _ = net.open(&mut k, &[], 10.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "double close")]
    fn double_close_rejected() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let f = net.open(&mut k, &route(&p, 0, 1), 10.0, 1.0);
        net.close(&mut k, f);
        net.close(&mut k, f);
    }

    #[test]
    fn slot_reuse_yields_fresh_generation() {
        let (p, mut net, mut k) = net(SharingPolicy::Bottleneck);
        let f1 = net.open(&mut k, &route(&p, 0, 1), 10.0, 1.0);
        net.close(&mut k, f1);
        let f2 = net.open(&mut k, &route(&p, 0, 1), 10.0, 1.0);
        assert_ne!(f1, f2);
        let _ = net.activity(f2); // must not panic
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use platform::topology::{flat_cluster, FlatClusterSpec};
    use platform::HostId;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Under the bottleneck policy, no link's aggregate allotment ever
        /// exceeds its capacity, for any pattern of opened flows.
        #[test]
        fn no_link_oversubscription(pairs in proptest::collection::vec((0u32..6, 0u32..6), 1..40)) {
            let p = flat_cluster(&FlatClusterSpec {
                name: "pp".into(),
                nodes: 6,
                host_speed: 1e9,
                cores: 1,
                cache_bytes: 1,
                link_bandwidth: 100.0,
                link_latency: 0.0,
                backbone_bandwidth: 130.0,
                backbone_latency: 0.0,
            });
            let mut k = Kernel::new();
            let mut net = FlowNet::new(&p, SharingPolicy::Bottleneck);
            let mut r = Vec::new();
            for (s, d) in pairs {
                if s == d { continue; }
                p.route(HostId(s), HostId(d), &mut r);
                let _ = net.open(&mut k, &r, 1e6, 1e9);
            }
            // Sum allotments per link.
            let mut per_link = vec![0.0f64; p.links().len()];
            for (id, rate) in net.current_rates() {
                let f = &net.flows[id.index as usize];
                for l in &f.route {
                    per_link[l.as_usize()] += rate;
                }
            }
            for (i, used) in per_link.iter().enumerate() {
                let cap = p.links()[i].bandwidth;
                prop_assert!(*used <= cap * (1.0 + 1e-9),
                    "link {i} oversubscribed: {used} > {cap}");
            }
        }
    }
}
