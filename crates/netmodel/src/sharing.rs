//! Bandwidth-sharing policies.
//!
//! [`maxmin_rates`] implements textbook progressive filling: repeatedly
//! find the most constrained link, give every unfixed flow crossing it the
//! link's fair share, remove them, and continue. Flows additionally carry a
//! per-flow ceiling (protocol cap); a flow whose ceiling is below the fair
//! share saturates at its ceiling and returns its unused share to the pool.

use platform::LinkId;

/// Which sharing algorithm [`crate::FlowNet`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingPolicy {
    /// Fast per-flow bottleneck share: `min(cap_f, min_l capacity_l / n_l)`.
    Bottleneck,
    /// Exact max-min fairness via progressive filling, recomputed
    /// incrementally: a flow arrival or departure re-solves only the
    /// connected component of the flow/link graph it touches.
    MaxMin,
    /// Exact max-min fairness recomputed from scratch on every change
    /// (reference for [`SharingPolicy::MaxMin`]; same solver, so the two
    /// produce bit-identical allocations — see `FlowNet` tests).
    MaxMinFull,
}

/// Computes max-min fair rates.
///
/// `flows[i]` is `Some((route, ceiling))` for live flows and `None` for
/// dead slots (their output is `None` too). Link capacities are given in
/// `capacities`, indexed by [`LinkId`].
pub fn maxmin_rates(
    capacities: Vec<f64>,
    flows: Vec<Option<(&[LinkId], f64)>>,
) -> Vec<Option<f64>> {
    let nflows = flows.len();
    let mut rates: Vec<Option<f64>> = vec![None; nflows];
    let mut fixed: Vec<bool> = flows.iter().map(|f| f.is_none()).collect();
    let mut avail = capacities;
    // Number of unfixed flows per link.
    let mut unfixed_per_link = vec![0u32; avail.len()];
    for f in flows.iter().flatten() {
        for l in f.0 {
            unfixed_per_link[l.as_usize()] += 1;
        }
    }
    let live = flows.iter().filter(|f| f.is_some()).count();
    let mut remaining = live;
    while remaining > 0 {
        // Most constrained share over links with unfixed flows.
        let mut share = f64::INFINITY;
        for (l, n) in unfixed_per_link.iter().enumerate() {
            if *n > 0 {
                share = share.min(avail[l] / *n as f64);
            }
        }
        // Ceilings below the share saturate first.
        let mut min_ceiling = f64::INFINITY;
        for (i, f) in flows.iter().enumerate() {
            if let Some((_, cap)) = f {
                if !fixed[i] {
                    min_ceiling = min_ceiling.min(*cap);
                }
            }
        }
        let level = share.min(min_ceiling);
        assert!(
            level.is_finite() && level >= 0.0,
            "max-min failed to converge"
        );
        // Fix every flow at its ceiling if ceiling <= level, or at `level`
        // if it crosses a saturated link.
        let mut progressed = false;
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            let (route, cap) = f.expect("unfixed implies live");
            let at_ceiling = cap <= level * (1.0 + 1e-12);
            let crosses_saturated = route.iter().any(|l| {
                let lu = l.as_usize();
                unfixed_per_link[lu] > 0
                    && avail[lu] / unfixed_per_link[lu] as f64 <= level * (1.0 + 1e-12)
            });
            if at_ceiling || crosses_saturated {
                let r = if at_ceiling { cap } else { level };
                rates[i] = Some(r);
                fixed[i] = true;
                progressed = true;
                remaining -= 1;
                for l in route {
                    let lu = l.as_usize();
                    avail[lu] = (avail[lu] - r).max(0.0);
                    unfixed_per_link[lu] -= 1;
                }
            }
        }
        assert!(progressed, "max-min made no progress");
    }
    rates
}

/// Read access to the flow/link tables the incremental solver shares
/// bandwidth over. Implemented by [`crate::FlowNet`] internally and by
/// plain vectors in tests.
pub trait SharingProblem {
    /// Capacity of a link (bytes/s).
    fn capacity(&self, link: u32) -> f64;
    /// Number of live flows currently crossing a link.
    fn live_flows_on(&self, link: u32) -> u32;
    /// Route of a live flow.
    fn route(&self, flow: u32) -> &[LinkId];
    /// Per-flow rate ceiling.
    fn ceiling(&self, flow: u32) -> f64;
}

/// Reusable progressive-filling solver over an arbitrary subset of flows
/// and links (one connected component of the flow/link graph).
///
/// This is the same arithmetic as [`maxmin_rates`], restricted to the
/// given subsets: identical expressions evaluated in identical order, so
/// running it over one component yields bitwise the rates a global run
/// would assign to that component's flows (components are independent
/// sub-problems; only sub-1e-12 cross-component ties can differ from the
/// interleaved global pass, which the differential tests bound).
///
/// All working storage is owned by the solver and grown on demand, so
/// steady-state resharing allocates nothing.
#[derive(Debug, Default)]
pub struct MaxMinSolver {
    /// Remaining capacity, indexed by global link id (valid for the
    /// links of the current fill only).
    avail: Vec<f64>,
    /// Unfixed-flow count, indexed by global link id.
    unfixed: Vec<u32>,
    /// Fixed flag, indexed by global flow index.
    fixed: Vec<bool>,
    /// Assigned rates, indexed by global flow index (valid for the flows
    /// of the most recent fill).
    rates: Vec<f64>,
}

impl MaxMinSolver {
    /// A solver with empty scratch storage.
    pub fn new() -> MaxMinSolver {
        MaxMinSolver::default()
    }

    /// Rate assigned to `flow` by the most recent [`MaxMinSolver::fill`]
    /// whose component contained it.
    pub fn rate(&self, flow: u32) -> f64 {
        self.rates[flow as usize]
    }

    /// Solves max-min fairness for one connected component.
    ///
    /// `comp_flows` must be sorted ascending (the fixing pass mutates
    /// shared state mid-iteration, so order is part of the result's
    /// identity); `comp_links` is the set of links those flows cross and
    /// every live flow on a `comp_links` member must be in `comp_flows`
    /// (that is what makes the subset a component).
    pub fn fill<P: SharingProblem>(&mut self, p: &P, comp_links: &[u32], comp_flows: &[u32]) {
        debug_assert!(comp_flows.windows(2).all(|w| w[0] < w[1]));
        let max_link = comp_links
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1);
        let max_flow = comp_flows
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1);
        if self.avail.len() < max_link {
            self.avail.resize(max_link, 0.0);
            self.unfixed.resize(max_link, 0);
        }
        if self.fixed.len() < max_flow {
            self.fixed.resize(max_flow, false);
            self.rates.resize(max_flow, 0.0);
        }
        for &l in comp_links {
            self.avail[l as usize] = p.capacity(l);
            self.unfixed[l as usize] = p.live_flows_on(l);
        }
        for &f in comp_flows {
            self.fixed[f as usize] = false;
        }
        let mut remaining = comp_flows.len();
        while remaining > 0 {
            // Most constrained share over links with unfixed flows.
            let mut share = f64::INFINITY;
            for &l in comp_links {
                let n = self.unfixed[l as usize];
                if n > 0 {
                    share = share.min(self.avail[l as usize] / n as f64);
                }
            }
            // Ceilings below the share saturate first.
            let mut min_ceiling = f64::INFINITY;
            for &f in comp_flows {
                if !self.fixed[f as usize] {
                    min_ceiling = min_ceiling.min(p.ceiling(f));
                }
            }
            let level = share.min(min_ceiling);
            assert!(
                level.is_finite() && level >= 0.0,
                "max-min failed to converge"
            );
            // Fix every flow at its ceiling if ceiling <= level, or at
            // `level` if it crosses a saturated link.
            let mut progressed = false;
            for &f in comp_flows {
                if self.fixed[f as usize] {
                    continue;
                }
                let cap = p.ceiling(f);
                let route = p.route(f);
                let at_ceiling = cap <= level * (1.0 + 1e-12);
                let crosses_saturated = route.iter().any(|l| {
                    let lu = l.as_usize();
                    self.unfixed[lu] > 0
                        && self.avail[lu] / self.unfixed[lu] as f64 <= level * (1.0 + 1e-12)
                });
                if at_ceiling || crosses_saturated {
                    let r = if at_ceiling { cap } else { level };
                    self.rates[f as usize] = r;
                    self.fixed[f as usize] = true;
                    progressed = true;
                    remaining -= 1;
                    for l in route {
                        let lu = l.as_usize();
                        self.avail[lu] = (self.avail[lu] - r).max(0.0);
                        self.unfixed[lu] -= 1;
                    }
                }
            }
            assert!(progressed, "max-min made no progress");
        }
    }
}

/// Sentinel in [`AggregateLedger`]'s per-flow table: not aggregated.
pub const NO_AGG: u32 = u32::MAX;

/// Entity bookkeeping for collective flow aggregation.
///
/// A collective phase opens O(P) constituent flows that are symmetric by
/// construction: same protocol ceiling, one common max-min rate, and no
/// link shared with outside traffic. The ledger records such a batch as
/// ONE aggregate entity, so entity counts (and the solver work the
/// deferred-flush path performs per phase) drop from O(P) to O(1) while
/// the per-flow tables — routes, per-link membership, kernel activities —
/// stay exactly as the constituent replay builds them. Aggregation is
/// therefore pure accounting: rates always come from the canonical
/// solver, which is what keeps the aggregated replay bit-identical.
///
/// An aggregate dissolves the moment reality diverges from the formation
/// certificate: any member closing (the phase is ending) or any re-solve
/// touching a member (outside traffic arrived on its links).
#[derive(Debug, Default)]
pub struct AggregateLedger {
    /// Aggregate slot per flow slab index; [`NO_AGG`] when unaggregated.
    agg_of: Vec<u32>,
    /// Member flow indices per aggregate slot; empty slots are free.
    members: Vec<Vec<u32>>,
    /// Free aggregate slots (their member vecs are kept for reuse).
    free: Vec<u32>,
    /// Sum over live aggregates of `members - 1`: how many fewer
    /// entities exist than live flows.
    surplus: usize,
}

impl AggregateLedger {
    /// An empty ledger.
    pub fn new() -> AggregateLedger {
        AggregateLedger::default()
    }

    /// Grows the per-flow table to cover `nflows` slab slots.
    pub fn ensure_flows(&mut self, nflows: usize) {
        if self.agg_of.len() < nflows {
            self.agg_of.resize(nflows, NO_AGG);
        }
    }

    /// Whether `flow` currently belongs to an aggregate.
    pub fn is_aggregated(&self, flow: u32) -> bool {
        self.agg_of[flow as usize] != NO_AGG
    }

    /// Records `flows` as one aggregate entity. The caller has already
    /// verified the uniformity certificate (equal ceilings, one common
    /// solved rate, link-isolation from non-members).
    pub fn form(&mut self, flows: &[u32]) -> u32 {
        assert!(flows.len() >= 2, "an aggregate needs at least two flows");
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.members.push(Vec::new());
                (self.members.len() - 1) as u32
            }
        };
        let list = &mut self.members[slot as usize];
        debug_assert!(list.is_empty(), "reused aggregate slot not empty");
        for &f in flows {
            debug_assert_eq!(self.agg_of[f as usize], NO_AGG, "flow in two aggregates");
            self.agg_of[f as usize] = slot;
        }
        list.extend_from_slice(flows);
        self.surplus += flows.len() - 1;
        slot
    }

    /// Dissolves the aggregate containing `flow` back into its
    /// constituent entities. Returns `true` if one was dissolved; a
    /// second call for another member of the same (former) aggregate is
    /// a no-op, so a re-solve touching several members dissolves — and
    /// counts — once.
    pub fn dissolve_member(&mut self, flow: u32) -> bool {
        let slot = self.agg_of[flow as usize];
        if slot == NO_AGG {
            return false;
        }
        let list = std::mem::take(&mut self.members[slot as usize]);
        self.surplus -= list.len() - 1;
        for f in &list {
            self.agg_of[*f as usize] = NO_AGG;
        }
        // Hand the emptied vec back to the slot so `form` can reuse its
        // allocation.
        self.members[slot as usize] = {
            let mut v = list;
            v.clear();
            v
        };
        self.free.push(slot);
        true
    }

    /// How many fewer entities are live than flows.
    pub fn surplus(&self) -> usize {
        self.surplus
    }

    /// Number of live aggregates.
    pub fn live_aggregates(&self) -> usize {
        self.members.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(ids: &[u32]) -> Vec<LinkId> {
        ids.iter().map(|i| LinkId(*i)).collect()
    }

    #[test]
    fn ledger_forms_and_dissolves() {
        let mut ledger = AggregateLedger::new();
        ledger.ensure_flows(8);
        assert_eq!(ledger.surplus(), 0);
        assert_eq!(ledger.live_aggregates(), 0);

        ledger.form(&[1, 3, 5, 7]);
        assert_eq!(ledger.surplus(), 3);
        assert_eq!(ledger.live_aggregates(), 1);
        assert!(ledger.is_aggregated(3));
        assert!(!ledger.is_aggregated(0));

        // First member touch dissolves; the second is a no-op.
        assert!(ledger.dissolve_member(5));
        assert!(!ledger.dissolve_member(7));
        assert_eq!(ledger.surplus(), 0);
        assert_eq!(ledger.live_aggregates(), 0);
        assert!(!ledger.is_aggregated(1));
    }

    #[test]
    fn ledger_reuses_slots() {
        let mut ledger = AggregateLedger::new();
        ledger.ensure_flows(6);
        let a = ledger.form(&[0, 1]);
        ledger.dissolve_member(0);
        let b = ledger.form(&[2, 3, 4]);
        assert_eq!(a, b, "freed slot not reused");
        assert_eq!(ledger.surplus(), 2);
        assert_eq!(ledger.live_aggregates(), 1);
        let c = ledger.form(&[0, 5]);
        assert_ne!(b, c);
        assert_eq!(ledger.surplus(), 3);
        assert_eq!(ledger.live_aggregates(), 2);
    }

    #[test]
    fn ledger_dissolve_of_unaggregated_flow_is_noop() {
        let mut ledger = AggregateLedger::new();
        ledger.ensure_flows(4);
        assert!(!ledger.dissolve_member(2));
        ledger.form(&[0, 1]);
        assert!(!ledger.dissolve_member(3));
        assert_eq!(ledger.surplus(), 1);
    }

    #[test]
    fn equal_flows_split_evenly() {
        let r0 = l(&[0]);
        let r1 = l(&[0]);
        let rates = maxmin_rates(
            vec![100.0],
            vec![Some((r0.as_slice(), 1e9)), Some((r1.as_slice(), 1e9))],
        );
        assert_eq!(rates, vec![Some(50.0), Some(50.0)]);
    }

    #[test]
    fn capped_flow_returns_headroom() {
        let r0 = l(&[0]);
        let r1 = l(&[0]);
        let rates = maxmin_rates(
            vec![100.0],
            vec![Some((r0.as_slice(), 10.0)), Some((r1.as_slice(), 1e9))],
        );
        assert_eq!(rates[0], Some(10.0));
        assert_eq!(rates[1], Some(90.0));
    }

    #[test]
    fn classic_three_flow_two_link_example() {
        // Links A (cap 100) and B (cap 100). Flow 0 uses A+B, flow 1 uses
        // A, flow 2 uses B. Max-min: each link splits 50/50.
        let r0 = l(&[0, 1]);
        let r1 = l(&[0]);
        let r2 = l(&[1]);
        let rates = maxmin_rates(
            vec![100.0, 100.0],
            vec![
                Some((r0.as_slice(), 1e9)),
                Some((r1.as_slice(), 1e9)),
                Some((r2.as_slice(), 1e9)),
            ],
        );
        assert_eq!(rates, vec![Some(50.0), Some(50.0), Some(50.0)]);
    }

    #[test]
    fn asymmetric_bottlenecks() {
        // Link A cap 30 with flows 0,1; link B cap 100 with flows 1,2.
        // Progressive filling: level 15 fixes flows 0,1 (A saturated);
        // flow 2 then gets 100 - 15 = 85 on B.
        let r0 = l(&[0]);
        let r1 = l(&[0, 1]);
        let r2 = l(&[1]);
        let rates = maxmin_rates(
            vec![30.0, 100.0],
            vec![
                Some((r0.as_slice(), 1e9)),
                Some((r1.as_slice(), 1e9)),
                Some((r2.as_slice(), 1e9)),
            ],
        );
        assert_eq!(rates, vec![Some(15.0), Some(15.0), Some(85.0)]);
    }

    #[test]
    fn dead_slots_are_skipped() {
        let r0 = l(&[0]);
        let rates = maxmin_rates(vec![100.0], vec![None, Some((r0.as_slice(), 1e9)), None]);
        assert_eq!(rates, vec![None, Some(100.0), None]);
    }

    #[test]
    fn no_flows_is_fine() {
        let rates = maxmin_rates(vec![100.0], vec![]);
        assert!(rates.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    struct VecProblem {
        caps: Vec<f64>,
        flows: Vec<(Vec<LinkId>, f64)>,
        live_on: Vec<u32>,
    }

    impl VecProblem {
        fn new(caps: Vec<f64>, flows: Vec<(Vec<LinkId>, f64)>) -> VecProblem {
            let mut live_on = vec![0u32; caps.len()];
            for (route, _) in &flows {
                for l in route {
                    live_on[l.as_usize()] += 1;
                }
            }
            VecProblem {
                caps,
                flows,
                live_on,
            }
        }
    }

    impl SharingProblem for VecProblem {
        fn capacity(&self, link: u32) -> f64 {
            self.caps[link as usize]
        }
        fn live_flows_on(&self, link: u32) -> u32 {
            self.live_on[link as usize]
        }
        fn route(&self, flow: u32) -> &[LinkId] {
            &self.flows[flow as usize].0
        }
        fn ceiling(&self, flow: u32) -> f64 {
            self.flows[flow as usize].1
        }
    }

    fn arb_problem() -> impl Strategy<Value = (Vec<f64>, Vec<(Vec<usize>, f64)>)> {
        (
            proptest::collection::vec(1.0f64..1000.0, 1..6),
            proptest::collection::vec(
                (proptest::collection::vec(0usize..6, 1..4), 0.5f64..2000.0),
                1..12,
            ),
        )
    }

    fn dedup_routes(nl: usize, routes: Vec<(Vec<usize>, f64)>) -> Vec<(Vec<LinkId>, f64)> {
        routes
            .into_iter()
            .map(|(r, cap)| {
                let mut r: Vec<LinkId> = r.into_iter().map(|i| LinkId((i % nl) as u32)).collect();
                r.sort_unstable();
                r.dedup();
                (r, cap)
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Differential: the subset solver run over the whole problem is
        /// BITWISE identical to the [`maxmin_rates`] reference — same
        /// expressions, same iteration order, so not merely close.
        #[test]
        fn solver_matches_reference_bitwise((caps, routes) in arb_problem()) {
            let nl = caps.len();
            let flows = dedup_routes(nl, routes);
            let flow_refs: Vec<Option<(&[LinkId], f64)>> =
                flows.iter().map(|(r, c)| Some((r.as_slice(), *c))).collect();
            let want = maxmin_rates(caps.clone(), flow_refs);

            let p = VecProblem::new(caps, flows);
            let all_links: Vec<u32> = (0..nl as u32).collect();
            let all_flows: Vec<u32> = (0..p.flows.len() as u32).collect();
            let mut solver = MaxMinSolver::new();
            solver.fill(&p, &all_links, &all_flows);
            for (i, w) in want.iter().enumerate() {
                let w = w.expect("live flow has a rate");
                let got = solver.rate(i as u32);
                prop_assert!(
                    got.to_bits() == w.to_bits(),
                    "flow {i}: solver {got} != reference {w}"
                );
            }
        }

        /// Scratch reuse across fills is sound: re-solving a second
        /// problem with the same solver matches a fresh solver bitwise.
        #[test]
        fn solver_scratch_reuse_is_clean(
            (caps_a, routes_a) in arb_problem(),
            (caps_b, routes_b) in arb_problem(),
        ) {
            let pa = VecProblem::new(caps_a.clone(), dedup_routes(caps_a.len(), routes_a));
            let pb = VecProblem::new(caps_b.clone(), dedup_routes(caps_b.len(), routes_b));
            let links_a: Vec<u32> = (0..pa.caps.len() as u32).collect();
            let flows_a: Vec<u32> = (0..pa.flows.len() as u32).collect();
            let links_b: Vec<u32> = (0..pb.caps.len() as u32).collect();
            let flows_b: Vec<u32> = (0..pb.flows.len() as u32).collect();

            let mut reused = MaxMinSolver::new();
            reused.fill(&pa, &links_a, &flows_a);
            reused.fill(&pb, &links_b, &flows_b);
            let mut fresh = MaxMinSolver::new();
            fresh.fill(&pb, &links_b, &flows_b);
            for f in &flows_b {
                prop_assert!(reused.rate(*f).to_bits() == fresh.rate(*f).to_bits());
            }
        }

        /// Max-min invariants: (1) no link oversubscribed, (2) every flow
        /// within its ceiling, (3) every flow is bottlenecked — either at
        /// its ceiling or on some saturated link (Pareto efficiency +
        /// max-min characterization).
        #[test]
        fn maxmin_invariants(
            caps in proptest::collection::vec(1.0f64..1000.0, 1..6),
            routes in proptest::collection::vec(
                (proptest::collection::vec(0usize..6, 1..4), 0.5f64..2000.0), 1..12),
        ) {
            let nl = caps.len();
            let flows: Vec<(Vec<LinkId>, f64)> = routes
                .into_iter()
                .map(|(r, cap)| {
                    let mut r: Vec<LinkId> =
                        r.into_iter().map(|i| LinkId((i % nl) as u32)).collect();
                    r.sort_unstable();
                    r.dedup();
                    (r, cap)
                })
                .collect();
            let flow_refs: Vec<Option<(&[LinkId], f64)>> =
                flows.iter().map(|(r, c)| Some((r.as_slice(), *c))).collect();
            let rates = maxmin_rates(caps.clone(), flow_refs);

            let mut used = vec![0.0f64; nl];
            for (i, rate) in rates.iter().enumerate() {
                let rate = rate.expect("live flow has rate");
                let (route, cap) = &flows[i];
                prop_assert!(rate <= cap * (1.0 + 1e-9), "flow {i} beyond ceiling");
                prop_assert!(rate >= 0.0);
                for ln in route {
                    used[ln.as_usize()] += rate;
                }
            }
            for (ln, u) in used.iter().enumerate() {
                prop_assert!(*u <= caps[ln] * (1.0 + 1e-6),
                    "link {ln} oversubscribed: {u} > {}", caps[ln]);
            }
            // Bottleneck property.
            for (i, rate) in rates.iter().enumerate() {
                let rate = rate.unwrap();
                let (route, cap) = &flows[i];
                let at_ceiling = rate >= cap * (1.0 - 1e-9);
                let on_saturated = route.iter().any(|ln| {
                    used[ln.as_usize()] >= caps[ln.as_usize()] * (1.0 - 1e-6)
                });
                prop_assert!(at_ceiling || on_saturated,
                    "flow {i} is not bottlenecked (rate {rate}, ceiling {cap})");
            }
        }
    }
}
