//! Bandwidth-sharing policies.
//!
//! [`maxmin_rates`] implements textbook progressive filling: repeatedly
//! find the most constrained link, give every unfixed flow crossing it the
//! link's fair share, remove them, and continue. Flows additionally carry a
//! per-flow ceiling (protocol cap); a flow whose ceiling is below the fair
//! share saturates at its ceiling and returns its unused share to the pool.

use platform::LinkId;

/// Which sharing algorithm [`crate::FlowNet`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingPolicy {
    /// Fast per-flow bottleneck share: `min(cap_f, min_l capacity_l / n_l)`.
    Bottleneck,
    /// Exact max-min fairness via progressive filling (reference model).
    MaxMin,
}

/// Computes max-min fair rates.
///
/// `flows[i]` is `Some((route, ceiling))` for live flows and `None` for
/// dead slots (their output is `None` too). Link capacities are given in
/// `capacities`, indexed by [`LinkId`].
pub fn maxmin_rates(
    capacities: Vec<f64>,
    flows: Vec<Option<(&[LinkId], f64)>>,
) -> Vec<Option<f64>> {
    let nflows = flows.len();
    let mut rates: Vec<Option<f64>> = vec![None; nflows];
    let mut fixed: Vec<bool> = flows.iter().map(|f| f.is_none()).collect();
    let mut avail = capacities;
    // Number of unfixed flows per link.
    let mut unfixed_per_link = vec![0u32; avail.len()];
    for f in flows.iter().flatten() {
        for l in f.0 {
            unfixed_per_link[l.as_usize()] += 1;
        }
    }
    let live = flows.iter().filter(|f| f.is_some()).count();
    let mut remaining = live;
    while remaining > 0 {
        // Most constrained share over links with unfixed flows.
        let mut share = f64::INFINITY;
        for (l, n) in unfixed_per_link.iter().enumerate() {
            if *n > 0 {
                share = share.min(avail[l] / *n as f64);
            }
        }
        // Ceilings below the share saturate first.
        let mut min_ceiling = f64::INFINITY;
        for (i, f) in flows.iter().enumerate() {
            if let Some((_, cap)) = f {
                if !fixed[i] {
                    min_ceiling = min_ceiling.min(*cap);
                }
            }
        }
        let level = share.min(min_ceiling);
        assert!(
            level.is_finite() && level >= 0.0,
            "max-min failed to converge"
        );
        // Fix every flow at its ceiling if ceiling <= level, or at `level`
        // if it crosses a saturated link.
        let mut progressed = false;
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            let (route, cap) = f.expect("unfixed implies live");
            let at_ceiling = cap <= level * (1.0 + 1e-12);
            let crosses_saturated = route.iter().any(|l| {
                let lu = l.as_usize();
                unfixed_per_link[lu] > 0
                    && avail[lu] / unfixed_per_link[lu] as f64 <= level * (1.0 + 1e-12)
            });
            if at_ceiling || crosses_saturated {
                let r = if at_ceiling { cap } else { level };
                rates[i] = Some(r);
                fixed[i] = true;
                progressed = true;
                remaining -= 1;
                for l in route {
                    let lu = l.as_usize();
                    avail[lu] = (avail[lu] - r).max(0.0);
                    unfixed_per_link[lu] -= 1;
                }
            }
        }
        assert!(progressed, "max-min made no progress");
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(ids: &[u32]) -> Vec<LinkId> {
        ids.iter().map(|i| LinkId(*i)).collect()
    }

    #[test]
    fn equal_flows_split_evenly() {
        let r0 = l(&[0]);
        let r1 = l(&[0]);
        let rates = maxmin_rates(
            vec![100.0],
            vec![Some((r0.as_slice(), 1e9)), Some((r1.as_slice(), 1e9))],
        );
        assert_eq!(rates, vec![Some(50.0), Some(50.0)]);
    }

    #[test]
    fn capped_flow_returns_headroom() {
        let r0 = l(&[0]);
        let r1 = l(&[0]);
        let rates = maxmin_rates(
            vec![100.0],
            vec![Some((r0.as_slice(), 10.0)), Some((r1.as_slice(), 1e9))],
        );
        assert_eq!(rates[0], Some(10.0));
        assert_eq!(rates[1], Some(90.0));
    }

    #[test]
    fn classic_three_flow_two_link_example() {
        // Links A (cap 100) and B (cap 100). Flow 0 uses A+B, flow 1 uses
        // A, flow 2 uses B. Max-min: each link splits 50/50.
        let r0 = l(&[0, 1]);
        let r1 = l(&[0]);
        let r2 = l(&[1]);
        let rates = maxmin_rates(
            vec![100.0, 100.0],
            vec![
                Some((r0.as_slice(), 1e9)),
                Some((r1.as_slice(), 1e9)),
                Some((r2.as_slice(), 1e9)),
            ],
        );
        assert_eq!(rates, vec![Some(50.0), Some(50.0), Some(50.0)]);
    }

    #[test]
    fn asymmetric_bottlenecks() {
        // Link A cap 30 with flows 0,1; link B cap 100 with flows 1,2.
        // Progressive filling: level 15 fixes flows 0,1 (A saturated);
        // flow 2 then gets 100 - 15 = 85 on B.
        let r0 = l(&[0]);
        let r1 = l(&[0, 1]);
        let r2 = l(&[1]);
        let rates = maxmin_rates(
            vec![30.0, 100.0],
            vec![
                Some((r0.as_slice(), 1e9)),
                Some((r1.as_slice(), 1e9)),
                Some((r2.as_slice(), 1e9)),
            ],
        );
        assert_eq!(rates, vec![Some(15.0), Some(15.0), Some(85.0)]);
    }

    #[test]
    fn dead_slots_are_skipped() {
        let r0 = l(&[0]);
        let rates = maxmin_rates(vec![100.0], vec![None, Some((r0.as_slice(), 1e9)), None]);
        assert_eq!(rates, vec![None, Some(100.0), None]);
    }

    #[test]
    fn no_flows_is_fine() {
        let rates = maxmin_rates(vec![100.0], vec![]);
        assert!(rates.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Max-min invariants: (1) no link oversubscribed, (2) every flow
        /// within its ceiling, (3) every flow is bottlenecked — either at
        /// its ceiling or on some saturated link (Pareto efficiency +
        /// max-min characterization).
        #[test]
        fn maxmin_invariants(
            caps in proptest::collection::vec(1.0f64..1000.0, 1..6),
            routes in proptest::collection::vec(
                (proptest::collection::vec(0usize..6, 1..4), 0.5f64..2000.0), 1..12),
        ) {
            let nl = caps.len();
            let flows: Vec<(Vec<LinkId>, f64)> = routes
                .into_iter()
                .map(|(r, cap)| {
                    let mut r: Vec<LinkId> =
                        r.into_iter().map(|i| LinkId((i % nl) as u32)).collect();
                    r.sort_unstable();
                    r.dedup();
                    (r, cap)
                })
                .collect();
            let flow_refs: Vec<Option<(&[LinkId], f64)>> =
                flows.iter().map(|(r, c)| Some((r.as_slice(), *c))).collect();
            let rates = maxmin_rates(caps.clone(), flow_refs);

            let mut used = vec![0.0f64; nl];
            for (i, rate) in rates.iter().enumerate() {
                let rate = rate.expect("live flow has rate");
                let (route, cap) = &flows[i];
                prop_assert!(rate <= cap * (1.0 + 1e-9), "flow {i} beyond ceiling");
                prop_assert!(rate >= 0.0);
                for ln in route {
                    used[ln.as_usize()] += rate;
                }
            }
            for (ln, u) in used.iter().enumerate() {
                prop_assert!(*u <= caps[ln] * (1.0 + 1e-6),
                    "link {ln} oversubscribed: {u} > {}", caps[ln]);
            }
            // Bottleneck property.
            for (i, rate) in rates.iter().enumerate() {
                let rate = rate.unwrap();
                let (route, cap) = &flows[i];
                let at_ceiling = rate >= cap * (1.0 - 1e-9);
                let on_saturated = route.iter().any(|ln| {
                    used[ln.as_usize()] >= caps[ln.as_usize()] * (1.0 - 1e-6)
                });
                prop_assert!(at_ceiling || on_saturated,
                    "flow {i} is not bottlenecked (rate {rate}, ceiling {cap})");
            }
        }
    }
}
