//! Piece-wise linear protocol correction factors, after SMPI.
//!
//! Flow-level models are calibrated against MPI point-to-point benchmarks:
//! the achieved bandwidth and effective latency of a message depend on its
//! size (protocol switches, TCP windowing, per-packet costs). SMPI models
//! this with per-size-range multiplicative factors on the nominal link
//! latency and bandwidth; the paper credits this "tuned piece-wise linear
//! network model" for much of the accuracy improvement of the new replay
//! back-end.
//!
//! The default table below is fitted to GigE/TCP clusters of the era
//! (steeper bandwidth penalty for small messages, growing effective
//! latency for large ones). The emulated testbed and the improved replay
//! engine share it; the legacy MSG back-end deliberately ignores it
//! ([`PiecewiseFactors::raw`]), reproducing the old implementation's
//! modeling error.

/// One row of the factor table: applies to messages of size `<= max_bytes`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorRange {
    /// Upper bound (inclusive) of the message-size range, in bytes.
    pub max_bytes: u64,
    /// Multiplier on nominal bandwidth (0 < f <= 1).
    pub bandwidth_factor: f64,
    /// Multiplier on nominal latency (f >= 1).
    pub latency_factor: f64,
}

/// A piece-wise linear factor table, ordered by `max_bytes`.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseFactors {
    ranges: Vec<FactorRange>,
    /// Factors for messages larger than every range bound.
    tail: (f64, f64),
}

impl PiecewiseFactors {
    /// Builds a table from ranges (must be sorted by `max_bytes`,
    /// strictly increasing) and the asymptotic `(bandwidth, latency)`
    /// factors for larger messages.
    pub fn new(ranges: Vec<FactorRange>, tail: (f64, f64)) -> PiecewiseFactors {
        for w in ranges.windows(2) {
            assert!(
                w[0].max_bytes < w[1].max_bytes,
                "factor ranges must be strictly increasing"
            );
        }
        for r in &ranges {
            assert!(
                r.bandwidth_factor > 0.0 && r.bandwidth_factor <= 1.0,
                "bandwidth factor out of (0,1]: {}",
                r.bandwidth_factor
            );
            assert!(r.latency_factor >= 1.0, "latency factor below 1");
        }
        assert!(tail.0 > 0.0 && tail.0 <= 1.0 && tail.1 >= 1.0);
        PiecewiseFactors { ranges, tail }
    }

    /// The identity table: no protocol correction (the legacy MSG model).
    pub fn raw() -> PiecewiseFactors {
        PiecewiseFactors {
            ranges: Vec::new(),
            tail: (1.0, 1.0),
        }
    }

    /// Default factors for a GigE/TCP commodity cluster.
    pub fn gige_tcp() -> PiecewiseFactors {
        PiecewiseFactors::new(
            vec![
                FactorRange {
                    max_bytes: 1420, // one MTU payload
                    bandwidth_factor: 0.32,
                    latency_factor: 2.6,
                },
                FactorRange {
                    max_bytes: 16 * 1024,
                    bandwidth_factor: 0.55,
                    latency_factor: 2.6,
                },
                FactorRange {
                    max_bytes: 64 * 1024,
                    bandwidth_factor: 0.72,
                    latency_factor: 2.0,
                },
                FactorRange {
                    max_bytes: 1024 * 1024,
                    bandwidth_factor: 0.88,
                    latency_factor: 2.4,
                },
            ],
            (0.96, 2.8),
        )
    }

    /// `(bandwidth_factor, latency_factor)` applicable to a message of
    /// `bytes`.
    pub fn factors(&self, bytes: u64) -> (f64, f64) {
        for r in &self.ranges {
            if bytes <= r.max_bytes {
                return (r.bandwidth_factor, r.latency_factor);
            }
        }
        self.tail
    }

    /// Effective bandwidth (bytes/s) for a `bytes`-sized message over a
    /// route of nominal bottleneck `nominal_bw`.
    pub fn effective_bandwidth(&self, bytes: u64, nominal_bw: f64) -> f64 {
        self.factors(bytes).0 * nominal_bw
    }

    /// Effective latency (s) for a `bytes`-sized message over a route of
    /// nominal latency `nominal_lat`.
    pub fn effective_latency(&self, bytes: u64, nominal_lat: f64) -> f64 {
        self.factors(bytes).1 * nominal_lat
    }
}

impl Default for PiecewiseFactors {
    fn default() -> Self {
        PiecewiseFactors::gige_tcp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_is_identity() {
        let f = PiecewiseFactors::raw();
        assert_eq!(f.factors(1), (1.0, 1.0));
        assert_eq!(f.factors(u64::MAX), (1.0, 1.0));
        assert_eq!(f.effective_bandwidth(100, 5e8), 5e8);
        assert_eq!(f.effective_latency(100, 1e-5), 1e-5);
    }

    #[test]
    fn default_table_lookup() {
        let f = PiecewiseFactors::gige_tcp();
        assert_eq!(f.factors(100).0, 0.32);
        assert_eq!(f.factors(1420).0, 0.32);
        assert_eq!(f.factors(1421).0, 0.55);
        assert_eq!(f.factors(64 * 1024).0, 0.72);
        assert_eq!(f.factors(10 * 1024 * 1024), (0.96, 2.8));
    }

    #[test]
    fn bandwidth_factor_monotone_in_size() {
        let f = PiecewiseFactors::gige_tcp();
        let sizes = [1u64, 1420, 4096, 32768, 65536, 1 << 20, 1 << 24];
        let mut last = 0.0;
        for s in sizes {
            let bw = f.factors(s).0;
            assert!(bw >= last, "bandwidth factor dropped at size {s}");
            last = bw;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_ranges_rejected() {
        let _ = PiecewiseFactors::new(
            vec![
                FactorRange {
                    max_bytes: 100,
                    bandwidth_factor: 0.5,
                    latency_factor: 1.0,
                },
                FactorRange {
                    max_bytes: 100,
                    bandwidth_factor: 0.6,
                    latency_factor: 1.0,
                },
            ],
            (1.0, 1.0),
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth factor")]
    fn invalid_factor_rejected() {
        let _ = PiecewiseFactors::new(
            vec![FactorRange {
                max_bytes: 100,
                bandwidth_factor: 1.5,
                latency_factor: 1.0,
            }],
            (1.0, 1.0),
        );
    }
}
