//! The conservative parallel replay engine.
//!
//! Execution model: the trace is scanned once ([`crate::partition`]) and
//! its ranks split into coupling islands — groups that exchange no
//! messages and share no network links. Each island is a complete,
//! self-contained simulation (its own kernel/FEL shard, slab-indexed
//! runtime state, match queues, and flow network restricted to the
//! island's links), so the conservative lookahead between islands is
//! unbounded and workers never exchange event messages. Islands are
//! assigned to `min(threads, islands)` workers by longest-processing-
//! time-first on the scanned action counts; each worker replays its
//! islands to quiescence (or, when a safety window is configured,
//! advances all of them window by window between barriers — the classic
//! windowed conservative-PDES schedule, kept as a testing knob because
//! the windowed and free-running schedules are provably identical here).
//!
//! Determinism argument: restricting the sequential replay's global
//! event sequence to one island's events preserves their relative order
//! (FEL ties break by insertion sequence, and cross-island events touch
//! disjoint state — different ranks, different match queues, different
//! links — so commuting them changes nothing). Each island simulation
//! therefore pops exactly the events the sequential replay pops for
//! those ranks, in the same order, producing bit-identical simulated
//! times. Results are merged in island-index order (never worker or
//! completion order), so the output is byte-identical across thread
//! counts — and identical to the sequential path, which the differential
//! tests assert.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use platform::{HostId, LinkId, Platform};
use simkernel::obs::{merge_span_logs, Metrics, RankMappedRecorder, Recorder, RunObservation};
use simkernel::Time;
use titrace::{ActionSource, Rank, SourceError, TraceInput};
use workloads::{MpiOp, OpSource};

use crate::partition::{island_links, partition_ranks, scan_sources, Island};
use crate::{action_to_op, ReplayConfig, ReplayEngine, ReplayReport, ReplayResult};

/// Replays `input` under `config.threads` workers, falling back to the
/// sequential path when the trace yields a single island (e.g. any
/// workload with collectives) — the sequential path *is* the correct
/// degenerate schedule, and taking it keeps the single-island case
/// byte-for-byte the pre-existing code path.
///
/// # Errors
/// Fails on I/O/parse/decode errors, placement errors, or a deadlocked
/// replay.
pub(crate) fn replay_input_parallel(
    platform: &Platform,
    input: &TraceInput,
    ranks: u32,
    config: &ReplayConfig,
    record_spans: bool,
) -> Result<ReplayReport, String> {
    // Merged text would otherwise be parsed twice (scan + replay);
    // materialise it once up front.
    let materialised;
    let input = match input {
        TraceInput::MergedText(_) => {
            let trace = titrace::stream::load_trace(input, ranks).map_err(|e| e.to_string())?;
            materialised = TraceInput::Memory(Arc::new(trace));
            &materialised
        }
        other => other,
    };
    let scan = {
        let sources = titrace::stream::open_sources(input, ranks).map_err(|e| e.to_string())?;
        scan_sources(sources)?
    };
    let hosts: Vec<HostId> = config.placement.assign(platform, ranks)?;
    let part = partition_ranks(&scan, platform, &hosts);
    if part.islands.len() <= 1 || config.threads <= 1 {
        let sources = titrace::stream::open_sources(input, ranks).map_err(|e| e.to_string())?;
        return crate::replay_sources_observed(platform, sources, config, record_spans);
    }

    // Longest-processing-time-first island assignment. Deterministic,
    // and irrelevant to the output: merging happens in island order.
    let workers = config.threads.min(part.islands.len());
    let mut order: Vec<usize> = (0..part.islands.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(part.islands[i].actions), i));
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut load = vec![0u64; workers];
    for i in order {
        let w = (0..workers).min_by_key(|&w| (load[w], w)).unwrap();
        assignment[w].push(i);
        load[w] += part.islands[i].actions.max(1);
    }

    // Distribute the per-rank cursors to their islands.
    let mut cursors: Vec<Option<Box<dyn ActionSource>>> =
        titrace::stream::open_sources(input, ranks)
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(Some)
            .collect();
    let fault: Arc<Mutex<Option<(Rank, SourceError)>>> = Arc::new(Mutex::new(None));
    // `dyn OpSource` is not `Send`, so jobs carry the raw `ActionSource`
    // cursors (whose trait requires `Send`) and each worker wraps them
    // into op sources on its own thread.
    struct IslandJob {
        index: usize,
        ranks: Arc<Vec<u32>>,
        hosts: Vec<HostId>,
        links: Vec<LinkId>,
        cursors: Vec<Box<dyn ActionSource>>,
    }
    let mut jobs: Vec<Option<IslandJob>> = Vec::with_capacity(part.islands.len());
    for (index, island) in part.islands.iter().enumerate() {
        let island_ranks = Arc::new(island.ranks.clone());
        let island_cursors = island
            .ranks
            .iter()
            .map(|&r| cursors[r as usize].take().expect("rank in two islands"))
            .collect();
        jobs.push(Some(IslandJob {
            index,
            ranks: island_ranks,
            hosts: island.ranks.iter().map(|&r| hosts[r as usize]).collect(),
            links: island_links(platform, &hosts, island),
            cursors: island_cursors,
        }));
    }

    let total = part.islands.len();
    let window = config.window_s;
    let finished = AtomicUsize::new(0);
    let barrier = Barrier::new(workers);
    let results: Mutex<Vec<(usize, Result<IslandDone, String>)>> =
        Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|s| {
        for worker_islands in &assignment {
            let jobs_for_worker: Vec<IslandJob> = worker_islands
                .iter()
                .map(|&i| jobs[i].take().expect("island assigned twice"))
                .collect();
            let (finished, barrier, results) = (&finished, &barrier, &results);
            let fault = Arc::clone(&fault);
            s.spawn(move || {
                struct WorkerRun {
                    index: usize,
                    ranks: Arc<Vec<u32>>,
                    done: bool,
                    run: EngineRun,
                }
                let mut runs: Vec<WorkerRun> = jobs_for_worker
                    .into_iter()
                    .map(|job| {
                        let recorder: Option<Box<dyn Recorder>> = record_spans.then(|| {
                            Box::new(RankMappedRecorder::new(ranks, job.ranks.to_vec()))
                                as Box<dyn Recorder>
                        });
                        let sources: Vec<Box<dyn OpSource>> = job
                            .cursors
                            .into_iter()
                            .zip(job.ranks.iter())
                            .map(|(inner, &r)| {
                                Box::new(PartitionOpSource {
                                    inner,
                                    rank: Rank(r),
                                    island_ranks: Arc::clone(&job.ranks),
                                    fault: Arc::clone(&fault),
                                }) as Box<dyn OpSource>
                            })
                            .collect();
                        let mut run =
                            prepare_island(platform, &job.hosts, sources, config, recorder);
                        run.restrict_links(&job.links);
                        WorkerRun {
                            index: job.index,
                            ranks: job.ranks,
                            done: false,
                            run,
                        }
                    })
                    .collect();
                match window {
                    None => {
                        // Unbounded lookahead: run each island straight
                        // to quiescence, no synchronization at all.
                        for r in &mut runs {
                            r.run.advance(Time::NEVER);
                            r.done = true;
                        }
                    }
                    Some(w) => {
                        // Windowed conservative schedule: advance every
                        // island to the k-th barrier time, then wait for
                        // the other workers. The first barrier publishes
                        // this round's completions; the second keeps a
                        // fast worker's next-round updates from racing
                        // the termination check.
                        let mut k = 1u64;
                        loop {
                            for r in &mut runs {
                                if !r.done && r.run.advance(Time::from_secs(w * k as f64)) {
                                    r.done = true;
                                    finished.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                            barrier.wait();
                            let all_done = finished.load(Ordering::SeqCst) == total;
                            barrier.wait();
                            if all_done {
                                break;
                            }
                            k += 1;
                        }
                    }
                }
                for r in runs {
                    let (index, island_ranks) = (r.index, r.ranks);
                    let outcome = r.run.finalize().map_err(|e| {
                        // The engine reports partition-local rank ids;
                        // give the island's global ranks for context.
                        format!("partition {index} (global ranks {island_ranks:?}): {e}")
                    });
                    results
                        .lock()
                        .expect("results poisoned")
                        .push((index, outcome));
                }
            });
        }
    });

    // A cursor fault truncates its rank's stream; report the root cause
    // rather than the engine's secondary deadlock diagnosis.
    if let Some((rank, e)) = fault.lock().expect("fault slot poisoned").take() {
        return Err(format!("rank {rank} trace stream failed: {e}"));
    }
    let mut done = results.into_inner().expect("results poisoned");
    done.sort_by_key(|(i, _)| *i);
    let mut islands_done = Vec::with_capacity(total);
    for (_, outcome) in done {
        islands_done.push(outcome?);
    }
    Ok(merge_islands(config, ranks, &part.islands, islands_done))
}

/// What finishing one island yields before the deterministic merge.
struct IslandDone {
    /// Per-rank finish times, island-local order.
    rank_times: Vec<f64>,
    messages: u64,
    events: u64,
    obs: RunObservation,
}

/// One island's engine run, unified over the two back-ends.
enum EngineRun {
    Smpi(smpi::runner::SmpiRun),
    Msg(msgsim::runner::MsgRun),
}

impl EngineRun {
    fn restrict_links(&mut self, links: &[LinkId]) {
        match self {
            EngineRun::Smpi(r) => r.restrict_links(links),
            EngineRun::Msg(r) => r.restrict_links(links),
        }
    }

    fn advance(&mut self, horizon: Time) -> bool {
        match self {
            EngineRun::Smpi(r) => r.advance(horizon),
            EngineRun::Msg(r) => r.advance(horizon),
        }
    }

    fn finalize(self) -> Result<IslandDone, String> {
        match self {
            EngineRun::Smpi(r) => {
                let (res, obs) = r.finalize()?;
                Ok(IslandDone {
                    rank_times: res.rank_times,
                    messages: res.stats.messages,
                    events: res.events,
                    obs,
                })
            }
            EngineRun::Msg(r) => {
                let (res, obs) = r.finalize()?;
                Ok(IslandDone {
                    rank_times: res.rank_times,
                    messages: res.stats.messages,
                    events: res.events,
                    obs,
                })
            }
        }
    }
}

/// Prepares one island's simulation with the same engine configuration
/// the sequential [`crate::run_engine`] would build.
fn prepare_island(
    platform: &Platform,
    hosts: &[HostId],
    sources: Vec<Box<dyn OpSource>>,
    config: &ReplayConfig,
    recorder: Option<Box<dyn Recorder>>,
) -> EngineRun {
    let hooks = Box::new(smpi::FixedRateHooks::uniform(
        config.rate,
        hosts.len() as u32,
    ));
    match config.engine {
        ReplayEngine::Smpi => {
            let mut smpi_cfg = smpi::SmpiConfig::smpi_replay();
            smpi_cfg.copy = config.copy_model;
            smpi_cfg.sharing = config.sharing;
            smpi_cfg.fel = config.fel;
            smpi_cfg.collective_agg = config.collective_agg;
            EngineRun::Smpi(smpi::prepare_smpi(
                platform, hosts, sources, smpi_cfg, hooks, recorder,
            ))
        }
        ReplayEngine::Msg => {
            let mut msg_cfg = msgsim::MsgConfig::legacy();
            msg_cfg.sharing = config.sharing;
            msg_cfg.fel = config.fel;
            msg_cfg.collective_agg = config.collective_agg;
            EngineRun::Msg(msgsim::prepare_msg(
                platform, hosts, sources, msg_cfg, hooks, recorder,
            ))
        }
    }
}

/// Merges per-island outcomes — always in island-index order, never
/// worker or completion order — into the exact report the sequential
/// path produces.
fn merge_islands(
    config: &ReplayConfig,
    ranks: u32,
    islands: &[Island],
    done: Vec<IslandDone>,
) -> ReplayReport {
    let mut rank_times = vec![0.0f64; ranks as usize];
    for (island, d) in islands.iter().zip(&done) {
        for (&r, &t) in island.ranks.iter().zip(&d.rank_times) {
            rank_times[r as usize] = t;
        }
    }
    // Same fold, in the same global rank order, as the sequential
    // runners — bit-identical total.
    let total_time = rank_times.iter().copied().fold(0.0, f64::max);
    let engine_name = match config.engine {
        ReplayEngine::Smpi => "smpi",
        ReplayEngine::Msg => "msg",
    };
    let mut metrics = Metrics::new(engine_name, ranks);
    metrics.simulated_time_s = total_time;
    let mut messages = 0u64;
    let mut events = 0u64;
    for d in &done {
        messages += d.messages;
        events += d.events;
        let m = &d.obs.metrics;
        metrics.events_processed += m.events_processed;
        metrics.queue_compactions += m.queue_compactions;
        metrics.fel_profile_enabled |= m.fel_profile_enabled;
        metrics.fel.scheduled += m.fel.scheduled;
        metrics.fel.superseded += m.fel.superseded;
        metrics.fel.popped += m.fel.popped;
        metrics.fel.stale_popped += m.fel.stale_popped;
        metrics.fel.spills += m.fel.spills;
        metrics.fel.bucket_sorts += m.fel.bucket_sorts;
        metrics.fel.reseeds += m.fel.reseeds;
        metrics.fel.compactions += m.fel.compactions;
        metrics.messages += m.messages;
        metrics.eager_messages += m.eager_messages;
        metrics.rendezvous_messages += m.rendezvous_messages;
        metrics.bytes += m.bytes;
        metrics.collectives += m.collectives;
        metrics.flows_created += m.flows_created;
        metrics.flows_resolved += m.flows_resolved;
        metrics.sharing_resolves += m.sharing_resolves;
        metrics.sharing_rate_updates += m.sharing_rate_updates;
        metrics.sharing_flushes += m.sharing_flushes;
        // High-water marks are per-island maxima: islands run their own
        // network models, so the global figure is a fold, not a sum (and
        // legitimately differs from a sequential replay's, which sees all
        // islands' flows in one model).
        metrics.live_flow_hwm = metrics.live_flow_hwm.max(m.live_flow_hwm);
        metrics.live_entity_hwm = metrics.live_entity_hwm.max(m.live_entity_hwm);
        metrics.agg_formed += m.agg_formed;
        metrics.agg_members += m.agg_members;
        metrics.agg_splits += m.agg_splits;
        metrics.match_depth_tracked |= m.match_depth_tracked;
        metrics.max_unexpected_depth = metrics.max_unexpected_depth.max(m.max_unexpected_depth);
        metrics.max_posted_depth = metrics.max_posted_depth.max(m.max_posted_depth);
    }
    let spans = {
        let logs: Vec<_> = done.into_iter().filter_map(|d| d.obs.spans).collect();
        if logs.is_empty() {
            None
        } else {
            Some(merge_span_logs(logs))
        }
    };
    metrics.recorder_counts = spans.as_ref().map(|l| l.counts());
    ReplayReport {
        result: ReplayResult {
            time: total_time,
            rank_times,
            messages,
            events,
        },
        metrics,
        spans,
    }
}

/// An [`OpSource`] over one rank's [`ActionSource`] cursor that remaps
/// global peer ranks to the island-local ids the engine runs under.
/// Cursor faults park in the shared slot, exactly like the sequential
/// [`crate::StreamOpSource`].
struct PartitionOpSource {
    inner: Box<dyn ActionSource>,
    /// Global rank, for fault attribution.
    rank: Rank,
    /// The island's member ranks, ascending (global ids).
    island_ranks: Arc<Vec<u32>>,
    fault: Arc<Mutex<Option<(Rank, SourceError)>>>,
}

impl OpSource for PartitionOpSource {
    fn next_op(&mut self) -> Option<MpiOp> {
        match self.inner.next_action() {
            Ok(Some(a)) => Some(remap_op(action_to_op(&a), &self.island_ranks)),
            Ok(None) => None,
            Err(e) => {
                let mut slot = self.fault.lock().expect("fault slot poisoned");
                if slot.is_none() {
                    *slot = Some((self.rank, e));
                }
                None
            }
        }
    }
}

fn local_rank(island_ranks: &[u32], global: u32) -> u32 {
    island_ranks
        .binary_search(&global)
        .expect("peer rank outside its island — partitioning bug") as u32
}

/// Rewrites an op's peer ranks from global to island-local ids.
/// Collectives cannot appear here (any collective collapses the trace to
/// a single island, which takes the sequential path), but roots are
/// remapped anyway for defence in depth.
fn remap_op(op: MpiOp, island_ranks: &[u32]) -> MpiOp {
    match op {
        MpiOp::Send { dst, bytes } => MpiOp::Send {
            dst: local_rank(island_ranks, dst),
            bytes,
        },
        MpiOp::Isend { dst, bytes } => MpiOp::Isend {
            dst: local_rank(island_ranks, dst),
            bytes,
        },
        MpiOp::Recv { src, bytes } => MpiOp::Recv {
            src: local_rank(island_ranks, src),
            bytes,
        },
        MpiOp::Irecv { src, bytes } => MpiOp::Irecv {
            src: local_rank(island_ranks, src),
            bytes,
        },
        MpiOp::Bcast { bytes, root } => MpiOp::Bcast {
            bytes,
            root: local_rank(island_ranks, root),
        },
        MpiOp::Reduce { bytes, root } => MpiOp::Reduce {
            bytes,
            root: local_rank(island_ranks, root),
        },
        MpiOp::Gather { bytes, root } => MpiOp::Gather {
            bytes,
            root: local_rank(island_ranks, root),
        },
        other => other,
    }
}
