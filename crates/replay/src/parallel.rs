//! The conservative parallel replay engine.
//!
//! Execution model: the trace is scanned once ([`crate::partition`]) and
//! its ranks split into coupling islands — groups that exchange no
//! messages and share no network links. Each island is a complete,
//! self-contained simulation (its own kernel/FEL shard, slab-indexed
//! runtime state, match queues, and flow network restricted to the
//! island's links), so the conservative lookahead between islands is
//! unbounded and workers never exchange event messages. Islands are
//! assigned to `min(threads, islands)` workers by longest-processing-
//! time-first on the scanned action counts; each worker replays its
//! islands to quiescence (or, when a safety window is configured,
//! advances all of them window by window between barriers — the classic
//! windowed conservative-PDES schedule, kept as a testing knob because
//! the windowed and free-running schedules are provably identical here).
//!
//! Determinism argument: restricting the sequential replay's global
//! event sequence to one island's events preserves their relative order
//! (FEL ties break by insertion sequence, and cross-island events touch
//! disjoint state — different ranks, different match queues, different
//! links — so commuting them changes nothing). Each island simulation
//! therefore pops exactly the events the sequential replay pops for
//! those ranks, in the same order, producing bit-identical simulated
//! times. Results are merged in island-index order (never worker or
//! completion order), so the output is byte-identical across thread
//! counts — and identical to the sequential path, which the differential
//! tests assert.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use platform::{HostId, LinkId, Platform};
use simkernel::obs::{merge_span_logs, Metrics, RankMappedRecorder, Recorder, RunObservation};
use simkernel::Time;
use smpi::{CrossArrival, CrossEnvelope};
use titrace::{ActionSource, Rank, SourceError, TraceInput};
use workloads::{MpiOp, OpSource};

use simkernel::telemetry::Stopwatch;

use crate::partition::{
    island_links, partition_ranks, plan_subshards, scan_sources, CommScan, Island,
};
use crate::profile::{ReplayProfile, WorkerProfile};
use crate::{action_to_op, PdesStats, ReplayConfig, ReplayEngine, ReplayReport, ReplayResult};

/// Replays `input` under `config.threads` workers, falling back to the
/// sequential path when the trace yields a single island (e.g. any
/// workload with collectives) — the sequential path *is* the correct
/// degenerate schedule, and taking it keeps the single-island case
/// byte-for-byte the pre-existing code path.
///
/// # Errors
/// Fails on I/O/parse/decode errors, placement errors, or a deadlocked
/// replay.
pub(crate) fn replay_input_parallel(
    platform: &Platform,
    input: &TraceInput,
    ranks: u32,
    config: &ReplayConfig,
    record_spans: bool,
    profile: bool,
) -> Result<ReplayReport, String> {
    let run_sw = Stopwatch::start(profile);
    // Merged text would otherwise be parsed twice (scan + replay);
    // materialise it once up front.
    let materialised;
    let input = match input {
        TraceInput::MergedText(_) => {
            let trace = titrace::stream::load_trace(input, ranks).map_err(|e| e.to_string())?;
            materialised = TraceInput::Memory(Arc::new(trace));
            &materialised
        }
        other => other,
    };
    let scan = {
        let sources = titrace::stream::open_sources(input, ranks).map_err(|e| e.to_string())?;
        scan_sources(sources)?
    };
    let hosts: Vec<HostId> = config.placement.assign(platform, ranks)?;
    let part = partition_ranks(&scan, platform, &hosts);
    if part.islands.len() <= 1 || config.threads <= 1 {
        // One coupled component. Before giving up on parallelism, try
        // the windowed conservative engine: if the trace/platform pair
        // certifies a sub-shard plan, the component itself is replayed
        // across threads — bit-identically. Any gate failure falls back
        // to the unchanged sequential path.
        if config.threads > 1 {
            if let Some(report) = try_replay_windowed(
                platform,
                input,
                ranks,
                &scan,
                &hosts,
                config,
                record_spans,
                profile,
            )? {
                return Ok(report);
            }
        }
        let sources = titrace::stream::open_sources(input, ranks).map_err(|e| e.to_string())?;
        let mut report = crate::replay_sources_observed(platform, sources, config, record_spans)?;
        if profile {
            report.profile = Some(ReplayProfile::sequential(
                run_sw.elapsed_s(),
                ranks as usize,
            ));
        }
        return Ok(report);
    }

    // Longest-processing-time-first island assignment. Deterministic,
    // and irrelevant to the output: merging happens in island order.
    let workers = config.threads.min(part.islands.len());
    let mut order: Vec<usize> = (0..part.islands.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(part.islands[i].actions), i));
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut load = vec![0u64; workers];
    for i in order {
        let w = (0..workers).min_by_key(|&w| (load[w], w)).unwrap();
        assignment[w].push(i);
        load[w] += part.islands[i].actions.max(1);
    }

    // Distribute the per-rank cursors to their islands.
    let mut cursors: Vec<Option<Box<dyn ActionSource>>> =
        titrace::stream::open_sources(input, ranks)
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(Some)
            .collect();
    let fault: Arc<Mutex<Option<(Rank, SourceError)>>> = Arc::new(Mutex::new(None));
    // `dyn OpSource` is not `Send`, so jobs carry the raw `ActionSource`
    // cursors (whose trait requires `Send`) and each worker wraps them
    // into op sources on its own thread.
    struct IslandJob {
        index: usize,
        ranks: Arc<Vec<u32>>,
        hosts: Vec<HostId>,
        links: Vec<LinkId>,
        cursors: Vec<Box<dyn ActionSource>>,
    }
    let mut jobs: Vec<Option<IslandJob>> = Vec::with_capacity(part.islands.len());
    for (index, island) in part.islands.iter().enumerate() {
        let island_ranks = Arc::new(island.ranks.clone());
        let island_cursors = island
            .ranks
            .iter()
            .map(|&r| cursors[r as usize].take().expect("rank in two islands"))
            .collect();
        jobs.push(Some(IslandJob {
            index,
            ranks: island_ranks,
            hosts: island.ranks.iter().map(|&r| hosts[r as usize]).collect(),
            links: island_links(platform, &hosts, island),
            cursors: island_cursors,
        }));
    }

    let total = part.islands.len();
    let window = config.window_s;
    let finished = AtomicUsize::new(0);
    let rounds = AtomicU64::new(0);
    let barrier = Barrier::new(workers);
    let results: Mutex<Vec<(usize, Result<IslandDone, String>)>> =
        Mutex::new(Vec::with_capacity(total));
    let profiles: Mutex<Vec<WorkerProfile>> = Mutex::new(Vec::with_capacity(workers));
    std::thread::scope(|s| {
        for (windex, worker_islands) in assignment.iter().enumerate() {
            let jobs_for_worker: Vec<IslandJob> = worker_islands
                .iter()
                .map(|&i| jobs[i].take().expect("island assigned twice"))
                .collect();
            let (finished, barrier, results) = (&finished, &barrier, &results);
            let (rounds, profiles) = (&rounds, &profiles);
            let fault = Arc::clone(&fault);
            s.spawn(move || {
                let wall = Stopwatch::start(profile);
                let mut work_s = 0.0f64;
                let mut barrier_s = 0.0f64;
                let mut advances = 0u64;
                struct WorkerRun {
                    index: usize,
                    ranks: Arc<Vec<u32>>,
                    done: bool,
                    run: EngineRun,
                }
                let prep = Stopwatch::start(profile);
                let mut runs: Vec<WorkerRun> = jobs_for_worker
                    .into_iter()
                    .map(|job| {
                        let recorder: Option<Box<dyn Recorder>> = record_spans.then(|| {
                            Box::new(RankMappedRecorder::new(ranks, job.ranks.to_vec()))
                                as Box<dyn Recorder>
                        });
                        let sources: Vec<Box<dyn OpSource>> = job
                            .cursors
                            .into_iter()
                            .zip(job.ranks.iter())
                            .map(|(inner, &r)| {
                                Box::new(PartitionOpSource {
                                    inner,
                                    rank: Rank(r),
                                    island_ranks: Arc::clone(&job.ranks),
                                    fault: Arc::clone(&fault),
                                }) as Box<dyn OpSource>
                            })
                            .collect();
                        let mut run =
                            prepare_island(platform, &job.hosts, sources, config, recorder);
                        run.restrict_links(&job.links);
                        WorkerRun {
                            index: job.index,
                            ranks: job.ranks,
                            done: false,
                            run,
                        }
                    })
                    .collect();
                work_s += prep.elapsed_s();
                match window {
                    None => {
                        // Unbounded lookahead: run each island straight
                        // to quiescence, no synchronization at all.
                        for r in &mut runs {
                            let sw = Stopwatch::start(profile);
                            r.run.advance(Time::NEVER);
                            work_s += sw.elapsed_s();
                            advances += 1;
                            r.done = true;
                        }
                    }
                    Some(w) => {
                        // Windowed conservative schedule: advance every
                        // island to the k-th barrier time, then wait for
                        // the other workers. The first barrier publishes
                        // this round's completions; the second keeps a
                        // fast worker's next-round updates from racing
                        // the termination check.
                        let mut k = 1u64;
                        loop {
                            let sw = Stopwatch::start(profile);
                            for r in &mut runs {
                                if r.done {
                                    continue;
                                }
                                advances += 1;
                                if r.run.advance(Time::from_secs(w * k as f64)) {
                                    r.done = true;
                                    finished.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                            work_s += sw.elapsed_s();
                            if windex == 0 {
                                rounds.fetch_add(1, Ordering::Relaxed);
                            }
                            let bw = Stopwatch::start(profile);
                            barrier.wait();
                            let all_done = finished.load(Ordering::SeqCst) == total;
                            barrier.wait();
                            barrier_s += bw.elapsed_s();
                            if all_done {
                                break;
                            }
                            k += 1;
                        }
                    }
                }
                let islands_run = runs.len();
                let ranks_run: usize = runs.iter().map(|r| r.ranks.len()).sum();
                let fin = Stopwatch::start(profile);
                for r in runs {
                    let (index, island_ranks) = (r.index, r.ranks);
                    let outcome = r.run.finalize().map_err(|e| {
                        // The engine reports partition-local rank ids;
                        // give the island's global ranks for context.
                        format!("partition {index} (global ranks {island_ranks:?}): {e}")
                    });
                    results
                        .lock()
                        .expect("results poisoned")
                        .push((index, outcome));
                }
                work_s += fin.elapsed_s();
                if profile {
                    profiles
                        .lock()
                        .expect("profiles poisoned")
                        .push(WorkerProfile {
                            worker: windex,
                            islands: islands_run,
                            ranks: ranks_run,
                            work_s,
                            barrier_s,
                            mailbox_s: 0.0,
                            wall_s: wall.elapsed_s(),
                            advances,
                        });
                }
            });
        }
    });

    // A cursor fault truncates its rank's stream; report the root cause
    // rather than the engine's secondary deadlock diagnosis.
    if let Some((rank, e)) = fault.lock().expect("fault slot poisoned").take() {
        return Err(format!("rank {rank} trace stream failed: {e}"));
    }
    let mut done = results.into_inner().expect("results poisoned");
    done.sort_by_key(|(i, _)| *i);
    let mut islands_done = Vec::with_capacity(total);
    for (_, outcome) in done {
        islands_done.push(outcome?);
    }
    let mut report = merge_islands(config, ranks, &part.islands, islands_done);
    if profile {
        let mut worker_profiles = profiles.into_inner().expect("profiles poisoned");
        worker_profiles.sort_by_key(|w| w.worker);
        report.profile = Some(ReplayProfile {
            mode: "islands",
            wall_s: run_sw.elapsed_s(),
            windows: rounds.into_inner(),
            workers: worker_profiles,
        });
    }
    Ok(report)
}

/// Windowed conservative replay of one fully coupled component, split
/// into sub-shards that exchange cross-shard traffic through mailboxes
/// at window barriers (the tentpole of the windowed-PDES engine; see
/// [`plan_subshards`] for the certificate that makes it exact).
///
/// Returns `Ok(None)` when the engine cannot run exactly — wrong
/// back-end, span recording requested (the rank-mapped recorder has no
/// cross-shard story yet), or the shard-plan certificate fails — so the
/// caller falls back to the sequential path. `Ok(Some(report))` is
/// bit-identical to that sequential path's report.
///
/// Execution model, per window round (3 barriers):
///
/// 1. every shard publishes its next pending event time (`+inf` when
///    quiesced) and waits;
/// 2. the leader folds the global minimum `m` and posts the horizon
///    `h = m + w`, where `w <= lookahead/2`; a global `+inf` minimum
///    means no shard has work *and* no cross traffic is in flight
///    (pending flows and arrival timers are events), i.e. termination;
/// 3. every shard advances to `h`, drains its cross-shard outbox into
///    the destination shards' inboxes, and waits;
/// 4. after the barrier each shard sorts its inbox deterministically
///    (envelopes by `(src, dst, ch, seq)`, arrivals by
///    `(at, src, dst, ch, seq)`) and injects — envelopes first, so an
///    arrival never beats its own envelope.
///
/// Safety of the horizon: any cross-shard send processed in this window
/// happened at `tf >= m`, and its arrival is `tf + lat` with
/// `lat >= lookahead` (protocol latency factors are `>= 1`), so the
/// arrival lands at or beyond `m + lookahead >= m + 2w > h` — strictly
/// past every horizon that could consume it too early.
#[allow(clippy::too_many_arguments)]
fn try_replay_windowed(
    platform: &Platform,
    input: &TraceInput,
    ranks: u32,
    scan: &CommScan,
    hosts: &[HostId],
    config: &ReplayConfig,
    record_spans: bool,
    profile: bool,
) -> Result<Option<ReplayReport>, String> {
    if config.engine != ReplayEngine::Smpi || record_spans {
        return Ok(None);
    }
    let run_sw = Stopwatch::start(profile);
    let smpi_cfg = smpi_config(config);
    let plan = match plan_subshards(scan, platform, hosts, config.threads, |b| {
        smpi_cfg.is_eager(b)
    }) {
        Ok(plan) => plan,
        Err(_) => return Ok(None),
    };
    // Half the certified lookahead keeps injected arrivals *strictly*
    // past the horizon (see the safety note above); a user window only
    // ever tightens it.
    let window = match config.window_s {
        Some(user) => user.min(plan.lookahead_s / 2.0),
        None => plan.lookahead_s / 2.0,
    };
    let nshards = plan.shards.len();
    let mut cursors: Vec<Option<Box<dyn ActionSource>>> =
        titrace::stream::open_sources(input, ranks)
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(Some)
            .collect();
    let all_ranks: Arc<Vec<u32>> = Arc::new((0..ranks).collect());
    let fault: Arc<Mutex<Option<(Rank, SourceError)>>> = Arc::new(Mutex::new(None));

    // Shared round state. Published minima and the horizon travel as
    // f64 bit patterns (all values are non-negative or +inf, so decoding
    // and comparing as floats is exact).
    let mins: Vec<AtomicU64> = (0..nshards).map(|_| AtomicU64::new(0)).collect();
    let horizon = AtomicU64::new(0);
    let windows = AtomicU64::new(0);
    let mailbox_envelopes = AtomicU64::new(0);
    let mailbox_arrivals = AtomicU64::new(0);
    let barrier = Barrier::new(nshards);
    type Inbox = (Vec<CrossEnvelope>, Vec<CrossArrival>);
    let inboxes: Vec<Mutex<Inbox>> = (0..nshards)
        .map(|_| Mutex::new((Vec::new(), Vec::new())))
        .collect();
    let results: Mutex<Vec<(usize, Result<IslandDone, String>)>> =
        Mutex::new(Vec::with_capacity(nshards));
    let profiles: Mutex<Vec<WorkerProfile>> = Mutex::new(Vec::with_capacity(nshards));

    std::thread::scope(|s| {
        for (index, shard) in plan.shards.iter().enumerate() {
            let shard_cursors: Vec<Box<dyn ActionSource>> = shard
                .ranks
                .iter()
                .map(|&r| cursors[r as usize].take().expect("rank in two shards"))
                .collect();
            let (mins, horizon, windows, barrier, inboxes, results) =
                (&mins, &horizon, &windows, &barrier, &inboxes, &results);
            let profiles = &profiles;
            let (mailbox_envelopes, mailbox_arrivals) = (&mailbox_envelopes, &mailbox_arrivals);
            let (plan, smpi_cfg) = (&plan, &smpi_cfg);
            let fault = Arc::clone(&fault);
            let all_ranks = Arc::clone(&all_ranks);
            s.spawn(move || {
                let wall = Stopwatch::start(profile);
                let mut work_s = 0.0f64;
                let mut barrier_s = 0.0f64;
                let mut mailbox_s = 0.0f64;
                let mut advances = 0u64;
                let prep = Stopwatch::start(profile);
                // Peer ranks keep their global ids (the shard world
                // spans the whole component), so the identity remap of
                // `PartitionOpSource` only contributes fault parking.
                let sources: Vec<Box<dyn OpSource>> = shard_cursors
                    .into_iter()
                    .zip(shard.ranks.iter())
                    .map(|(inner, &r)| {
                        Box::new(PartitionOpSource {
                            inner,
                            rank: Rank(r),
                            island_ranks: Arc::clone(&all_ranks),
                            fault: Arc::clone(&fault),
                        }) as Box<dyn OpSource>
                    })
                    .collect();
                let local: Vec<bool> = (0..ranks)
                    .map(|r| plan.rank_shard[r as usize] == index as u32)
                    .collect();
                // Hooks over the full component (not the local subset):
                // byte-identical compute plans to the merged run's.
                let hooks = Box::new(smpi::FixedRateHooks::uniform(
                    config.rate,
                    hosts.len() as u32,
                ));
                let mut run = smpi::prepare_smpi_shard(
                    platform,
                    hosts,
                    local,
                    sources,
                    smpi_cfg.clone(),
                    hooks,
                );
                run.restrict_links(&shard.links);
                work_s += prep.elapsed_s();
                loop {
                    let next = run
                        .next_pending_time()
                        .map_or(f64::INFINITY, |t| t.as_secs());
                    mins[index].store(next.to_bits(), Ordering::SeqCst);
                    let bw = Stopwatch::start(profile);
                    barrier.wait();
                    barrier_s += bw.elapsed_s();
                    if index == 0 {
                        let m = mins
                            .iter()
                            .map(|a| f64::from_bits(a.load(Ordering::SeqCst)))
                            .fold(f64::INFINITY, f64::min);
                        let h = if m.is_finite() { m + window } else { m };
                        horizon.store(h.to_bits(), Ordering::SeqCst);
                        if h.is_finite() {
                            windows.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    let bw = Stopwatch::start(profile);
                    barrier.wait();
                    barrier_s += bw.elapsed_s();
                    let h = f64::from_bits(horizon.load(Ordering::SeqCst));
                    if !h.is_finite() {
                        break;
                    }
                    let sw = Stopwatch::start(profile);
                    run.advance(Time::from_secs(h));
                    work_s += sw.elapsed_s();
                    advances += 1;
                    let mb = Stopwatch::start(profile);
                    let (envs, arrs) = run.drain_cross_outbox();
                    mailbox_envelopes.fetch_add(envs.len() as u64, Ordering::SeqCst);
                    mailbox_arrivals.fetch_add(arrs.len() as u64, Ordering::SeqCst);
                    for e in envs {
                        let dst = plan.rank_shard[e.dst as usize] as usize;
                        inboxes[dst].lock().expect("inbox poisoned").0.push(e);
                    }
                    for a in arrs {
                        let dst = plan.rank_shard[a.dst as usize] as usize;
                        inboxes[dst].lock().expect("inbox poisoned").1.push(a);
                    }
                    mailbox_s += mb.elapsed_s();
                    let bw = Stopwatch::start(profile);
                    barrier.wait();
                    barrier_s += bw.elapsed_s();
                    let mb = Stopwatch::start(profile);
                    let (mut envs, mut arrs) =
                        std::mem::take(&mut *inboxes[index].lock().expect("inbox poisoned"));
                    // Deterministic injection order regardless of which
                    // peer shard drained first. Envelopes carry no time
                    // (their per-channel seq is the whole order);
                    // arrivals replay in global (time, sender) order,
                    // matching the merged kernel's tie-break for
                    // same-instant deliveries from distinct senders.
                    envs.sort_unstable_by_key(|e| (e.src, e.dst, e.ch, e.seq));
                    arrs.sort_unstable_by_key(|a| (a.at, a.src, a.dst, a.ch, a.seq));
                    for e in &envs {
                        run.inject_cross_envelope(e);
                    }
                    for a in &arrs {
                        run.inject_cross_arrival(a);
                    }
                    mailbox_s += mb.elapsed_s();
                }
                let fin = Stopwatch::start(profile);
                let outcome = run
                    .finalize()
                    .map(|(res, obs)| IslandDone {
                        rank_times: res.rank_times,
                        messages: res.stats.messages,
                        events: res.events,
                        obs,
                    })
                    .map_err(|e| format!("shard {index} (global ranks {:?}): {e}", shard.ranks));
                work_s += fin.elapsed_s();
                results
                    .lock()
                    .expect("results poisoned")
                    .push((index, outcome));
                if profile {
                    profiles
                        .lock()
                        .expect("profiles poisoned")
                        .push(WorkerProfile {
                            worker: index,
                            islands: 1,
                            ranks: shard.ranks.len(),
                            work_s,
                            barrier_s,
                            mailbox_s,
                            wall_s: wall.elapsed_s(),
                            advances,
                        });
                }
            });
        }
    });

    if let Some((rank, e)) = fault.lock().expect("fault slot poisoned").take() {
        return Err(format!("rank {rank} trace stream failed: {e}"));
    }
    let mut done = results.into_inner().expect("results poisoned");
    done.sort_by_key(|(i, _)| *i);
    let mut shards_done = Vec::with_capacity(nshards);
    for (_, outcome) in done {
        shards_done.push(outcome?);
    }
    // Sub-shards merge exactly like islands: scatter by member rank,
    // sum the counters, fold the high-water marks.
    let pseudo_islands: Vec<Island> = plan
        .shards
        .iter()
        .map(|s| Island {
            ranks: s.ranks.clone(),
            actions: s.actions,
        })
        .collect();
    let mut report = merge_islands(config, ranks, &pseudo_islands, shards_done);
    let window_rounds = windows.into_inner();
    report.pdes = Some(PdesStats {
        shards: nshards,
        windows: window_rounds,
        mailbox_envelopes: mailbox_envelopes.into_inner(),
        mailbox_arrivals: mailbox_arrivals.into_inner(),
        lookahead_s: plan.lookahead_s,
        window_s: window,
    });
    if profile {
        let mut worker_profiles = profiles.into_inner().expect("profiles poisoned");
        worker_profiles.sort_by_key(|w| w.worker);
        report.profile = Some(ReplayProfile {
            mode: "windowed",
            wall_s: run_sw.elapsed_s(),
            windows: window_rounds,
            workers: worker_profiles,
        });
    }
    Ok(Some(report))
}

/// What finishing one island yields before the deterministic merge.
struct IslandDone {
    /// Per-rank finish times, island-local order.
    rank_times: Vec<f64>,
    messages: u64,
    events: u64,
    obs: RunObservation,
}

/// One island's engine run, unified over the two back-ends.
enum EngineRun {
    Smpi(smpi::runner::SmpiRun),
    Msg(msgsim::runner::MsgRun),
}

impl EngineRun {
    fn restrict_links(&mut self, links: &[LinkId]) {
        match self {
            EngineRun::Smpi(r) => r.restrict_links(links),
            EngineRun::Msg(r) => r.restrict_links(links),
        }
    }

    fn advance(&mut self, horizon: Time) -> bool {
        match self {
            EngineRun::Smpi(r) => r.advance(horizon),
            EngineRun::Msg(r) => r.advance(horizon),
        }
    }

    fn finalize(self) -> Result<IslandDone, String> {
        match self {
            EngineRun::Smpi(r) => {
                let (res, obs) = r.finalize()?;
                Ok(IslandDone {
                    rank_times: res.rank_times,
                    messages: res.stats.messages,
                    events: res.events,
                    obs,
                })
            }
            EngineRun::Msg(r) => {
                let (res, obs) = r.finalize()?;
                Ok(IslandDone {
                    rank_times: res.rank_times,
                    messages: res.stats.messages,
                    events: res.events,
                    obs,
                })
            }
        }
    }
}

/// The SMPI protocol configuration the sequential [`crate::run_engine`]
/// would build for `config` — shared by the island and windowed paths so
/// all three construct byte-identical engines.
fn smpi_config(config: &ReplayConfig) -> smpi::SmpiConfig {
    let mut smpi_cfg = smpi::SmpiConfig::smpi_replay();
    smpi_cfg.copy = config.copy_model;
    smpi_cfg.sharing = config.sharing;
    smpi_cfg.fel = config.fel;
    smpi_cfg.collective_agg = config.collective_agg;
    smpi_cfg
}

/// Prepares one island's simulation with the same engine configuration
/// the sequential [`crate::run_engine`] would build.
fn prepare_island(
    platform: &Platform,
    hosts: &[HostId],
    sources: Vec<Box<dyn OpSource>>,
    config: &ReplayConfig,
    recorder: Option<Box<dyn Recorder>>,
) -> EngineRun {
    let hooks = Box::new(smpi::FixedRateHooks::uniform(
        config.rate,
        hosts.len() as u32,
    ));
    match config.engine {
        ReplayEngine::Smpi => EngineRun::Smpi(smpi::prepare_smpi(
            platform,
            hosts,
            sources,
            smpi_config(config),
            hooks,
            recorder,
        )),
        ReplayEngine::Msg => {
            let mut msg_cfg = msgsim::MsgConfig::legacy();
            msg_cfg.sharing = config.sharing;
            msg_cfg.fel = config.fel;
            msg_cfg.collective_agg = config.collective_agg;
            EngineRun::Msg(msgsim::prepare_msg(
                platform, hosts, sources, msg_cfg, hooks, recorder,
            ))
        }
    }
}

/// Merges per-island outcomes — always in island-index order, never
/// worker or completion order — into the exact report the sequential
/// path produces.
fn merge_islands(
    config: &ReplayConfig,
    ranks: u32,
    islands: &[Island],
    done: Vec<IslandDone>,
) -> ReplayReport {
    let mut rank_times = vec![0.0f64; ranks as usize];
    for (island, d) in islands.iter().zip(&done) {
        for (&r, &t) in island.ranks.iter().zip(&d.rank_times) {
            rank_times[r as usize] = t;
        }
    }
    // Same fold, in the same global rank order, as the sequential
    // runners — bit-identical total.
    let total_time = rank_times.iter().copied().fold(0.0, f64::max);
    let engine_name = match config.engine {
        ReplayEngine::Smpi => "smpi",
        ReplayEngine::Msg => "msg",
    };
    let mut metrics = Metrics::new(engine_name, ranks);
    metrics.simulated_time_s = total_time;
    let mut messages = 0u64;
    let mut events = 0u64;
    for d in &done {
        messages += d.messages;
        events += d.events;
        let m = &d.obs.metrics;
        metrics.events_processed += m.events_processed;
        metrics.queue_compactions += m.queue_compactions;
        metrics.fel_profile_enabled |= m.fel_profile_enabled;
        metrics.fel.scheduled += m.fel.scheduled;
        metrics.fel.superseded += m.fel.superseded;
        metrics.fel.popped += m.fel.popped;
        metrics.fel.stale_popped += m.fel.stale_popped;
        metrics.fel.spills += m.fel.spills;
        metrics.fel.bucket_sorts += m.fel.bucket_sorts;
        metrics.fel.reseeds += m.fel.reseeds;
        metrics.fel.compactions += m.fel.compactions;
        metrics.messages += m.messages;
        metrics.eager_messages += m.eager_messages;
        metrics.rendezvous_messages += m.rendezvous_messages;
        metrics.bytes += m.bytes;
        metrics.collectives += m.collectives;
        metrics.flows_created += m.flows_created;
        metrics.flows_resolved += m.flows_resolved;
        metrics.sharing_resolves += m.sharing_resolves;
        metrics.sharing_rate_updates += m.sharing_rate_updates;
        metrics.sharing_flushes += m.sharing_flushes;
        // High-water marks are per-island maxima: islands run their own
        // network models, so the global figure is a fold, not a sum (and
        // legitimately differs from a sequential replay's, which sees all
        // islands' flows in one model).
        metrics.live_flow_hwm = metrics.live_flow_hwm.max(m.live_flow_hwm);
        metrics.live_entity_hwm = metrics.live_entity_hwm.max(m.live_entity_hwm);
        metrics.agg_formed += m.agg_formed;
        metrics.agg_members += m.agg_members;
        metrics.agg_splits += m.agg_splits;
        metrics.match_depth_tracked |= m.match_depth_tracked;
        metrics.max_unexpected_depth = metrics.max_unexpected_depth.max(m.max_unexpected_depth);
        metrics.max_posted_depth = metrics.max_posted_depth.max(m.max_posted_depth);
    }
    let spans = {
        let logs: Vec<_> = done.into_iter().filter_map(|d| d.obs.spans).collect();
        if logs.is_empty() {
            None
        } else {
            Some(merge_span_logs(logs))
        }
    };
    metrics.recorder_counts = spans.as_ref().map(|l| l.counts());
    ReplayReport {
        result: ReplayResult {
            time: total_time,
            rank_times,
            messages,
            events,
        },
        metrics,
        spans,
        pdes: None,
        profile: None,
    }
}

/// An [`OpSource`] over one rank's [`ActionSource`] cursor that remaps
/// global peer ranks to the island-local ids the engine runs under.
/// Cursor faults park in the shared slot, exactly like the sequential
/// [`crate::StreamOpSource`].
struct PartitionOpSource {
    inner: Box<dyn ActionSource>,
    /// Global rank, for fault attribution.
    rank: Rank,
    /// The island's member ranks, ascending (global ids).
    island_ranks: Arc<Vec<u32>>,
    fault: Arc<Mutex<Option<(Rank, SourceError)>>>,
}

impl OpSource for PartitionOpSource {
    fn next_op(&mut self) -> Option<MpiOp> {
        match self.inner.next_action() {
            Ok(Some(a)) => Some(remap_op(action_to_op(&a), &self.island_ranks)),
            Ok(None) => None,
            Err(e) => {
                let mut slot = self.fault.lock().expect("fault slot poisoned");
                if slot.is_none() {
                    *slot = Some((self.rank, e));
                }
                None
            }
        }
    }
}

fn local_rank(island_ranks: &[u32], global: u32) -> u32 {
    island_ranks
        .binary_search(&global)
        .expect("peer rank outside its island — partitioning bug") as u32
}

/// Rewrites an op's peer ranks from global to island-local ids.
/// Collectives cannot appear here (any collective collapses the trace to
/// a single island, which takes the sequential path), but roots are
/// remapped anyway for defence in depth.
fn remap_op(op: MpiOp, island_ranks: &[u32]) -> MpiOp {
    match op {
        MpiOp::Send { dst, bytes } => MpiOp::Send {
            dst: local_rank(island_ranks, dst),
            bytes,
        },
        MpiOp::Isend { dst, bytes } => MpiOp::Isend {
            dst: local_rank(island_ranks, dst),
            bytes,
        },
        MpiOp::Recv { src, bytes } => MpiOp::Recv {
            src: local_rank(island_ranks, src),
            bytes,
        },
        MpiOp::Irecv { src, bytes } => MpiOp::Irecv {
            src: local_rank(island_ranks, src),
            bytes,
        },
        MpiOp::Bcast { bytes, root } => MpiOp::Bcast {
            bytes,
            root: local_rank(island_ranks, root),
        },
        MpiOp::Reduce { bytes, root } => MpiOp::Reduce {
            bytes,
            root: local_rank(island_ranks, root),
        },
        MpiOp::Gather { bytes, root } => MpiOp::Gather {
            bytes,
            root: local_rank(island_ranks, root),
        },
        other => other,
    }
}
