//! Rank partitioning for conservative parallel replay.
//!
//! A time-independent trace fixes every communication partner up front,
//! so the rank set can be split — before any simulation — into *coupling
//! islands*: groups of ranks that exchange no messages with, and share
//! no network links with, any rank outside the group. Two islands can
//! never influence each other's simulated state (no messages, and no
//! bandwidth interaction, since the sharing solver only couples flows on
//! common links), so the effective lookahead between them is unbounded
//! and each island replays independently — the conservative-PDES null-
//! message bound degenerates to "no synchronization needed". The
//! [`crate::parallel`] engine schedules islands across worker threads;
//! this module computes the islands and the quality figures
//! (`titreplay inspect` reports them) that predict parallel efficiency.
//!
//! Islands are computed as connected components of the union of two
//! relations over ranks:
//!
//! 1. **communication** — `a ~ b` when the trace has a send or receive
//!    between `a` and `b`; any collective couples *all* ranks;
//! 2. **link sharing** — `a ~ b` when the platform routes of their
//!    observed transfers share a network link (e.g. every pair of nodes
//!    in a flat cluster couples through the shared backbone).

use platform::{HostId, LinkId, Platform};
use titrace::{Action, ActionSource, Rank};

/// The communication shape of a trace, gathered by one streaming pass
/// over the per-rank action cursors (no simulation involved).
#[derive(Debug, Clone)]
pub struct CommScan {
    /// Number of ranks scanned.
    pub ranks: u32,
    /// Actions per rank (the event-count estimate used for balance).
    pub actions_per_rank: Vec<u64>,
    /// Deduplicated directed communication edges `(src, dst)` observed
    /// in send *and* receive actions, in ascending order.
    pub edges: Vec<(u32, u32)>,
    /// Largest message observed on the matching `edges` entry (the
    /// eager-protocol certificate input of [`plan_subshards`]).
    pub edge_max_bytes: Vec<u64>,
    /// Whether any collective appears (a collective couples all ranks).
    pub has_collective: bool,
}

/// Scans `sources` (consuming them) into a [`CommScan`].
///
/// # Errors
/// Fails on a cursor fault (I/O, parse, decode) or an out-of-range peer
/// rank.
pub fn scan_sources(sources: Vec<Box<dyn ActionSource>>) -> Result<CommScan, String> {
    let ranks = sources.len() as u32;
    let mut actions_per_rank = vec![0u64; ranks as usize];
    let mut edges = std::collections::BTreeMap::new();
    let mut has_collective = false;
    let check = |rank: u32, peer: Rank| -> Result<u32, String> {
        if peer.0 >= ranks {
            return Err(format!(
                "rank {rank} references peer {} outside 0..{ranks}",
                peer.0
            ));
        }
        Ok(peer.0)
    };
    for (r, mut source) in sources.into_iter().enumerate() {
        let r = r as u32;
        while let Some(action) = source
            .next_action()
            .map_err(|e| format!("rank {r} trace stream failed: {e}"))?
        {
            actions_per_rank[r as usize] += 1;
            match action {
                Action::Send { dst, bytes } | Action::Isend { dst, bytes } => {
                    let e = edges.entry((r, check(r, dst)?)).or_insert(0u64);
                    *e = (*e).max(bytes);
                }
                Action::Recv { src, bytes } | Action::Irecv { src, bytes } => {
                    let e = edges.entry((check(r, src)?, r)).or_insert(0u64);
                    *e = (*e).max(bytes);
                }
                Action::Barrier
                | Action::Bcast { .. }
                | Action::Reduce { .. }
                | Action::Allreduce { .. }
                | Action::Alltoall { .. }
                | Action::Gather { .. }
                | Action::Allgather { .. } => has_collective = true,
                Action::Init | Action::Finalize | Action::Compute { .. } => {}
                Action::Wait | Action::WaitAll => {}
            }
        }
    }
    let (edges, edge_max_bytes) = edges.into_iter().unzip();
    Ok(CommScan {
        ranks,
        actions_per_rank,
        edges,
        edge_max_bytes,
        has_collective,
    })
}

/// One coupling island: ranks that communicate (transitively) only among
/// themselves and whose transfers touch no link used by another island.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Island {
    /// Member ranks, ascending.
    pub ranks: Vec<u32>,
    /// Total trace actions over the members (load estimate for the
    /// worker assignment and the balance report).
    pub actions: u64,
}

/// The complete partition of a trace's ranks into coupling islands.
#[derive(Debug, Clone)]
pub struct RankPartition {
    /// Islands ordered by their smallest member rank.
    pub islands: Vec<Island>,
    /// `rank_island[r]` = index into `islands` owning rank `r`.
    pub rank_island: Vec<u32>,
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: u32) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Attach the larger root under the smaller so island indices
            // track smallest member ranks deterministically.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// Partitions the scanned ranks into coupling islands for a concrete
/// placement (`hosts[r]` = host of rank `r`). Deterministic: depends
/// only on the scan, the platform routes, and the placement — never on
/// thread counts or timing.
pub fn partition_ranks(scan: &CommScan, platform: &Platform, hosts: &[HostId]) -> RankPartition {
    assert_eq!(hosts.len(), scan.ranks as usize, "one host per rank");
    let mut uf = UnionFind::new(scan.ranks);
    if scan.has_collective {
        for r in 1..scan.ranks {
            uf.union(0, r);
        }
    }
    // Couple communicating ranks, and ranks whose transfer routes share
    // a link (first-seen rank per link is the link's representative).
    let mut link_owner: Vec<Option<u32>> = vec![None; platform.links().len()];
    let mut route = Vec::new();
    for &(src, dst) in &scan.edges {
        uf.union(src, dst);
        platform.route(hosts[src as usize], hosts[dst as usize], &mut route);
        for l in &route {
            match link_owner[l.as_usize()] {
                Some(owner) => uf.union(owner, src),
                None => link_owner[l.as_usize()] = Some(src),
            }
        }
    }
    let mut island_of_root = std::collections::BTreeMap::new();
    let mut islands: Vec<Island> = Vec::new();
    let mut rank_island = vec![0u32; scan.ranks as usize];
    for r in 0..scan.ranks {
        let root = uf.find(r);
        let idx = *island_of_root.entry(root).or_insert_with(|| {
            islands.push(Island {
                ranks: Vec::new(),
                actions: 0,
            });
            (islands.len() - 1) as u32
        });
        islands[idx as usize].ranks.push(r);
        islands[idx as usize].actions += scan.actions_per_rank[r as usize];
        rank_island[r as usize] = idx;
    }
    RankPartition {
        islands,
        rank_island,
    }
}

/// Every link any transfer inside the island can use: the union of the
/// platform routes between all ordered host pairs of the island's
/// members. A superset of the links actually used (routes of observed
/// edges), installed as the island's [`netmodel::FlowNet`] restriction
/// so a partitioning bug fails loudly instead of silently diverging.
pub fn island_links(platform: &Platform, hosts: &[HostId], island: &Island) -> Vec<LinkId> {
    let mut seen = vec![false; platform.links().len()];
    let mut links = Vec::new();
    let mut route = Vec::new();
    for &a in &island.ranks {
        for &b in &island.ranks {
            if a == b {
                continue;
            }
            platform.route(hosts[a as usize], hosts[b as usize], &mut route);
            for l in &route {
                if !seen[l.as_usize()] {
                    seen[l.as_usize()] = true;
                    links.push(*l);
                }
            }
        }
    }
    links.sort_by_key(|l| l.as_usize());
    links
}

/// One sub-shard of a coupled component (windowed PDES; see
/// [`plan_subshards`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubShard {
    /// Member ranks, ascending, component-global ids.
    pub ranks: Vec<u32>,
    /// Total trace actions over the members (load estimate).
    pub actions: u64,
    /// Links this shard's netmodel owns: the union of the routes of
    /// every observed edge whose *sender* is local. Installed as the
    /// shard's link restriction so an ownership bug fails loudly.
    pub links: Vec<LinkId>,
}

/// A certified sub-shard plan for windowed conservative execution
/// *within* a coupled component. Unlike coupling islands, sub-shards do
/// exchange messages; the certificate in [`plan_subshards`] guarantees
/// the exchange can be replayed bit-identically through window-boundary
/// mailboxes: every cross-shard message is eager (sender-detached, so no
/// cross-shard control dependence faster than the wire), every network
/// link is exercised by exactly one shard's flows (so bandwidth sharing
/// never couples shards), and every cross-shard route carries at least
/// [`ShardPlan::lookahead_s`] of latency (the conservative window bound).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Sub-shards ordered by their smallest member rank.
    pub shards: Vec<SubShard>,
    /// `rank_shard[r]` = index into `shards` owning rank `r`.
    pub rank_shard: Vec<u32>,
    /// Conservative lookahead: the minimum *nominal* route latency over
    /// the observed cross-shard edges. Protocol latency factors are
    /// always `>= 1`, so a cross-shard message sent at `t` can never
    /// arrive before `t + lookahead_s` — the engine may safely run each
    /// shard to `min(all shards' next event) + lookahead/2` per window.
    pub lookahead_s: f64,
}

impl ShardPlan {
    /// `max/min` shard load ratio.
    pub fn balance_ratio(&self) -> f64 {
        let min = self.shards.iter().map(|s| s.actions).min().unwrap_or(0);
        let max = self.shards.iter().map(|s| s.actions).max().unwrap_or(0);
        max as f64 / min as f64
    }
}

/// Splits a fully coupled component into up to `shards` sub-shards for
/// windowed conservative execution, or explains why it cannot be done
/// exactly.
///
/// The split is host-grouped LPT: whole hosts (all ranks placed on one
/// host) are the assignment unit — so intra-host loopback traffic never
/// crosses a shard boundary — greedily placed on the least-loaded shard
/// by descending action count. Deterministic: depends only on the scan
/// and the placement.
///
/// # Errors
/// Returns a human-readable reason when the windowed-execution
/// certificate fails: collectives present, fewer than two populated
/// hosts, a cross-shard edge carrying rendezvous-size messages, a link
/// shared between two shards' flows, or a zero-latency cross-shard
/// route. Callers fall back to sequential (or island-parallel) replay.
pub fn plan_subshards(
    scan: &CommScan,
    platform: &Platform,
    hosts: &[HostId],
    shards: usize,
    eager: impl Fn(u64) -> bool,
) -> Result<ShardPlan, String> {
    assert_eq!(hosts.len(), scan.ranks as usize, "one host per rank");
    if shards < 2 {
        return Err("windowed execution needs at least two shards".into());
    }
    if scan.has_collective {
        return Err("trace contains collectives, which couple all ranks each phase".into());
    }
    // Host groups, keyed by smallest member rank for determinism.
    let mut groups: std::collections::BTreeMap<HostId, Vec<u32>> =
        std::collections::BTreeMap::new();
    for r in 0..scan.ranks {
        groups.entry(hosts[r as usize]).or_default().push(r);
    }
    if groups.len() < 2 {
        return Err("all ranks share one host; no shard boundary without loopback".into());
    }
    let mut groups: Vec<Vec<u32>> = groups.into_values().collect();
    // LPT: heaviest group first, ties broken by smallest member rank
    // (groups at this point are sorted by host id; sort_by is stable).
    let weight = |g: &[u32]| -> u64 {
        g.iter()
            .map(|&r| scan.actions_per_rank[r as usize].max(1))
            .sum()
    };
    groups.sort_by_key(|g| std::cmp::Reverse(weight(g)));
    let bins = shards.min(groups.len());
    let mut bin_ranks: Vec<Vec<u32>> = vec![Vec::new(); bins];
    let mut bin_load = vec![0u64; bins];
    for g in groups {
        let w = weight(&g);
        let lightest = (0..bins).min_by_key(|&b| (bin_load[b], b)).unwrap();
        bin_load[lightest] += w;
        bin_ranks[lightest].extend(g);
    }
    for b in &mut bin_ranks {
        b.sort_unstable();
    }
    bin_ranks.sort_by_key(|b| b[0]);
    let mut rank_shard = vec![0u32; scan.ranks as usize];
    for (i, b) in bin_ranks.iter().enumerate() {
        for &r in b {
            rank_shard[r as usize] = i as u32;
        }
    }
    // Certificate over every observed edge: eager-only cross traffic,
    // exclusive link ownership (owner = sender's shard), and a positive
    // lookahead on every cross route.
    let mut link_user: Vec<Option<u32>> = vec![None; platform.links().len()];
    let mut shard_links: Vec<Vec<LinkId>> = vec![Vec::new(); bins];
    let mut lookahead_s = f64::INFINITY;
    let mut route = Vec::new();
    for (i, &(src, dst)) in scan.edges.iter().enumerate() {
        let (ss, ds) = (rank_shard[src as usize], rank_shard[dst as usize]);
        if ss != ds {
            let bytes = scan.edge_max_bytes[i];
            if !eager(bytes) {
                return Err(format!(
                    "edge {src}->{dst} carries {bytes}-byte rendezvous messages across shards"
                ));
            }
            let lat = platform.route_latency(hosts[src as usize], hosts[dst as usize]);
            if lat <= 0.0 {
                return Err(format!("zero-latency cross-shard route {src}->{dst}"));
            }
            lookahead_s = lookahead_s.min(lat);
        }
        platform.route(hosts[src as usize], hosts[dst as usize], &mut route);
        for l in &route {
            match link_user[l.as_usize()] {
                Some(user) if user != ss => {
                    return Err(format!(
                        "link {} carries flows of shards {user} and {ss}; \
                         bandwidth sharing would couple them",
                        l.as_usize()
                    ));
                }
                Some(_) => {}
                None => {
                    link_user[l.as_usize()] = Some(ss);
                    shard_links[ss as usize].push(*l);
                }
            }
        }
    }
    if lookahead_s == f64::INFINITY {
        return Err("no cross-shard traffic; ranks decouple into islands instead".into());
    }
    for links in &mut shard_links {
        links.sort_by_key(|l| l.as_usize());
    }
    let shards = bin_ranks
        .into_iter()
        .zip(shard_links)
        .map(|(ranks, links)| SubShard {
            actions: ranks
                .iter()
                .map(|&r| scan.actions_per_rank[r as usize])
                .sum(),
            ranks,
            links,
        })
        .collect();
    Ok(ShardPlan {
        shards,
        rank_shard,
        lookahead_s,
    })
}

/// Partition-quality figures for `titreplay inspect`: how much
/// parallelism the trace/platform pair exposes and how balanced it is.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    /// Number of coupling islands (the parallelism ceiling).
    pub islands: usize,
    /// Conservative lookahead bound between partitions: the minimum
    /// end-to-end route latency between any two ranks in *different*
    /// islands. `None` for a single island (no partition boundary).
    /// Because islands share no links, the engine never has to wait for
    /// this bound — it is reported as the classic conservative-PDES
    /// safety window the partitioning renders unbounded.
    pub lookahead_s: Option<f64>,
    /// Smallest per-island action count (event-count balance, low side).
    pub min_island_actions: u64,
    /// Largest per-island action count (event-count balance, high side).
    pub max_island_actions: u64,
    /// Rank count of each island, in island order.
    pub island_ranks: Vec<usize>,
    /// Action count of each island, in island order.
    pub island_actions: Vec<u64>,
}

impl PartitionReport {
    /// `max/min` island load ratio; `inf` when some island is empty.
    pub fn balance_ratio(&self) -> f64 {
        self.max_island_actions as f64 / self.min_island_actions as f64
    }
}

/// Computes the [`PartitionReport`] for a partition under a placement.
pub fn partition_report(
    partition: &RankPartition,
    platform: &Platform,
    hosts: &[HostId],
) -> PartitionReport {
    let mut lookahead_s: Option<f64> = None;
    let ranks = partition.rank_island.len();
    for a in 0..ranks {
        for b in 0..ranks {
            if partition.rank_island[a] == partition.rank_island[b] {
                continue;
            }
            let lat = platform.route_latency(hosts[a], hosts[b]);
            lookahead_s = Some(match lookahead_s {
                Some(cur) => cur.min(lat),
                None => lat,
            });
        }
    }
    let min = partition
        .islands
        .iter()
        .map(|i| i.actions)
        .min()
        .unwrap_or(0);
    let max = partition
        .islands
        .iter()
        .map(|i| i.actions)
        .max()
        .unwrap_or(0);
    PartitionReport {
        islands: partition.islands.len(),
        lookahead_s,
        min_island_actions: min,
        max_island_actions: max,
        island_ranks: partition.islands.iter().map(|i| i.ranks.len()).collect(),
        island_actions: partition.islands.iter().map(|i| i.actions).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::topology::{cabinet_cluster, flat_cluster, CabinetClusterSpec, FlatClusterSpec};
    use std::sync::Arc;
    use titrace::{Trace, TraceInput};

    fn scan_trace(trace: Trace) -> CommScan {
        let input = TraceInput::Memory(Arc::new(trace));
        let ranks = match &input {
            TraceInput::Memory(t) => t.ranks(),
            _ => unreachable!(),
        };
        let sources = titrace::stream::open_sources(&input, ranks).unwrap();
        scan_sources(sources).unwrap()
    }

    fn cabinets(cabs: u32, per: u32) -> Platform {
        cabinet_cluster(&CabinetClusterSpec {
            name: "c".into(),
            cabinets: cabs,
            nodes_per_cabinet: per,
            host_speed: 1e9,
            cores: 1,
            cache_bytes: 1 << 20,
            link_bandwidth: 1.25e9,
            link_latency: 1e-5,
            cabinet_bandwidth: 1e10,
            cabinet_latency: 2e-6,
            backbone_bandwidth: 1e11,
            backbone_latency: 1e-6,
        })
    }

    fn flat(nodes: u32) -> Platform {
        flat_cluster(&FlatClusterSpec {
            name: "f".into(),
            nodes,
            host_speed: 1e9,
            cores: 1,
            cache_bytes: 1 << 20,
            link_bandwidth: 1e8,
            link_latency: 1e-5,
            backbone_bandwidth: 1e9,
            backbone_latency: 1e-6,
        })
    }

    fn hosts(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    /// Two intra-cabinet rings on a cabinet cluster: one island per
    /// cabinet, with the lookahead bound set by the inter-cabinet path.
    fn ring_trace(cabs: u32, per: u32) -> Trace {
        let ranks = cabs * per;
        let mut trace = Trace::new(ranks);
        for r in 0..ranks {
            let cab = r / per;
            let right = cab * per + (r % per + 1) % per;
            trace.push(Rank(r), Action::Init);
            trace.push(
                Rank(r),
                Action::Isend {
                    dst: Rank(right),
                    bytes: 1024,
                },
            );
            trace.push(
                Rank(r),
                Action::Recv {
                    src: Rank(cab * per + (r % per + per - 1) % per),
                    bytes: 1024,
                },
            );
            trace.push(Rank(r), Action::WaitAll);
            trace.push(Rank(r), Action::Finalize);
        }
        trace
    }

    #[test]
    fn cabinet_rings_form_one_island_per_cabinet() {
        let (cabs, per) = (4, 3);
        let p = cabinets(cabs, per);
        let scan = scan_trace(ring_trace(cabs, per));
        assert!(!scan.has_collective);
        let part = partition_ranks(&scan, &p, &hosts(cabs * per));
        assert_eq!(part.islands.len(), cabs as usize);
        for (i, island) in part.islands.iter().enumerate() {
            let base = i as u32 * per;
            assert_eq!(island.ranks, (base..base + per).collect::<Vec<_>>());
        }
        let report = partition_report(&part, &p, &hosts(cabs * per));
        assert_eq!(report.islands, cabs as usize);
        // Inter-cabinet path: NIC + cabinet switch + backbone + cabinet
        // switch + NIC.
        let expect = 1e-5 + 2e-6 + 1e-6 + 2e-6 + 1e-5;
        assert!((report.lookahead_s.unwrap() - expect).abs() < 1e-12);
        assert_eq!(report.min_island_actions, report.max_island_actions);
    }

    #[test]
    fn shared_backbone_couples_flat_cluster_pairs() {
        // Disjoint comm pairs (0<->1, 2<->3) still merge into one island
        // on a flat cluster: all routes cross the shared backbone.
        let p = flat(4);
        let mut trace = Trace::new(4);
        for (a, b) in [(0u32, 1u32), (2, 3)] {
            trace.push(
                Rank(a),
                Action::Send {
                    dst: Rank(b),
                    bytes: 64,
                },
            );
            trace.push(
                Rank(b),
                Action::Recv {
                    src: Rank(a),
                    bytes: 64,
                },
            );
        }
        let part = partition_ranks(&scan_trace(trace), &p, &hosts(4));
        assert_eq!(part.islands.len(), 1);
        assert_eq!(part.islands[0].ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn collectives_couple_everything() {
        let (cabs, per) = (2, 2);
        let p = cabinets(cabs, per);
        let mut trace = ring_trace(cabs, per);
        trace.push(Rank(0), Action::Allreduce { bytes: 8 });
        let scan = scan_trace(trace);
        assert!(scan.has_collective);
        let part = partition_ranks(&scan, &p, &hosts(cabs * per));
        assert_eq!(part.islands.len(), 1);
    }

    #[test]
    fn island_links_are_disjoint_across_islands() {
        let (cabs, per) = (3, 2);
        let p = cabinets(cabs, per);
        let scan = scan_trace(ring_trace(cabs, per));
        let part = partition_ranks(&scan, &p, &hosts(cabs * per));
        let mut seen = std::collections::BTreeSet::new();
        for island in &part.islands {
            for l in island_links(&p, &hosts(cabs * per), island) {
                assert!(seen.insert(l.as_usize()), "link shared across islands");
            }
        }
        assert!(!seen.is_empty());
    }

    /// A ring over all ranks (one rank per host): fully coupled without
    /// collectives.
    fn full_ring_trace(ranks: u32, bytes: u64) -> Trace {
        let mut trace = Trace::new(ranks);
        for r in 0..ranks {
            trace.push(Rank(r), Action::Init);
            trace.push(
                Rank(r),
                Action::Irecv {
                    src: Rank((r + ranks - 1) % ranks),
                    bytes,
                },
            );
            trace.push(
                Rank(r),
                Action::Isend {
                    dst: Rank((r + 1) % ranks),
                    bytes,
                },
            );
            trace.push(Rank(r), Action::WaitAll);
            trace.push(Rank(r), Action::Finalize);
        }
        trace
    }

    fn direct(nodes: u32) -> Platform {
        platform::topology::direct_cluster(&platform::topology::DirectClusterSpec {
            name: "d".into(),
            nodes,
            host_speed: 1e9,
            cores: 1,
            cache_bytes: 1 << 20,
            link_bandwidth: 1e8,
            link_latency: 1e-5,
        })
    }

    #[test]
    fn scan_records_per_edge_max_bytes() {
        let mut trace = Trace::new(2);
        trace.push(
            Rank(0),
            Action::Send {
                dst: Rank(1),
                bytes: 100,
            },
        );
        trace.push(
            Rank(0),
            Action::Send {
                dst: Rank(1),
                bytes: 9000,
            },
        );
        trace.push(
            Rank(1),
            Action::Recv {
                src: Rank(0),
                bytes: 100,
            },
        );
        trace.push(
            Rank(1),
            Action::Recv {
                src: Rank(0),
                bytes: 9000,
            },
        );
        let scan = scan_trace(trace);
        assert_eq!(scan.edges, vec![(0, 1)]);
        assert_eq!(scan.edge_max_bytes, vec![9000]);
    }

    #[test]
    fn subshard_plan_certifies_direct_ring() {
        let n = 8u32;
        let p = direct(n);
        let scan = scan_trace(full_ring_trace(n, 1024));
        // The ring couples everything into one island on any topology.
        let part = partition_ranks(&scan, &p, &hosts(n));
        assert_eq!(part.islands.len(), 1);
        let plan = plan_subshards(&scan, &p, &hosts(n), 4, |b| b < 64 * 1024).expect("certifies");
        assert_eq!(plan.shards.len(), 4);
        assert_eq!(
            plan.shards.iter().map(|s| s.ranks.len()).sum::<usize>(),
            n as usize
        );
        // Every rank in exactly one shard; shard order by smallest rank.
        for w in plan.shards.windows(2) {
            assert!(w[0].ranks[0] < w[1].ranks[0]);
        }
        for (r, &s) in plan.rank_shard.iter().enumerate() {
            assert!(plan.shards[s as usize].ranks.contains(&(r as u32)));
        }
        // Dedicated pair links: shards own disjoint link sets.
        let mut seen = std::collections::BTreeSet::new();
        for s in &plan.shards {
            assert!(!s.links.is_empty());
            for l in &s.links {
                assert!(seen.insert(l.as_usize()), "link owned twice");
            }
        }
        // Direct route: two 10µs NIC-link hops.
        assert!((plan.lookahead_s - 2e-5).abs() < 1e-12);
        assert!(plan.balance_ratio() < 2.0, "{}", plan.balance_ratio());
    }

    #[test]
    fn subshard_plan_rejects_collectives_and_shared_links() {
        let n = 4u32;
        let scan_ring = scan_trace(full_ring_trace(n, 1024));
        // Flat cluster: every route crosses the shared backbone.
        let err = plan_subshards(&scan_ring, &flat(n), &hosts(n), 2, |b| b < 64 * 1024)
            .expect_err("backbone is shared");
        assert!(err.contains("link"), "{err}");
        // Collectives.
        let mut t = full_ring_trace(n, 1024);
        t.push(Rank(0), Action::Allreduce { bytes: 8 });
        let err = plan_subshards(&scan_trace(t), &direct(n), &hosts(n), 2, |b| b < 64 * 1024)
            .expect_err("collectives");
        assert!(err.contains("collective"), "{err}");
        // Rendezvous-size cross traffic.
        let err = plan_subshards(
            &scan_trace(full_ring_trace(n, 1 << 20)),
            &direct(n),
            &hosts(n),
            2,
            |b| b < 64 * 1024,
        )
        .expect_err("rendezvous");
        assert!(err.contains("rendezvous"), "{err}");
    }

    #[test]
    fn out_of_range_peer_is_reported() {
        let mut trace = Trace::new(2);
        trace.push(
            Rank(0),
            Action::Send {
                dst: Rank(7),
                bytes: 1,
            },
        );
        let input = TraceInput::Memory(Arc::new(trace));
        let sources = titrace::stream::open_sources(&input, 2).unwrap();
        let err = scan_sources(sources).unwrap_err();
        assert!(err.contains("outside 0..2"), "{err}");
    }
}
