//! Wall-clock profiling of replay execution.
//!
//! Where [`simkernel::obs`] answers "what did the *simulated* machine
//! do", this module answers "where did the *host* spend wall time while
//! computing that answer": per-worker work time, barrier-wait time,
//! cross-shard mailbox stall, horizon advances, and the load-imbalance
//! ratio across workers. None of it feeds back into simulated times,
//! metrics, manifests, or exports — a profiled run's deterministic
//! outputs are byte-identical to an unprofiled run's (the differential
//! tests assert this), and when profiling is off no host clock is read
//! at all (see [`simkernel::telemetry::Stopwatch`]).

/// Wall-time breakdown of one replay worker thread.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerProfile {
    /// Worker index (stable across runs; workers are spawned in
    /// assignment order).
    pub worker: usize,
    /// Islands (island mode) or sub-shards (windowed mode) this worker
    /// executed. The sequential path reports one pseudo-island.
    pub islands: usize,
    /// Global ranks this worker simulated.
    pub ranks: usize,
    /// Seconds spent doing simulation work: preparing engines, advancing
    /// them, and finalizing results.
    pub work_s: f64,
    /// Seconds spent blocked on window barriers waiting for peers.
    pub barrier_s: f64,
    /// Seconds spent draining, sorting, and injecting cross-shard
    /// mailbox traffic (windowed mode only).
    pub mailbox_s: f64,
    /// Wall-clock seconds from worker start to worker exit.
    pub wall_s: f64,
    /// `advance(horizon)` calls issued (one per island per window round;
    /// one per island in free-running mode).
    pub advances: u64,
}

/// Wall-clock profile of one replay run, attached to
/// [`crate::ReplayReport::profile`] by the profiled entry points.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayProfile {
    /// Which execution path ran: `"sequential"`, `"islands"`, or
    /// `"windowed"`.
    pub mode: &'static str,
    /// Wall-clock seconds of the whole replay section (scan, partition,
    /// worker execution, merge).
    pub wall_s: f64,
    /// Window rounds executed (0 when free-running).
    pub windows: u64,
    /// Per-worker breakdowns, in worker-index order.
    pub workers: Vec<WorkerProfile>,
}

impl ReplayProfile {
    /// A single-worker profile for the sequential path, where all wall
    /// time is work time.
    pub fn sequential(wall_s: f64, ranks: usize) -> Self {
        ReplayProfile {
            mode: "sequential",
            wall_s,
            windows: 0,
            workers: vec![WorkerProfile {
                worker: 0,
                islands: 1,
                ranks,
                work_s: wall_s,
                barrier_s: 0.0,
                mailbox_s: 0.0,
                wall_s,
                advances: 1,
            }],
        }
    }

    /// Load-imbalance ratio: max worker work time over mean worker work
    /// time (1.0 = perfectly balanced; 1.0 for empty/idle runs).
    pub fn imbalance(&self) -> f64 {
        let n = self.workers.len();
        if n == 0 {
            return 1.0;
        }
        let total: f64 = self.workers.iter().map(|w| w.work_s).sum();
        let mean = total / n as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        let max = self.workers.iter().map(|w| w.work_s).fold(0.0, f64::max);
        max / mean
    }

    /// Deterministic-shape JSON rendering (field set and order are
    /// fixed; the wall-clock *values* are inherently run-dependent).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.workers.len() * 160);
        out.push_str("{\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!("  \"wall_s\": {},\n", json_f64(self.wall_s)));
        out.push_str(&format!("  \"windows\": {},\n", self.windows));
        out.push_str(&format!(
            "  \"imbalance\": {},\n",
            json_f64(self.imbalance())
        ));
        out.push_str("  \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"worker\": {}, \"islands\": {}, \"ranks\": {}, \"work_s\": {}, \"barrier_s\": {}, \"mailbox_s\": {}, \"wall_s\": {}, \"advances\": {}}}{}\n",
                w.worker,
                w.islands,
                w.ranks,
                json_f64(w.work_s),
                json_f64(w.barrier_s),
                json_f64(w.mailbox_s),
                json_f64(w.wall_s),
                w.advances,
                if i + 1 < self.workers.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable table for `titreplay inspect --profile`.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(256 + self.workers.len() * 96);
        out.push_str(&format!(
            "replay profile: mode={} wall={:.3}ms windows={} imbalance={:.2}\n",
            self.mode,
            self.wall_s * 1e3,
            self.windows,
            self.imbalance()
        ));
        out.push_str(
            "  worker  islands  ranks     work_ms  barrier_ms  mailbox_ms     wall_ms  advances\n",
        );
        for w in &self.workers {
            out.push_str(&format!(
                "  {:>6}  {:>7}  {:>5}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.3}  {:>8}\n",
                w.worker,
                w.islands,
                w.ranks,
                w.work_s * 1e3,
                w.barrier_s * 1e3,
                w.mailbox_s * 1e3,
                w.wall_s * 1e3,
                w.advances
            ));
        }
        out
    }
}

/// Finite plain-decimal float rendering for the profile JSON.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(i: usize, work: f64) -> WorkerProfile {
        WorkerProfile {
            worker: i,
            islands: 1,
            ranks: 4,
            work_s: work,
            barrier_s: 0.001,
            mailbox_s: 0.0,
            wall_s: work + 0.001,
            advances: 3,
        }
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let p = ReplayProfile {
            mode: "islands",
            wall_s: 0.4,
            windows: 0,
            workers: vec![worker(0, 0.3), worker(1, 0.1)],
        };
        assert!((p.imbalance() - 1.5).abs() < 1e-12);
        assert_eq!(ReplayProfile::sequential(0.0, 2).imbalance(), 1.0);
    }

    #[test]
    fn json_shape_is_fixed() {
        let p = ReplayProfile {
            mode: "windowed",
            wall_s: 0.25,
            windows: 7,
            workers: vec![worker(0, 0.2), worker(1, 0.21)],
        };
        let j = p.to_json();
        assert!(j.contains("\"mode\": \"windowed\""));
        assert!(j.contains("\"windows\": 7"));
        assert!(j.contains("\"worker\": 0"));
        assert!(j.contains("\"worker\": 1"));
        assert!(j.contains("\"imbalance\":"));
        assert!(j.ends_with("]\n}\n"));
    }

    #[test]
    fn text_table_lists_every_worker() {
        let p = ReplayProfile {
            mode: "islands",
            wall_s: 0.4,
            windows: 0,
            workers: vec![worker(0, 0.3), worker(1, 0.1)],
        };
        let t = p.render_text();
        assert!(t.contains("mode=islands"));
        assert!(t.contains("barrier_ms"));
        assert_eq!(t.lines().count(), 4);
    }
}
