//! Replaying time-independent traces on simulated platforms.
//!
//! A replay turns a [`titrace::Trace`] back into per-rank op streams and
//! executes them on a simulated platform with a calibrated instruction
//! rate. Two back-ends are provided, matching the paper's before/after:
//!
//! * [`ReplayEngine::Msg`] — the first implementation: MSG mailbox
//!   semantics, asynchronous small sends, raw network model, monolithic
//!   collectives ([`msgsim`]);
//! * [`ReplayEngine::Smpi`] — the rewrite inside SMPI: detached eager
//!   sends, rendezvous for large messages, piece-wise linear network
//!   factors, collectives as point-to-point algorithms ([`smpi`]) — and
//!   the one acknowledged gap, the unmodeled eager memory-copy time.
//!
//! The user-facing workflow mirrors the paper's Section 3.3 `smpirun`
//! invocation: a platform description, a host list, one trace, one
//! calibrated rate — and a simulated execution time out.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod parallel;
pub mod partition;
pub mod profile;

use std::sync::{Arc, Mutex};

use calibrate::Calibration;
use platform::{HostId, Placement, Platform};
use simkernel::obs::{CriticalPath, Manifest, Metrics, RunObservation, SpanLog};
use smpi::FixedRateHooks;
use titrace::{Action, ActionSource, Rank, SourceError, Trace, TraceInput};
use workloads::{ComputeBlock, MpiOp, OpSource};

/// Which simulation back-end executes the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayEngine {
    /// The legacy MSG-based replay (first implementation).
    Msg,
    /// The improved SMPI-based replay.
    Smpi,
}

/// A replay request.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Back-end selection.
    pub engine: ReplayEngine,
    /// Calibrated instruction rate, instructions/second (uniform across
    /// ranks, as in the paper's homogeneous clusters).
    pub rate: f64,
    /// Rank placement on the platform.
    pub placement: Placement,
    /// Eager memory-copy model for the SMPI back-end — the paper's first
    /// future-work item ("implement the missing feature to model the
    /// time taken in sends and receives to copy data in memory in the
    /// eager mode of MPI"). `None` reproduces the paper's published
    /// behaviour; `Some` closes the Figures 6-7 underestimation.
    pub copy_model: Option<smpi::CopyCost>,
    /// Bandwidth-sharing policy of the network model, applied to either
    /// back-end. [`netmodel::SharingPolicy::Bottleneck`] reproduces the
    /// paper's published behaviour; the max-min policies trade speed for
    /// exact progressive-filling fairness.
    pub sharing: netmodel::SharingPolicy,
    /// Future-event-list implementation of the simulation kernel,
    /// forwarded to whichever back-end runs. Pop order is bit-identical
    /// across variants, so this only affects replay wall time.
    pub fel: simkernel::FelImpl,
    /// Worker threads for the partitioned parallel replay engine
    /// (see [`partition`] / `parallel`). `1` (the default) runs the
    /// unchanged sequential path; `>= 2` partitions the ranks into
    /// coupling islands and replays islands concurrently. Results are
    /// bit-identical at any thread count. The constructors honour the
    /// `TITR_REPLAY_THREADS` environment variable (see
    /// [`ReplayConfig::default_threads`]).
    pub threads: usize,
    /// Simulated-seconds window between synchronization barriers of the
    /// parallel engine. `None` (the default) lets workers run their
    /// islands to quiescence in one step — safe because islands exchange
    /// no traffic, so the effective lookahead is unbounded. `Some(w)`
    /// forces windowed barrier stepping every `w` simulated seconds (a
    /// testing knob; results are identical either way).
    pub window_s: Option<f64>,
    /// Collective flow aggregation in the network model: collective
    /// phases take the deferred batch path, costing O(1) sharing solves
    /// and O(1) live entities per phase instead of O(P). Results are
    /// bit-identical with the flag on or off (differential tests gate
    /// it); off by default to keep the constituent path the reference.
    pub collective_agg: bool,
}

impl ReplayConfig {
    /// The thread count the constructors start from: the
    /// `TITR_REPLAY_THREADS` environment variable when set to a positive
    /// integer, else 1 (sequential). Mirrors the `TITR_SWEEP_THREADS`
    /// convention of the sweep/ingest layers, and lets CI rerun the
    /// whole replay suite under the parallel engine without code
    /// changes.
    pub fn default_threads() -> usize {
        std::env::var("TITR_REPLAY_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    }

    /// A stable 64-bit digest of the *semantic* configuration — the
    /// fields that shape the simulated result: engine, rate, placement,
    /// copy model, sharing policy, and collective aggregation. The
    /// execution-strategy fields (`fel`, `threads`, `window_s`) are
    /// deliberately excluded: results are bit-identical across them
    /// (pinned by the differential suites), so two configs that differ
    /// only there are the *same* what-if question and must share a memo
    /// entry in the prediction service.
    ///
    /// The digest is FNV-1a over a canonical field rendering with floats
    /// taken as their IEEE-754 bit patterns, so it is stable across
    /// processes, architectures, and formatting changes — any semantic
    /// field change changes the hash.
    pub fn canonical_hash(&self) -> u64 {
        let mut fnv = titrace::binfmt::Fnv1a::new();
        let mut field = |name: &str, value: &[u8]| {
            fnv.update(name.as_bytes());
            fnv.update(b"=");
            fnv.update(value);
            fnv.update(b";");
        };
        field(
            "engine",
            match self.engine {
                ReplayEngine::Msg => b"msg",
                ReplayEngine::Smpi => b"smpi",
            },
        );
        field("rate", &self.rate.to_bits().to_le_bytes());
        field(
            "placement",
            match self.placement {
                Placement::OnePerNode => b"one-per-node".as_slice(),
                Placement::PackCores => b"pack-cores",
                Placement::RoundRobin => b"round-robin",
            },
        );
        match self.copy_model {
            None => field("copy", b"none"),
            Some(c) => {
                field("copy.base", &c.base_seconds.to_bits().to_le_bytes());
                field("copy.bps", &c.bytes_per_second.to_bits().to_le_bytes());
            }
        }
        field(
            "sharing",
            match self.sharing {
                netmodel::SharingPolicy::Bottleneck => b"bottleneck".as_slice(),
                netmodel::SharingPolicy::MaxMin => b"maxmin",
                netmodel::SharingPolicy::MaxMinFull => b"maxmin-full",
            },
        );
        field(
            "collective_agg",
            if self.collective_agg { b"1" } else { b"0" },
        );
        fnv.digest()
    }

    /// Config for the legacy pipeline.
    pub fn legacy(rate: f64) -> ReplayConfig {
        ReplayConfig {
            engine: ReplayEngine::Msg,
            rate,
            placement: Placement::OnePerNode,
            copy_model: None,
            sharing: netmodel::SharingPolicy::Bottleneck,
            fel: simkernel::FelImpl::default(),
            threads: ReplayConfig::default_threads(),
            window_s: None,
            collective_agg: false,
        }
    }

    /// Config for the improved pipeline.
    pub fn improved(rate: f64) -> ReplayConfig {
        ReplayConfig {
            engine: ReplayEngine::Smpi,
            rate,
            placement: Placement::OnePerNode,
            copy_model: None,
            sharing: netmodel::SharingPolicy::Bottleneck,
            fel: simkernel::FelImpl::default(),
            threads: ReplayConfig::default_threads(),
            window_s: None,
            collective_agg: false,
        }
    }

    /// Config for the improved pipeline *with* the eager copy model (the
    /// implemented future work). `copy` should come from a memcpy
    /// calibration of the target platform.
    pub fn improved_with_copy(rate: f64, copy: smpi::CopyCost) -> ReplayConfig {
        ReplayConfig {
            engine: ReplayEngine::Smpi,
            rate,
            placement: Placement::OnePerNode,
            copy_model: Some(copy),
            sharing: netmodel::SharingPolicy::Bottleneck,
            fel: simkernel::FelImpl::default(),
            threads: ReplayConfig::default_threads(),
            window_s: None,
            collective_agg: false,
        }
    }

    /// Builds a config from a [`Calibration`] and the instance it will
    /// replay (the calibration decides the rate per instance).
    pub fn from_calibration(
        engine: ReplayEngine,
        calibration: &Calibration,
        instance: &workloads::lu::LuConfig,
    ) -> ReplayConfig {
        ReplayConfig {
            engine,
            rate: calibration.rate_for(instance),
            placement: Placement::OnePerNode,
            copy_model: None,
            sharing: netmodel::SharingPolicy::Bottleneck,
            fel: simkernel::FelImpl::default(),
            threads: ReplayConfig::default_threads(),
            window_s: None,
            collective_agg: false,
        }
    }
}

/// Outcome of a replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayResult {
    /// Simulated execution time, seconds.
    pub time: f64,
    /// Per-rank simulated finish times.
    pub rank_times: Vec<f64>,
    /// Messages simulated.
    pub messages: u64,
    /// Simulation events processed (performance metric).
    pub events: u64,
}

/// Execution figures of the windowed-PDES engine (see
/// [`partition::plan_subshards`] and the `parallel` module). `None` on
/// every other path; the simulated results carry no trace of which path
/// ran — these numbers describe only *how* the identical answer was
/// computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdesStats {
    /// Sub-shards the coupled component was split into.
    pub shards: usize,
    /// Conservative window rounds executed.
    pub windows: u64,
    /// Cross-shard send-time envelopes exchanged through the mailboxes.
    pub mailbox_envelopes: u64,
    /// Cross-shard arrival records exchanged through the mailboxes.
    pub mailbox_arrivals: u64,
    /// Certified lookahead of the shard plan, seconds.
    pub lookahead_s: f64,
    /// Effective window width used per round, seconds.
    pub window_s: f64,
}

/// Outcome of an observed replay: the engine result plus the unified
/// observability payload (see [`simkernel::obs`]).
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The engine result, identical to what the plain entry points
    /// return.
    pub result: ReplayResult,
    /// Unified counter snapshot.
    pub metrics: Metrics,
    /// Recorded simulated-time spans (present iff span recording was
    /// requested).
    pub spans: Option<SpanLog>,
    /// Windowed-PDES execution figures when that engine ran the replay;
    /// `None` for the sequential and island-parallel paths.
    pub pdes: Option<PdesStats>,
    /// Wall-clock execution profile (present iff profiling was requested
    /// via [`replay_input_profiled`]). Purely diagnostic: simulated
    /// results carry no trace of whether it was collected.
    pub profile: Option<profile::ReplayProfile>,
}

impl ReplayReport {
    /// The makespan-determining chain through the recorded spans.
    /// `None` when spans were not recorded.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        self.spans
            .as_ref()
            .map(|log| simkernel::obs::critical_path(log, &self.result.rank_times))
    }
}

/// An [`OpSource`] reading one rank of a shared trace.
pub struct TraceSource {
    trace: Arc<Trace>,
    rank: Rank,
    next: usize,
}

impl TraceSource {
    /// A source over `rank` of `trace`.
    pub fn new(trace: Arc<Trace>, rank: Rank) -> TraceSource {
        TraceSource {
            trace,
            rank,
            next: 0,
        }
    }
}

/// Maps one trace action to the equivalent runtime op.
pub fn action_to_op(action: &Action) -> MpiOp {
    match *action {
        Action::Init => MpiOp::Init,
        Action::Finalize => MpiOp::Finalize,
        Action::Compute { amount } => MpiOp::Compute(ComputeBlock {
            instructions: amount,
            fn_calls: 0.0,
            working_set: 0,
        }),
        Action::Send { dst, bytes } => MpiOp::Send { dst: dst.0, bytes },
        Action::Isend { dst, bytes } => MpiOp::Isend { dst: dst.0, bytes },
        Action::Recv { src, bytes } => MpiOp::Recv { src: src.0, bytes },
        Action::Irecv { src, bytes } => MpiOp::Irecv { src: src.0, bytes },
        Action::Wait => MpiOp::Wait,
        Action::WaitAll => MpiOp::WaitAll,
        Action::Barrier => MpiOp::Barrier,
        Action::Bcast { bytes, root } => MpiOp::Bcast {
            bytes,
            root: root.0,
        },
        Action::Reduce { bytes, root } => MpiOp::Reduce {
            bytes,
            root: root.0,
        },
        Action::Allreduce { bytes } => MpiOp::Allreduce { bytes },
        Action::Alltoall { bytes } => MpiOp::Alltoall { bytes },
        Action::Gather { bytes, root } => MpiOp::Gather {
            bytes,
            root: root.0,
        },
        Action::Allgather { bytes } => MpiOp::Allgather { bytes },
    }
}

impl OpSource for TraceSource {
    fn next_op(&mut self) -> Option<MpiOp> {
        let actions = self.trace.actions(self.rank);
        let action = actions.get(self.next)?;
        self.next += 1;
        Some(action_to_op(action))
    }
}

/// Builds per-rank sources over a shared trace.
pub fn trace_sources(trace: &Arc<Trace>) -> Vec<Box<dyn OpSource>> {
    (0..trace.ranks())
        .map(|r| Box::new(TraceSource::new(Arc::clone(trace), Rank(r))) as Box<dyn OpSource>)
        .collect()
}

/// An [`OpSource`] that pulls actions incrementally from an
/// [`ActionSource`] cursor (streamed from a split text file or a
/// `.titb` block), so the full per-rank action list never has to be
/// materialised. `OpSource::next_op` is infallible, so a cursor failure
/// (I/O error, parse error, corrupt block) is parked in a slot shared
/// with the other ranks and the stream ends; [`replay_sources`] checks
/// the slot and surfaces the first fault instead of the engine's
/// secondary deadlock diagnosis.
pub struct StreamOpSource {
    inner: Box<dyn ActionSource>,
    rank: Rank,
    fault: Arc<Mutex<Option<(Rank, SourceError)>>>,
}

impl OpSource for StreamOpSource {
    fn next_op(&mut self) -> Option<MpiOp> {
        match self.inner.next_action() {
            Ok(Some(a)) => Some(action_to_op(&a)),
            Ok(None) => None,
            Err(e) => {
                let mut slot = self.fault.lock().expect("fault slot poisoned");
                if slot.is_none() {
                    *slot = Some((self.rank, e));
                }
                None
            }
        }
    }
}

/// Replays per-rank streaming action cursors (from
/// [`titrace::stream::open_sources`]) on `platform` under `config`.
/// Resident memory stays bounded by the cursors' read windows instead
/// of the whole trace.
///
/// # Errors
/// Fails on placement errors, a deadlocked replay, or a cursor fault
/// (I/O / parse / decode error discovered mid-replay).
pub fn replay_sources(
    platform: &Platform,
    action_sources: Vec<Box<dyn ActionSource>>,
    config: &ReplayConfig,
) -> Result<ReplayResult, String> {
    replay_sources_observed(platform, action_sources, config, false).map(|r| r.result)
}

/// Like [`replay_sources`], returning the unified observation (metrics
/// always, spans when `record_spans` is set) alongside the result.
///
/// Always runs the sequential engine regardless of `config.threads`:
/// the caller-provided cursors are single-use, and the parallel engine
/// needs a re-openable [`TraceInput`] for its scan pass — use
/// [`replay_input_observed`] (or [`replay_observed`]) for parallel
/// replay.
///
/// # Errors
/// See [`replay_sources`].
pub fn replay_sources_observed(
    platform: &Platform,
    action_sources: Vec<Box<dyn ActionSource>>,
    config: &ReplayConfig,
    record_spans: bool,
) -> Result<ReplayReport, String> {
    let ranks = action_sources.len() as u32;
    assert!(ranks > 0, "empty source list");
    let hosts: Vec<HostId> = config.placement.assign(platform, ranks)?;
    let fault: Arc<Mutex<Option<(Rank, SourceError)>>> = Arc::new(Mutex::new(None));
    let sources: Vec<Box<dyn OpSource>> = action_sources
        .into_iter()
        .enumerate()
        .map(|(r, inner)| {
            Box::new(StreamOpSource {
                inner,
                rank: Rank(r as u32),
                fault: Arc::clone(&fault),
            }) as Box<dyn OpSource>
        })
        .collect();
    let outcome = run_engine(platform, &hosts, sources, config, record_spans);
    // A cursor fault truncates its rank's stream, which the engine can
    // only see as early termination or deadlock — report the root cause.
    if let Some((rank, e)) = fault.lock().expect("fault slot poisoned").take() {
        return Err(format!("rank {rank} trace stream failed: {e}"));
    }
    outcome
}

/// Replays a trace directly from its on-disk (or in-memory) form,
/// choosing the streaming path that fits the layout: merged text is
/// decoded in parallel, split fragments and `.titb` blocks are streamed
/// per rank.
///
/// # Errors
/// Fails on I/O, parse, or decode errors, placement errors, or a
/// deadlocked replay.
pub fn replay_input(
    platform: &Platform,
    input: &TraceInput,
    ranks: u32,
    config: &ReplayConfig,
) -> Result<ReplayResult, String> {
    replay_input_observed(platform, input, ranks, config, false).map(|r| r.result)
}

/// Like [`replay_input`], returning the unified observation (metrics
/// always, spans when `record_spans` is set) alongside the result.
///
/// # Errors
/// See [`replay_input`].
pub fn replay_input_observed(
    platform: &Platform,
    input: &TraceInput,
    ranks: u32,
    config: &ReplayConfig,
    record_spans: bool,
) -> Result<ReplayReport, String> {
    replay_input_profiled(platform, input, ranks, config, record_spans, false)
}

/// Like [`replay_input_observed`], additionally measuring where the
/// host spends wall-clock time when `profile` is set: per-worker work /
/// barrier-wait / mailbox-stall breakdowns on
/// [`ReplayReport::profile`]. With `profile` false this is exactly
/// [`replay_input_observed`] — no host clock is read, and either way
/// every deterministic output (simulated times, metrics, spans,
/// manifests) is byte-identical to the unprofiled run.
///
/// # Errors
/// See [`replay_input`].
pub fn replay_input_profiled(
    platform: &Platform,
    input: &TraceInput,
    ranks: u32,
    config: &ReplayConfig,
    record_spans: bool,
    profile: bool,
) -> Result<ReplayReport, String> {
    if config.threads > 1 {
        return parallel::replay_input_parallel(
            platform,
            input,
            ranks,
            config,
            record_spans,
            profile,
        );
    }
    let sw = simkernel::telemetry::Stopwatch::start(profile);
    let sources = titrace::stream::open_sources(input, ranks).map_err(|e| e.to_string())?;
    let mut report = replay_sources_observed(platform, sources, config, record_spans)?;
    if profile {
        report.profile = Some(profile::ReplayProfile::sequential(
            sw.elapsed_s(),
            ranks as usize,
        ));
    }
    Ok(report)
}

fn run_engine(
    platform: &Platform,
    hosts: &[HostId],
    sources: Vec<Box<dyn OpSource>>,
    config: &ReplayConfig,
    record_spans: bool,
) -> Result<ReplayReport, String> {
    let (result, obs): (ReplayResult, RunObservation) = match config.engine {
        ReplayEngine::Smpi => {
            let mut smpi_cfg = smpi::SmpiConfig::smpi_replay();
            smpi_cfg.copy = config.copy_model;
            smpi_cfg.sharing = config.sharing;
            smpi_cfg.fel = config.fel;
            smpi_cfg.collective_agg = config.collective_agg;
            let (r, obs) = smpi::run_smpi_observed(
                platform,
                hosts,
                sources,
                smpi_cfg,
                hooks_for(config, hosts),
                record_spans,
            )?;
            (
                ReplayResult {
                    time: r.total_time,
                    rank_times: r.rank_times,
                    messages: r.stats.messages,
                    events: r.events,
                },
                obs,
            )
        }
        ReplayEngine::Msg => {
            let mut msg_cfg = msgsim::MsgConfig::legacy();
            msg_cfg.sharing = config.sharing;
            msg_cfg.fel = config.fel;
            msg_cfg.collective_agg = config.collective_agg;
            let (r, obs) = msgsim::run_msg_observed(
                platform,
                hosts,
                sources,
                msg_cfg,
                hooks_for(config, hosts),
                record_spans,
            )?;
            (
                ReplayResult {
                    time: r.total_time,
                    rank_times: r.rank_times,
                    messages: r.stats.messages,
                    events: r.events,
                },
                obs,
            )
        }
    };
    Ok(ReplayReport {
        result,
        metrics: obs.metrics,
        spans: obs.spans,
        pdes: None,
        profile: None,
    })
}

fn hooks_for(config: &ReplayConfig, hosts: &[HostId]) -> Box<FixedRateHooks> {
    Box::new(FixedRateHooks::uniform(config.rate, hosts.len() as u32))
}

/// Replays `trace` on `platform` under `config`.
///
/// # Errors
/// Fails on placement errors or a deadlocked replay (malformed trace).
pub fn replay(
    platform: &Platform,
    trace: &Arc<Trace>,
    config: &ReplayConfig,
) -> Result<ReplayResult, String> {
    replay_observed(platform, trace, config, false).map(|r| r.result)
}

/// Like [`replay`], returning the unified observation (metrics always,
/// spans when `record_spans` is set) alongside the result.
///
/// # Errors
/// See [`replay`].
pub fn replay_observed(
    platform: &Platform,
    trace: &Arc<Trace>,
    config: &ReplayConfig,
    record_spans: bool,
) -> Result<ReplayReport, String> {
    let ranks = trace.ranks();
    assert!(ranks > 0, "empty trace");
    if config.threads > 1 {
        let input = TraceInput::Memory(Arc::clone(trace));
        return parallel::replay_input_parallel(
            platform,
            &input,
            ranks,
            config,
            record_spans,
            false,
        );
    }
    let hosts: Vec<HostId> = config.placement.assign(platform, ranks)?;
    run_engine(platform, &hosts, trace_sources(trace), config, record_spans)
}

/// A compact, deterministic identity string for a trace input: its
/// storage form, origin, and size. Used in the run manifest to tie a
/// result to its input without hashing whole trace files.
pub fn trace_signature(input: &TraceInput, ranks: u32) -> String {
    match input {
        TraceInput::Memory(trace) => {
            let actions: usize = (0..trace.ranks())
                .map(|r| trace.actions(Rank(r)).len())
                .sum();
            format!("memory:{} ranks,{} actions", trace.ranks(), actions)
        }
        TraceInput::MergedText(p) | TraceInput::Description(p) | TraceInput::Binary(p) => {
            let kind = match input {
                TraceInput::MergedText(_) => "text",
                TraceInput::Description(_) => "split",
                _ => "titb",
            };
            let size = std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
            format!("{kind}:{}:{size} bytes,{ranks} ranks", p.display())
        }
    }
}

/// Flat key/value rendering of a [`ReplayConfig`] for the run manifest.
pub fn config_fields(config: &ReplayConfig) -> Vec<(String, String)> {
    vec![
        ("engine".into(), format!("{:?}", config.engine)),
        ("rate".into(), format!("{}", config.rate)),
        ("placement".into(), format!("{:?}", config.placement)),
        (
            "copy_model".into(),
            match config.copy_model {
                Some(c) => format!(
                    "base_seconds={} bytes_per_second={}",
                    c.base_seconds, c.bytes_per_second
                ),
                None => "none".into(),
            },
        ),
        ("sharing".into(), format!("{:?}", config.sharing)),
        ("fel".into(), format!("{:?}", config.fel)),
        ("threads".into(), format!("{}", config.threads)),
        (
            "collective_agg".into(),
            format!("{}", config.collective_agg),
        ),
    ]
}

/// Assembles the run-manifest record for one observed replay.
/// `wall_time_s` is measured by the caller (the only non-deterministic
/// field; everything else is reproducible from the inputs).
pub fn manifest(
    platform: &Platform,
    signature: &str,
    config: &ReplayConfig,
    report: &ReplayReport,
    wall_time_s: f64,
) -> Manifest {
    Manifest {
        tool: concat!("titreplay ", env!("CARGO_PKG_VERSION")).to_string(),
        platform: platform.name.clone(),
        ranks: report.metrics.ranks,
        trace_signature: signature.to_string(),
        config: config_fields(config),
        simulated_time_s: report.result.time,
        wall_time_s,
        metrics: report.metrics.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acquisition::{acquire, CompilerOpt, Instrumentation};
    use emulator::Testbed;
    use workloads::lu::{LuClass, LuConfig};

    fn small_trace() -> Arc<Trace> {
        let lu = LuConfig::new(LuClass::S, 4).with_steps(3);
        Arc::new(acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace)
    }

    #[test]
    fn both_engines_replay_a_valid_trace() {
        let trace = small_trace();
        let p = platform::clusters::bordereau();
        for engine in [ReplayEngine::Msg, ReplayEngine::Smpi] {
            let cfg = ReplayConfig {
                engine,
                rate: 2e9,
                placement: Placement::OnePerNode,
                copy_model: None,
                sharing: netmodel::SharingPolicy::Bottleneck,
                fel: simkernel::FelImpl::default(),
                threads: ReplayConfig::default_threads(),
                window_s: None,
                collective_agg: false,
            };
            let r = replay(&p, &trace, &cfg).unwrap_or_else(|e| panic!("{engine:?}: {e}"));
            assert!(r.time > 0.0, "{engine:?}");
            assert_eq!(r.rank_times.len(), 4);
            assert!(r.messages > 0);
        }
    }

    #[test]
    fn msg_replay_is_slower_on_small_message_floods() {
        let trace = small_trace();
        let p = platform::clusters::bordereau();
        let msg = replay(&p, &trace, &ReplayConfig::legacy(2e9)).unwrap();
        let smpi = replay(&p, &trace, &ReplayConfig::improved(2e9)).unwrap();
        assert!(
            msg.time > smpi.time,
            "MSG {} !> SMPI {}",
            msg.time,
            smpi.time
        );
    }

    #[test]
    fn higher_rate_is_never_slower() {
        let trace = small_trace();
        let p = platform::clusters::graphene();
        let slow = replay(&p, &trace, &ReplayConfig::improved(1e9)).unwrap();
        let fast = replay(&p, &trace, &ReplayConfig::improved(4e9)).unwrap();
        assert!(fast.time <= slow.time);
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = small_trace();
        let p = platform::clusters::bordereau();
        let cfg = ReplayConfig::improved(2e9);
        let a = replay(&p, &trace, &cfg).unwrap();
        let b = replay(&p, &trace, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trace_acquired_on_one_cluster_replays_on_another() {
        // The decoupling headline: acquisition platform and replay
        // platform are independent.
        let trace = small_trace(); // acquisition is platform-free
        let bordereau = platform::clusters::bordereau();
        let graphene = platform::clusters::graphene();
        let cfg = ReplayConfig::improved(2e9);
        let tb = replay(&bordereau, &trace, &cfg).unwrap();
        let tg = replay(&graphene, &trace, &cfg).unwrap();
        assert!(tb.time > 0.0 && tg.time > 0.0);
        assert_ne!(tb.time, tg.time, "different networks, different times");
    }

    #[test]
    fn smpi_replay_tracks_ground_truth_closely_on_smallest_case() {
        // End-to-end accuracy smoke test: acquire with minimal
        // instrumentation, calibrate synthetically at the true rate, and
        // the improved replay should land within a few percent of the
        // uninstrumented emulated time.
        let lu = LuConfig::new(LuClass::S, 4).with_steps(5);
        let tb = Testbed::bordereau();
        let truth = tb
            .run_lu(&lu, Instrumentation::None, CompilerOpt::O3)
            .unwrap();
        let trace =
            Arc::new(acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace);
        // S-4 blocks are tiny: cache-resident, so the true rate is the
        // base speed.
        let rate = platform::clusters::BORDEREAU_SPEED;
        let sim = replay(&tb.platform, &trace, &ReplayConfig::improved(rate)).unwrap();
        let err = (sim.time - truth.time) / truth.time * 100.0;
        assert!(
            err.abs() < 15.0,
            "replay error {err}% (sim {} truth {})",
            sim.time,
            truth.time
        );
    }

    #[test]
    fn ingestion_paths_replay_bit_identically() {
        // The acceptance bar for the streaming subsystem: in-memory,
        // merged-text, split-description, and binary ingestion must all
        // produce the same simulated time to the last bit.
        let trace = small_trace();
        let dir = std::env::temp_dir().join(format!("replay-ingest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let merged = dir.join("lu.trace");
        titrace::files::write_merged(&trace, &merged).unwrap();
        let desc = titrace::files::write_split(&trace, &dir, "lu").unwrap();
        let bin = dir.join("lu.titb");
        titrace::binfmt::write_file(&trace, &bin, None).unwrap();
        let p = platform::clusters::bordereau();
        for engine in [ReplayEngine::Msg, ReplayEngine::Smpi] {
            let cfg = ReplayConfig {
                engine,
                rate: 2e9,
                placement: Placement::OnePerNode,
                copy_model: None,
                sharing: netmodel::SharingPolicy::Bottleneck,
                fel: simkernel::FelImpl::default(),
                threads: ReplayConfig::default_threads(),
                window_s: None,
                collective_agg: false,
            };
            let base = replay(&p, &trace, &cfg).unwrap();
            let inputs = [
                TraceInput::Memory(Arc::clone(&trace)),
                TraceInput::MergedText(merged.clone()),
                TraceInput::Description(desc.clone()),
                TraceInput::Binary(bin.clone()),
            ];
            for input in &inputs {
                let r = replay_input(&p, input, trace.ranks(), &cfg)
                    .unwrap_or_else(|e| panic!("{engine:?} {input:?}: {e}"));
                assert_eq!(
                    r.time.to_bits(),
                    base.time.to_bits(),
                    "{engine:?} {input:?}: {} != {}",
                    r.time,
                    base.time
                );
                assert_eq!(r, base, "{engine:?} {input:?}");
            }
        }
    }

    #[test]
    fn cursor_fault_is_surfaced_with_rank_and_cause() {
        // Corrupt one split fragment mid-stream: the engine sees a
        // truncated rank (deadlock), but the reported error must be the
        // root cause from the failing cursor.
        let trace = small_trace();
        let dir = std::env::temp_dir().join(format!("replay-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let desc = titrace::files::write_split(&trace, &dir, "lu").unwrap();
        let frag = dir.join("lu.rank1.trace");
        let mut text = std::fs::read_to_string(&frag).unwrap();
        let mid = text.len() / 2;
        let cut = text[..mid].rfind('\n').map_or(0, |i| i + 1);
        text.insert_str(cut, "p1 teleport 3\n");
        std::fs::write(&frag, text).unwrap();
        let p = platform::clusters::bordereau();
        let err = replay_input(
            &p,
            &TraceInput::Description(desc),
            trace.ranks(),
            &ReplayConfig::improved(2e9),
        )
        .unwrap_err();
        assert!(
            err.contains("trace stream failed") && err.contains("teleport"),
            "fault not surfaced: {err}"
        );
        assert!(err.contains("p1"), "fault should name the rank: {err}");
    }

    #[test]
    fn canonical_hash_is_stable_and_ignores_execution_strategy() {
        let base = ReplayConfig::improved(2e9);
        // Deterministic across calls (and pinned across releases: the
        // memo keys of a long-running prediction server must not move).
        assert_eq!(base.canonical_hash(), base.canonical_hash());
        // Execution-strategy knobs never change the simulated result
        // (bit-identity is enforced by the differential suites), so they
        // must not change the hash either: the same question asked with
        // a different FEL or thread count shares the memo entry.
        let mut strategy = base.clone();
        strategy.fel = simkernel::FelImpl::Heap;
        strategy.threads = 7;
        strategy.window_s = Some(0.25);
        assert_eq!(base.canonical_hash(), strategy.canonical_hash());
    }

    #[test]
    fn canonical_hash_changes_with_every_semantic_field() {
        let base = ReplayConfig::improved(2e9);
        let mut variants: Vec<(&str, ReplayConfig)> = Vec::new();
        let mut v = base.clone();
        v.engine = ReplayEngine::Msg;
        variants.push(("engine", v));
        let mut v = base.clone();
        v.rate = 2e9 + 1.0;
        variants.push(("rate", v));
        let mut v = base.clone();
        v.placement = Placement::RoundRobin;
        variants.push(("placement", v));
        let mut v = base.clone();
        v.copy_model = Some(smpi::CopyCost {
            base_seconds: 1e-6,
            bytes_per_second: 1e9,
        });
        variants.push(("copy_model", v));
        let mut v = base.clone();
        v.sharing = netmodel::SharingPolicy::MaxMin;
        variants.push(("sharing", v));
        let mut v = base.clone();
        v.collective_agg = true;
        variants.push(("collective_agg", v));
        let mut seen = vec![base.canonical_hash()];
        for (field, variant) in &variants {
            let h = variant.canonical_hash();
            assert!(
                !seen.contains(&h),
                "changing {field} did not change the canonical hash"
            );
            seen.push(h);
        }
    }

    #[test]
    fn copy_model_fields_are_domain_separated_in_the_hash() {
        // Swapping the two copy-model floats must not collide.
        let mut a = ReplayConfig::improved(2e9);
        a.copy_model = Some(smpi::CopyCost {
            base_seconds: 1.0,
            bytes_per_second: 2.0,
        });
        let mut b = a.clone();
        b.copy_model = Some(smpi::CopyCost {
            base_seconds: 2.0,
            bytes_per_second: 1.0,
        });
        assert_ne!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn action_to_op_roundtrip_against_op_to_action() {
        use titrace::Rank;
        let actions = vec![
            Action::Init,
            Action::Compute { amount: 42.0 },
            Action::Send {
                dst: Rank(1),
                bytes: 10,
            },
            Action::Irecv {
                src: Rank(2),
                bytes: 11,
            },
            Action::Wait,
            Action::Allreduce { bytes: 8 },
            Action::Gather {
                bytes: 5,
                root: Rank(0),
            },
            Action::Finalize,
        ];
        for a in actions {
            let op = action_to_op(&a);
            assert_eq!(workloads::op_to_action(&op), a);
        }
    }
}

#[cfg(test)]
mod observability_tests {
    use super::*;
    use acquisition::{acquire, CompilerOpt, Instrumentation};
    use simkernel::obs::{chrome_trace, state_csv, SpanKind};
    use workloads::lu::{LuClass, LuConfig};

    fn lu_s8_trace() -> Arc<Trace> {
        let lu = LuConfig::new(LuClass::S, 8).with_steps(3);
        Arc::new(acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace)
    }

    fn cfg(engine: ReplayEngine, fel: simkernel::FelImpl) -> ReplayConfig {
        ReplayConfig {
            engine,
            rate: 2e9,
            placement: Placement::OnePerNode,
            copy_model: None,
            sharing: netmodel::SharingPolicy::Bottleneck,
            fel,
            threads: ReplayConfig::default_threads(),
            window_s: None,
            collective_agg: false,
        }
    }

    #[test]
    fn chrome_trace_is_byte_identical_across_runs_and_fel_impls() {
        let trace = lu_s8_trace();
        let p = platform::clusters::bordereau();
        for engine in [ReplayEngine::Msg, ReplayEngine::Smpi] {
            let mut exports = Vec::new();
            for fel in [simkernel::FelImpl::Heap, simkernel::FelImpl::Ladder] {
                for _ in 0..2 {
                    let report = replay_observed(&p, &trace, &cfg(engine, fel), true).unwrap();
                    let log = report.spans.as_ref().expect("spans recorded");
                    exports.push(chrome_trace(log));
                }
            }
            for e in &exports[1..] {
                assert_eq!(
                    *e, exports[0],
                    "{engine:?}: chrome-trace export not byte-identical"
                );
            }
        }
    }

    #[test]
    fn spans_balance_against_rank_finish_times() {
        // Invariant: each rank's recorded spans are chronological,
        // non-overlapping, within [0, finish]; every flow closed.
        let trace = lu_s8_trace();
        let p = platform::clusters::bordereau();
        for engine in [ReplayEngine::Msg, ReplayEngine::Smpi] {
            let report = replay_observed(
                &p,
                &trace,
                &cfg(engine, simkernel::FelImpl::default()),
                true,
            )
            .unwrap();
            let log = report.spans.as_ref().unwrap();
            assert_eq!(log.open_flows(), 0, "{engine:?}: flows left open");
            assert!(log.total_spans() > 0, "{engine:?}: nothing recorded");
            for rank in 0..log.rank_count() {
                let finish = report.result.rank_times[rank as usize];
                let mut cursor = 0.0;
                let mut tracked = 0.0;
                for s in log.rank(rank) {
                    assert!(
                        s.start >= cursor - 1e-12,
                        "{engine:?} rank {rank}: span at {} overlaps previous ending {cursor}",
                        s.start
                    );
                    assert!(s.end > s.start);
                    cursor = s.end;
                    tracked += s.end - s.start;
                }
                assert!(
                    cursor <= finish + 1e-9,
                    "{engine:?} rank {rank}: spans exceed finish {finish}"
                );
                assert!(
                    tracked <= finish + 1e-9,
                    "{engine:?} rank {rank}: tracked {tracked} exceeds finish {finish}"
                );
            }
            for f in log.flows() {
                assert!(f.end >= f.start, "flow ends before it starts");
            }
        }
    }

    #[test]
    fn critical_path_end_bit_matches_reported_time() {
        let trace = lu_s8_trace();
        let p = platform::clusters::bordereau();
        for engine in [ReplayEngine::Msg, ReplayEngine::Smpi] {
            let report = replay_observed(
                &p,
                &trace,
                &cfg(engine, simkernel::FelImpl::default()),
                true,
            )
            .unwrap();
            let path = report.critical_path().expect("spans recorded");
            assert_eq!(
                path.end_s.to_bits(),
                report.result.time.to_bits(),
                "{engine:?}: critical-path end {} != simulated time {}",
                path.end_s,
                report.result.time
            );
            assert!(!path.steps.is_empty());
            // Steps tile [0, end] back-to-back.
            let mut t = 0.0;
            for s in &path.steps {
                assert!((s.start_s - t).abs() < 1e-9, "gap at {t}");
                t = s.end_s;
            }
            assert!((t - path.end_s).abs() < 1e-12);
            assert_eq!(path.breakdown.len(), 8);
        }
    }

    #[test]
    fn observed_time_is_bit_identical_to_plain_replay() {
        // The recorder must not perturb simulation results.
        let trace = lu_s8_trace();
        let p = platform::clusters::bordereau();
        for engine in [ReplayEngine::Msg, ReplayEngine::Smpi] {
            let c = cfg(engine, simkernel::FelImpl::default());
            let plain = replay(&p, &trace, &c).unwrap();
            let observed = replay_observed(&p, &trace, &c, true).unwrap();
            assert_eq!(
                plain.time.to_bits(),
                observed.result.time.to_bits(),
                "{engine:?}"
            );
            assert_eq!(plain.rank_times, observed.result.rank_times);
            assert_eq!(plain.events, observed.result.events);
        }
    }

    #[test]
    fn metrics_fold_replay_and_network_counters() {
        let trace = lu_s8_trace();
        let p = platform::clusters::bordereau();
        let report = replay_observed(
            &p,
            &trace,
            &cfg(ReplayEngine::Smpi, simkernel::FelImpl::default()),
            false,
        )
        .unwrap();
        let m = &report.metrics;
        assert_eq!(m.engine, "smpi");
        assert_eq!(m.ranks, 8);
        assert_eq!(m.messages, report.result.messages);
        assert_eq!(m.messages, m.eager_messages + m.rendezvous_messages);
        assert_eq!(m.events_processed, report.result.events);
        assert!(m.flows_created > 0);
        assert_eq!(m.flows_created, m.flows_resolved);
        assert!(m.sharing_resolves > 0);
        let json = m.to_json();
        assert!(json.contains("\"engine\": \"smpi\""));
        assert!(json.contains("\"network\""));
    }

    #[test]
    fn exporters_cover_all_recorded_state() {
        let trace = lu_s8_trace();
        let p = platform::clusters::bordereau();
        let report = replay_observed(
            &p,
            &trace,
            &cfg(ReplayEngine::Smpi, simkernel::FelImpl::default()),
            true,
        )
        .unwrap();
        let log = report.spans.as_ref().unwrap();
        let json = chrome_trace(log);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("compute"));
        let csv = state_csv(log);
        let lines = csv.lines().count();
        // Header + one row per span + one per flow.
        assert_eq!(lines, 1 + log.total_spans() + log.flows().len());
        // Every span kind that occurred appears in the CSV.
        for kind in [SpanKind::Compute, SpanKind::Send, SpanKind::Recv] {
            if (0..log.rank_count()).any(|r| log.total(r, kind) > 0.0) {
                assert!(csv.contains(kind.label()), "{} missing", kind.label());
            }
        }
    }

    #[test]
    fn manifest_embeds_config_and_signature() {
        let trace = lu_s8_trace();
        let p = platform::clusters::bordereau();
        let c = cfg(ReplayEngine::Smpi, simkernel::FelImpl::default());
        let report = replay_observed(&p, &trace, &c, false).unwrap();
        let input = TraceInput::Memory(Arc::clone(&trace));
        let sig = trace_signature(&input, trace.ranks());
        assert!(sig.starts_with("memory:8 ranks"));
        let man = manifest(&p, &sig, &c, &report, 0.25);
        let json = man.to_json();
        assert!(json.contains("\"trace_signature\": \"memory:8 ranks"));
        assert!(json.contains("\"engine\": \"Smpi\""));
        assert!(json.contains("\"wall_time_s\": 0.25"));
        assert!(json.contains("\"metrics\": {"));
    }
}

#[cfg(test)]
mod copy_model_tests {
    use super::*;
    use acquisition::{acquire, CompilerOpt, Instrumentation};
    use emulator::Testbed;
    use workloads::lu::{LuClass, LuConfig};

    #[test]
    fn copy_model_raises_simulated_time() {
        let lu = LuConfig::new(LuClass::S, 8).with_steps(4);
        let trace = std::sync::Arc::new(
            acquire(lu.sources(), Instrumentation::Minimal, CompilerOpt::O3, 1).trace,
        );
        let p = platform::clusters::graphene();
        let plain = replay(&p, &trace, &ReplayConfig::improved(2e9)).unwrap();
        let copy = smpi::SmpiConfig::ground_truth().copy.unwrap();
        let with_copy = replay(&p, &trace, &ReplayConfig::improved_with_copy(2e9, copy)).unwrap();
        assert!(
            with_copy.time > plain.time,
            "copy model must add time: {} !> {}",
            with_copy.time,
            plain.time
        );
    }

    #[test]
    fn copy_model_closes_the_truth_gap_on_eager_floods() {
        // An eager-message-dominated workload where the copy is the only
        // mismatch: the trace has exact instruction counts and the
        // calibrated rate is the true base rate, so the remaining error
        // is the copy time — which the copy-modeling replay removes.
        let lu = LuConfig::new(LuClass::S, 8).with_steps(6);
        let tb = Testbed::graphene();
        let real = tb
            .run_lu(&lu, Instrumentation::None, CompilerOpt::O3)
            .unwrap();
        let trace = std::sync::Arc::new(
            acquire(lu.sources(), Instrumentation::Coarse, CompilerOpt::O3, 1).trace,
        );
        let rate = platform::clusters::GRAPHENE_SPEED;
        let err = |config: &ReplayConfig| {
            let sim = replay(&tb.platform, &trace, config).unwrap();
            ((sim.time - real.time) / real.time * 100.0).abs()
        };
        let without = err(&ReplayConfig::improved(rate));
        let copy = smpi::SmpiConfig::ground_truth().copy.unwrap();
        let with = err(&ReplayConfig::improved_with_copy(rate, copy));
        assert!(
            with < without,
            "copy modeling should reduce |error|: {with:.2}% !< {without:.2}%"
        );
    }

    #[test]
    fn from_calibration_selects_instance_rate() {
        use calibrate::{calibrate, CalibrationMethod};
        let tb = Testbed::bordereau();
        let cal = calibrate(
            &tb,
            CalibrationMethod::CacheAware,
            CompilerOpt::O3,
            &[workloads::lu::LuClass::B],
            Instrumentation::Coarse,
            1,
        )
        .unwrap();
        let spilling = LuConfig::new(LuClass::B, 8);
        let resident = LuConfig::new(LuClass::B, 64);
        let c_spill = ReplayConfig::from_calibration(ReplayEngine::Smpi, &cal, &spilling);
        let c_res = ReplayConfig::from_calibration(ReplayEngine::Smpi, &cal, &resident);
        assert!(c_spill.rate < c_res.rate);
        assert!(c_spill.copy_model.is_none());
    }
}
