//! Building time-independent traces from instrumented runs.
//!
//! Because the trace records only volumes, extraction needs no timing
//! simulation: walking each rank's op stream with the counter model
//! yields exactly the trace an instrumented run would have produced. The
//! compute amounts are the *measured* counter readings — application
//! instructions (scaled by the compiler model) plus whatever the probes
//! executed inside each section, with run-to-run counter jitter. This is
//! the mechanism behind the paper's Section 2.2 observation that a trace
//! acquired with fine-grain instrumentation "will likely simulate
//! something closer to the instrumented version than the original
//! application".

use hwmodel::{CounterModel, ProbeCosts};
use simkernel::DetRng;
use titrace::{Action, Rank, Trace};
use workloads::{op_to_action, MpiOp, OpSource};

use crate::compiler::CompilerOpt;
use crate::modes::Instrumentation;

/// The product of one acquisition: the trace plus per-rank counter
/// totals.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// The time-independent trace (compute amounts are measured values).
    pub trace: Trace,
    /// Total measured instructions per rank (the quantity compared across
    /// instrumentation modes in Figures 1/2/4/5).
    pub rank_counters: Vec<f64>,
    /// The mode that produced it.
    pub mode: Instrumentation,
    /// The compiler setting of the traced binary.
    pub compiler: CompilerOpt,
}

/// Acquires a trace from `sources` under `mode`/`compiler`. `seed`
/// determines the counter jitter (one "run"); the paper averages several
/// runs, see [`mean_rank_counters`].
pub fn acquire(
    sources: Vec<Box<dyn OpSource>>,
    mode: Instrumentation,
    compiler: CompilerOpt,
    seed: u64,
) -> Acquisition {
    let costs = ProbeCosts::default();
    let ranks = sources.len() as u32;
    let mut trace = Trace::new(ranks);
    let mut rank_counters = Vec::with_capacity(ranks as usize);
    let root = DetRng::new(seed);
    for (r, mut src) in sources.into_iter().enumerate() {
        let rank = Rank(r as u32);
        let mut counter = CounterModel::new(root.derive(r as u64));
        while let Some(op) = src.next_op() {
            match op {
                MpiOp::Compute(block) => {
                    let work = block.instructions * compiler.instruction_factor();
                    let probes = mode.counted_instr_in_block(&costs, &block, compiler);
                    let measured = counter.measure(work, probes);
                    trace.push(rank, Action::Compute { amount: measured });
                }
                other => {
                    // The MPI wrapper's own instructions land in the
                    // counter (attributed to the preceding section; the
                    // trace stores totals, so attribution is immaterial).
                    // Init/Finalize sit outside the measured section.
                    let framing = matches!(other, MpiOp::Init | MpiOp::Finalize);
                    let wrapper = if framing {
                        0.0
                    } else {
                        mode.counted_instr_per_mpi_event(&costs)
                    };
                    if wrapper > 0.0 {
                        let measured = counter.measure(0.0, wrapper);
                        // Fold the wrapper instructions into the previous
                        // compute action when one exists, mirroring how
                        // the real extraction scripts aggregate sections.
                        let actions = trace.actions_mut(rank);
                        if let Some(Action::Compute { amount }) = actions.last_mut() {
                            *amount += measured;
                        } else {
                            actions.push(Action::Compute { amount: measured });
                        }
                    }
                    trace.push(rank, op_to_action(&other));
                }
            }
        }
        rank_counters.push(counter.total());
    }
    Acquisition {
        trace,
        rank_counters,
        mode,
        compiler,
    }
}

/// Per-rank counter totals averaged over `runs` independent acquisitions
/// (the paper: "we ran ten runs of each version and display the average
/// values"). The sources are regenerated per run by `make_sources`.
pub fn mean_rank_counters(
    mut make_sources: impl FnMut() -> Vec<Box<dyn OpSource>>,
    mode: Instrumentation,
    compiler: CompilerOpt,
    base_seed: u64,
    runs: u32,
) -> Vec<f64> {
    assert!(runs > 0);
    let mut sums: Vec<f64> = Vec::new();
    for run in 0..runs {
        let acq = acquire(
            make_sources(),
            mode,
            compiler,
            base_seed.wrapping_add(u64::from(run).wrapping_mul(0x9E3779B97F4A7C15)),
        );
        if sums.is_empty() {
            sums = vec![0.0; acq.rank_counters.len()];
        }
        for (s, c) in sums.iter_mut().zip(acq.rank_counters.iter()) {
            *s += c;
        }
    }
    sums.iter().map(|s| s / f64::from(runs)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::lu::{LuClass, LuConfig};

    fn lu() -> LuConfig {
        LuConfig::new(LuClass::S, 4).with_steps(3)
    }

    #[test]
    fn acquired_trace_is_valid() {
        for mode in [
            Instrumentation::Coarse,
            Instrumentation::legacy_default(),
            Instrumentation::Minimal,
        ] {
            let acq = acquire(lu().sources(), mode, CompilerOpt::O0, 42);
            let errors = titrace::validate::validate(&acq.trace);
            assert!(
                errors.is_empty(),
                "{mode:?}: {:?}",
                &errors[..errors.len().min(3)]
            );
        }
    }

    #[test]
    fn fine_instrumentation_inflates_counters() {
        let coarse = acquire(lu().sources(), Instrumentation::Coarse, CompilerOpt::O0, 1);
        let fine = acquire(
            lu().sources(),
            Instrumentation::legacy_default(),
            CompilerOpt::O0,
            1,
        );
        for (c, f) in coarse.rank_counters.iter().zip(fine.rank_counters.iter()) {
            let rel = (f - c) / c;
            assert!(rel > 0.02, "fine barely inflated: {rel}");
        }
    }

    #[test]
    fn paper_transition_reduces_inflation() {
        // The paper's before/after: fine-grain on the -O0 binary versus
        // minimal on the -O3 binary, on an instance with a realistic
        // compute/communication balance (W-4; the S class is so small
        // that per-MPI-event wrapper costs dominate any mode).
        let w4 = LuConfig::new(LuClass::W, 4).with_steps(3);
        let rel = |mode, opt| {
            let coarse = acquire(w4.sources(), Instrumentation::Coarse, opt, 1);
            let inst = acquire(w4.sources(), mode, opt, 1);
            inst.rank_counters
                .iter()
                .zip(coarse.rank_counters.iter())
                .map(|(x, y)| (x - y) / y)
                .sum::<f64>()
                / 4.0
        };
        let fine_rel = rel(Instrumentation::legacy_default(), CompilerOpt::O0);
        let min_rel = rel(Instrumentation::Minimal, CompilerOpt::O3);
        assert!(
            min_rel < fine_rel,
            "minimal+O3 {min_rel} !< fine+O0 {fine_rel}"
        );
        assert!(min_rel >= 0.0);
    }

    #[test]
    fn o3_shrinks_measured_volume() {
        let o0 = acquire(lu().sources(), Instrumentation::Coarse, CompilerOpt::O0, 7);
        let o3 = acquire(lu().sources(), Instrumentation::Coarse, CompilerOpt::O3, 7);
        let s0: f64 = o0.rank_counters.iter().sum();
        let s3: f64 = o3.rank_counters.iter().sum();
        assert!((s3 / s0 - 0.80).abs() < 0.01, "O3/O0 = {}", s3 / s0);
    }

    #[test]
    fn trace_compute_total_matches_counter_total() {
        let acq = acquire(lu().sources(), Instrumentation::Minimal, CompilerOpt::O3, 3);
        let stats = titrace::TraceStats::of(&acq.trace);
        for (r, total) in acq.rank_counters.iter().enumerate() {
            let traced = stats.rank(Rank(r as u32)).compute_instructions;
            assert!(
                (traced - total).abs() < 1e-6 * total,
                "rank {r}: trace {traced} vs counter {total}"
            );
        }
    }

    #[test]
    fn coarse_counters_track_true_work() {
        let cfg = lu();
        let acq = acquire(cfg.sources(), Instrumentation::Coarse, CompilerOpt::O0, 5);
        for r in 0..4 {
            let expect = cfg.rank_instructions(r);
            let got = acq.rank_counters[r as usize];
            assert!(
                ((got - expect) / expect).abs() < 0.01,
                "rank {r}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn averaging_reduces_jitter() {
        let cfg = lu();
        let one = mean_rank_counters(
            || cfg.sources(),
            Instrumentation::Coarse,
            CompilerOpt::O0,
            11,
            1,
        );
        let ten = mean_rank_counters(
            || cfg.sources(),
            Instrumentation::Coarse,
            CompilerOpt::O0,
            11,
            10,
        );
        let expect = cfg.rank_instructions(0);
        let err1 = ((one[0] - expect) / expect).abs();
        let err10 = ((ten[0] - expect) / expect).abs();
        // Not guaranteed per-sample, but with this seed the average must
        // be tight.
        assert!(err10 < 0.005, "10-run mean off by {err10}");
        assert!(err1 < 0.05);
    }

    #[test]
    fn different_seeds_give_different_counters() {
        let a = acquire(lu().sources(), Instrumentation::Coarse, CompilerOpt::O0, 1);
        let b = acquire(lu().sources(), Instrumentation::Coarse, CompilerOpt::O0, 2);
        assert_ne!(a.rank_counters, b.rank_counters);
        // But the same seed reproduces exactly.
        let c = acquire(lu().sources(), Instrumentation::Coarse, CompilerOpt::O0, 1);
        assert_eq!(a.rank_counters, c.rank_counters);
    }
}
