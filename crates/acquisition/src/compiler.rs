//! The compiler-optimization model.
//!
//! Section 3.1: "The first modification we made to our trace acquisition
//! procedure is to activate compiler optimizations, typically by using
//! the `-O3` flag... Among the optimizations that may help to reduce the
//! discrepancy in the measured number of instructions are the loop
//! unrolling, vectorization, and function inlining."
//!
//! Two effects matter to the framework:
//! * fewer instructions for the same work (the trace's compute volumes
//!   and the run time both shrink);
//! * fewer *instrumentable function calls* (inlining dissolves the small
//!   helper routines fine-grain instrumentation would probe).

/// Optimization level of the (emulated) application build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerOpt {
    /// The first implementation's build: no optimization flags.
    O0,
    /// The modified acquisition procedure's build.
    O3,
}

impl CompilerOpt {
    /// Multiplier on true instruction volume.
    pub fn instruction_factor(self) -> f64 {
        match self {
            CompilerOpt::O0 => 1.0,
            // Fitted to the Table 1/2 original-run-time reductions (~15–25%
            // on compute-bound instances).
            CompilerOpt::O3 => 0.80,
        }
    }

    /// Multiplier on fine-grain-instrumentable call density (inlining).
    pub fn call_factor(self) -> f64 {
        match self {
            CompilerOpt::O0 => 1.0,
            CompilerOpt::O3 => 0.40,
        }
    }
}

impl std::fmt::Display for CompilerOpt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompilerOpt::O0 => write!(f, "-O0"),
            CompilerOpt::O3 => write!(f, "-O3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o3_reduces_both_factors() {
        assert!(CompilerOpt::O3.instruction_factor() < CompilerOpt::O0.instruction_factor());
        assert!(CompilerOpt::O3.call_factor() < CompilerOpt::O0.call_factor());
        assert_eq!(CompilerOpt::O0.instruction_factor(), 1.0);
        assert_eq!(CompilerOpt::O0.call_factor(), 1.0);
    }

    #[test]
    fn display() {
        assert_eq!(CompilerOpt::O3.to_string(), "-O3");
    }
}
