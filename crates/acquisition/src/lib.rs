//! Trace acquisition: how a time-independent trace is obtained from an
//! (emulated) application run, and what the instrumentation does to the
//! measurements along the way.
//!
//! The paper's acquisition toolchain is TAU + PDT + PAPI; its two
//! problems (Sections 2.1–2.2) and their fixes (Sections 3.1–3.2) are
//! modeled here:
//!
//! * [`modes::Instrumentation`] — coarse counters, fine-grain TAU
//!   (per-function probes + call-path), and the *minimal* selective
//!   instrumentation (`BEGIN_FILE_EXCLUDE_LIST *` — probes only at MPI
//!   boundaries);
//! * [`compiler::CompilerOpt`] — `-O3` scaling of instruction volume and
//!   (through inlining) of instrumentable call density;
//! * [`extract`] — building the trace itself: action stream plus
//!   *measured* (perturbed) compute volumes. Because traces are
//!   time-independent, extraction requires no timing simulation at all —
//!   only the counter model;
//! * [`hooks::InstrumentedHooks`] — the wall-clock side: an
//!   [`smpi::ExecHooks`] implementation charging cache-aware compute
//!   rates, probe execution time, per-MPI-event tracing costs and shared-
//!   filesystem contention, used by the emulator to produce the paper's
//!   Tables 1–2.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod compiler;
pub mod extract;
pub mod hooks;
pub mod modes;
pub mod params;

pub use compiler::CompilerOpt;
pub use extract::{acquire, mean_rank_counters, Acquisition};
pub use hooks::InstrumentedHooks;
pub use modes::Instrumentation;
