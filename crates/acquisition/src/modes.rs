//! Instrumentation modes and their per-section perturbations.

use hwmodel::ProbeCosts;
use workloads::ComputeBlock;

use crate::compiler::CompilerOpt;
use crate::params;

/// How the (emulated) application is instrumented during acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instrumentation {
    /// No instrumentation: the "original" runs of Tables 1–2.
    None,
    /// Coarse-grain counters: "we just insert calls to get the value of
    /// the hardware performance counter... at the beginning and end of
    /// the studied section" — the reference measurement of Figures 1–5.
    Coarse,
    /// Full TAU + PDT instrumentation of every function, with optional
    /// call-path capture (the first implementation's default; call-path
    /// on).
    TauFine {
        /// Whether the complete call path is maintained per probe.
        callpath: bool,
    },
    /// The paper's fix: selective instrumentation excluding all source
    /// files, leaving only the MPI wrappers ("the performance hardware
    /// counter... will be triggered when entering and exiting MPI
    /// functions").
    Minimal,
}

impl Instrumentation {
    /// The first implementation's acquisition mode.
    pub fn legacy_default() -> Instrumentation {
        Instrumentation::TauFine { callpath: true }
    }

    /// `true` if this mode records a trace (None and Coarse do not).
    pub fn records_trace(self) -> bool {
        matches!(
            self,
            Instrumentation::TauFine { .. } | Instrumentation::Minimal
        )
    }

    /// Extra instructions *counted inside* one compute section, beyond
    /// the application's own work: per-function-call probes (fine mode
    /// only; inlining under `-O3` reduces the call density).
    pub fn counted_instr_in_block(
        self,
        costs: &ProbeCosts,
        block: &ComputeBlock,
        opt: CompilerOpt,
    ) -> f64 {
        match self {
            Instrumentation::None | Instrumentation::Coarse | Instrumentation::Minimal => 0.0,
            Instrumentation::TauFine { callpath } => {
                block.fn_calls * opt.call_factor() * costs.fine_call_instr(callpath)
            }
        }
    }

    /// Extra instructions counted per MPI call (the wrapper runs inside
    /// the measured window). Zero for uninstrumented/coarse runs.
    pub fn counted_instr_per_mpi_event(self, costs: &ProbeCosts) -> f64 {
        match self {
            Instrumentation::None | Instrumentation::Coarse => 0.0,
            Instrumentation::TauFine { .. } => costs.fine_mpi_event_counted_instr(),
            Instrumentation::Minimal => costs.mpi_event_counted_instr(),
        }
    }

    /// Wall-clock seconds added per MPI call by event recording,
    /// including the shared-filesystem amortized flush cost (`ranks`
    /// concurrent writers).
    pub fn mpi_event_seconds(self, ranks: u32) -> f64 {
        let io = params::TRACE_IO_SECONDS_PER_EVENT_PER_RANK * f64::from(ranks);
        match self {
            Instrumentation::None | Instrumentation::Coarse => 0.0,
            Instrumentation::TauFine { .. } => params::FINE_MPI_EVENT_SECONDS + io,
            Instrumentation::Minimal => params::MINIMAL_MPI_EVENT_SECONDS + io,
        }
    }

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Instrumentation::None => "none",
            Instrumentation::Coarse => "coarse",
            Instrumentation::TauFine { callpath: true } => "tau-fine+callpath",
            Instrumentation::TauFine { callpath: false } => "tau-fine",
            Instrumentation::Minimal => "minimal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> ComputeBlock {
        ComputeBlock {
            instructions: 1e6,
            fn_calls: 200.0,
            working_set: 1 << 20,
        }
    }

    #[test]
    fn only_fine_mode_counts_block_probes() {
        let c = ProbeCosts::default();
        let b = block();
        assert_eq!(
            Instrumentation::None.counted_instr_in_block(&c, &b, CompilerOpt::O0),
            0.0
        );
        assert_eq!(
            Instrumentation::Minimal.counted_instr_in_block(&c, &b, CompilerOpt::O0),
            0.0
        );
        let fine =
            Instrumentation::legacy_default().counted_instr_in_block(&c, &b, CompilerOpt::O0);
        assert_eq!(fine, 200.0 * c.fine_call_instr(true));
    }

    #[test]
    fn o3_inlining_shrinks_fine_probe_count() {
        let c = ProbeCosts::default();
        let b = block();
        let o0 = Instrumentation::legacy_default().counted_instr_in_block(&c, &b, CompilerOpt::O0);
        let o3 = Instrumentation::legacy_default().counted_instr_in_block(&c, &b, CompilerOpt::O3);
        assert!((o3 - 0.4 * o0).abs() < 1e-9);
    }

    #[test]
    fn instrumenting_modes_count_mpi_events() {
        let c = ProbeCosts::default();
        assert_eq!(Instrumentation::Coarse.counted_instr_per_mpi_event(&c), 0.0);
        assert_eq!(
            Instrumentation::Minimal.counted_instr_per_mpi_event(&c),
            c.mpi_event_counted_instr()
        );
        assert_eq!(
            Instrumentation::legacy_default().counted_instr_per_mpi_event(&c),
            c.fine_mpi_event_counted_instr()
        );
    }

    #[test]
    fn event_time_ordering() {
        // The *fixed* parts are comparable (fine's dominant cost is its
        // instruction volume, charged by the hooks); both instrumenting
        // modes cost strictly more than no instrumentation.
        let fine = Instrumentation::legacy_default().mpi_event_seconds(8);
        let min = Instrumentation::Minimal.mpi_event_seconds(8);
        let none = Instrumentation::None.mpi_event_seconds(8);
        assert!(fine >= min && min > none);
        assert_eq!(none, 0.0);
        // IO contention grows with rank count.
        assert!(
            Instrumentation::Minimal.mpi_event_seconds(128)
                > Instrumentation::Minimal.mpi_event_seconds(8)
        );
    }

    #[test]
    fn trace_recording_modes() {
        assert!(!Instrumentation::None.records_trace());
        assert!(!Instrumentation::Coarse.records_trace());
        assert!(Instrumentation::Minimal.records_trace());
        assert!(Instrumentation::legacy_default().records_trace());
        assert_eq!(Instrumentation::Minimal.label(), "minimal");
    }
}
