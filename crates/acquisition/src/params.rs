//! Wall-clock cost constants of the acquisition toolchain.
//!
//! These complement the *instruction* costs in [`hwmodel::ProbeCosts`]
//! with the *time* costs that do not show up in the instruction counter:
//! timer syscalls inside probes, trace I/O, and shared-filesystem
//! contention. Each constant is fitted against the paper's Tables 1–2
//! (see EXPERIMENTS.md) and annotated with its physical counterpart.

/// Instruction-level parallelism advantage of probe code over application
/// code: probes are tiny, cache-hot, branch-predictable loops, so their
/// instructions retire faster than the application's (especially when the
/// application itself is memory-bound). Probe execution time is
/// `instructions / (PROBE_IPC_FACTOR × base_rate)`.
pub const PROBE_IPC_FACTOR: f64 = 3.0;

/// Fixed wall time of one *fine-grain* MPI event record (buffer write,
/// timer syscalls). The call-path capture itself is charged in
/// instructions ([`FINE_MPI_EVENT_INSTR`]) so that faster CPUs pay less,
/// as the paper's graphene-vs-bordereau overhead spread shows.
pub const FINE_MPI_EVENT_SECONDS: f64 = 4e-6;

/// Instructions executed by the fine-grain MPI wrapper for building the
/// complete call path — "the main source of this overhead"
/// (Section 3.2). Executed outside the counter window (the enter/exit
/// reads bracket the application section tightly), hence wall-time cost
/// without counter inflation.
pub const FINE_MPI_EVENT_INSTR: f64 = 74_000.0;

/// Wall time of one *minimal* MPI event record (no call path: two counter
/// reads plus a buffer write).
pub const MINIMAL_MPI_EVENT_SECONDS: f64 = 4.0e-6;

/// Additional per-event trace I/O time **per participating rank**: all
/// ranks append to the same shared filesystem, so the amortized flush
/// cost grows with the process count. Applied as `P × this` per recorded
/// event in both instrumenting modes.
pub const TRACE_IO_SECONDS_PER_EVENT_PER_RANK: f64 = 0.03e-6;

/// The MPI library's own software overhead per call (stack traversal,
/// argument checking) — present in every run, instrumented or not, but
/// not reproduced by any replay engine (replay knows only what the trace
/// records).
pub const MPI_SOFTWARE_SECONDS: f64 = 0.8e-6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_events_dominate_minimal_events() {
        // The whole point of Section 3.2: the per-event cost collapses
        // once the call path is dropped.
        // On a ~2 GHz core the call-path instructions add ≈12 µs,
        // making fine events several times costlier than minimal ones.
        let fine_total_at_2ghz =
            FINE_MPI_EVENT_SECONDS + FINE_MPI_EVENT_INSTR / (PROBE_IPC_FACTOR * 2.05e9);
        assert!(fine_total_at_2ghz > 4.0 * MINIMAL_MPI_EVENT_SECONDS);
    }

    #[test]
    fn constants_are_sane() {
        const { assert!(PROBE_IPC_FACTOR >= 1.0) }
        const { assert!(MPI_SOFTWARE_SECONDS > 0.0 && MPI_SOFTWARE_SECONDS < 1e-4) }
        const { assert!(TRACE_IO_SECONDS_PER_EVENT_PER_RANK < MINIMAL_MPI_EVENT_SECONDS) }
    }
}
