//! The emulated testbed's local-cost model: cache-aware compute rates
//! plus instrumentation wall-clock perturbation.
//!
//! This is the [`smpi::ExecHooks`] implementation the emulator plugs into
//! the runtime to reproduce what the paper *measured* on bordereau and
//! graphene: original runs (`Instrumentation::None`) and instrumented
//! runs (whose extra time yields the overhead columns of Tables 1–2).

use hwmodel::{CpuModel, ProbeCosts};
use platform::{HostId, Platform};
use smpi::{ComputePlan, ExecHooks};
use workloads::ComputeBlock;

use crate::compiler::CompilerOpt;
use crate::modes::Instrumentation;
use crate::params;

/// Cache-aware, instrumentation-aware execution hooks.
#[derive(Debug, Clone)]
pub struct InstrumentedHooks {
    mode: Instrumentation,
    compiler: CompilerOpt,
    costs: ProbeCosts,
    cpus: Vec<CpuModel>,
    ranks: u32,
}

impl InstrumentedHooks {
    /// Builds hooks for ranks placed on `hosts` of `platform`.
    pub fn new(
        platform: &Platform,
        hosts: &[HostId],
        mode: Instrumentation,
        compiler: CompilerOpt,
    ) -> InstrumentedHooks {
        let cpus = hosts
            .iter()
            .map(|h| CpuModel::for_host(platform.host(*h)))
            .collect::<Vec<_>>();
        InstrumentedHooks {
            mode,
            compiler,
            costs: ProbeCosts::default(),
            cpus,
            ranks: hosts.len() as u32,
        }
    }

    /// The instrumentation mode in effect.
    pub fn mode(&self) -> Instrumentation {
        self.mode
    }

    /// The CPU model of one rank (used by calibration consumers).
    pub fn cpu(&self, rank: u32) -> &CpuModel {
        &self.cpus[rank as usize]
    }
}

impl ExecHooks for InstrumentedHooks {
    fn plan_compute(&mut self, rank: u32, block: &ComputeBlock) -> ComputePlan {
        let cpu = &self.cpus[rank as usize];
        let work = block.instructions * self.compiler.instruction_factor();
        let rate = cpu.effective_rate(block.working_set);
        let probe_instr = self
            .mode
            .counted_instr_in_block(&self.costs, block, self.compiler);
        // Probe code retires faster than (possibly memory-bound)
        // application code.
        let extra_delay = probe_instr / (params::PROBE_IPC_FACTOR * cpu.base_rate);
        ComputePlan {
            work,
            rate,
            extra_delay,
        }
    }

    fn mpi_call_delay(&mut self, rank: u32) -> f64 {
        // Wrapper instructions also take time, at probe IPC. In fine
        // mode the dominant part is the call-path capture (uncounted,
        // see `params::FINE_MPI_EVENT_INSTR`); in minimal mode it is the
        // counted PAPI/event-recording work.
        let wrapper_instr = match self.mode {
            Instrumentation::TauFine { .. } => params::FINE_MPI_EVENT_INSTR,
            _ => self.mode.counted_instr_per_mpi_event(&self.costs),
        };
        let wrapper_time =
            wrapper_instr / (params::PROBE_IPC_FACTOR * self.cpus[rank as usize].base_rate);
        params::MPI_SOFTWARE_SECONDS + wrapper_time + self.mode.mpi_event_seconds(self.ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::clusters::bordereau;
    use platform::HostId;

    fn hooks(mode: Instrumentation, compiler: CompilerOpt) -> InstrumentedHooks {
        let p = bordereau();
        let hosts: Vec<HostId> = (0..8).map(HostId).collect();
        InstrumentedHooks::new(&p, &hosts, mode, compiler)
    }

    fn block(ws: u64) -> ComputeBlock {
        ComputeBlock {
            instructions: 1e9,
            fn_calls: 1e5,
            working_set: ws,
        }
    }

    #[test]
    fn uninstrumented_plan_is_pure_application() {
        let mut h = hooks(Instrumentation::None, CompilerOpt::O0);
        let plan = h.plan_compute(0, &block(0));
        assert_eq!(plan.work, 1e9);
        assert_eq!(plan.extra_delay, 0.0);
        assert_eq!(plan.rate, platform::clusters::BORDEREAU_SPEED);
        // Only the MPI library's own overhead remains on calls.
        assert!((h.mpi_call_delay(0) - params::MPI_SOFTWARE_SECONDS).abs() < 1e-12);
    }

    #[test]
    fn cache_spill_slows_the_rate() {
        let mut h = hooks(Instrumentation::None, CompilerOpt::O0);
        let fast = h.plan_compute(0, &block(512 << 10)).rate;
        let slow = h.plan_compute(0, &block(4 << 20)).rate;
        assert!(slow < fast);
    }

    #[test]
    fn fine_instrumentation_adds_probe_time_and_event_time() {
        let mut none = hooks(Instrumentation::None, CompilerOpt::O0);
        let mut fine = hooks(Instrumentation::legacy_default(), CompilerOpt::O0);
        let b = block(0);
        assert!(fine.plan_compute(0, &b).extra_delay > 0.0);
        assert_eq!(none.plan_compute(0, &b).extra_delay, 0.0);
        assert!(fine.mpi_call_delay(0) > 10.0 * none.mpi_call_delay(0));
    }

    #[test]
    fn minimal_event_cost_sits_between_none_and_fine() {
        let mut none = hooks(Instrumentation::None, CompilerOpt::O0);
        let mut min = hooks(Instrumentation::Minimal, CompilerOpt::O0);
        let mut fine = hooks(Instrumentation::legacy_default(), CompilerOpt::O0);
        let n = none.mpi_call_delay(0);
        let m = min.mpi_call_delay(0);
        let f = fine.mpi_call_delay(0);
        assert!(n < m && m < f, "{n} {m} {f}");
        // Minimal adds no per-block probe time.
        assert_eq!(min.plan_compute(0, &block(0)).extra_delay, 0.0);
    }

    #[test]
    fn o3_shrinks_work() {
        let mut o0 = hooks(Instrumentation::None, CompilerOpt::O0);
        let mut o3 = hooks(Instrumentation::None, CompilerOpt::O3);
        let b = block(0);
        assert!(o3.plan_compute(0, &b).work < o0.plan_compute(0, &b).work);
    }
}
