//! Small statistics helpers used by the experiment harness: per-sample
//! summaries (min/quartiles/max, mean, standard deviation) as reported in
//! the paper's per-process distribution figures.

use std::fmt;

/// Five-number summary plus mean/stddev of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Smallest observation.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Summarises a sample. Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let var = sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / sorted.len() as f64;
        Some(Summary {
            count: sorted.len(),
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: *sorted.last().expect("non-empty"),
            mean,
            stddev: var.sqrt(),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3} mean={:.3}±{:.3}",
            self.count, self.min, self.q1, self.median, self.q3, self.max, self.mean, self.stddev
        )
    }
}

/// Linear-interpolation quantile of a **sorted** sample, `q` in `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Relative difference `(a - b) / b`, in percent — the metric the paper
/// plots in every figure (instruction-count discrepancy, simulated-time
/// error).
pub fn relative_percent(a: f64, b: f64) -> f64 {
    assert!(b != 0.0, "relative difference against zero baseline");
    (a - b) / b * 100.0
}

/// Online mean/min/max accumulator for streaming statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert!((s.stddev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_singleton() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.q1, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&sorted, 0.0), 10.0);
        assert_eq!(quantile(&sorted, 1.0), 40.0);
        assert_eq!(quantile(&sorted, 0.5), 25.0);
        assert!((quantile(&sorted, 1.0 / 3.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn relative_percent_signs() {
        assert_eq!(relative_percent(110.0, 100.0), 10.0);
        assert_eq!(relative_percent(90.0, 100.0), -10.0);
        assert_eq!(relative_percent(100.0, 100.0), 0.0);
    }

    #[test]
    fn accumulator_tracks_extremes() {
        let mut acc = Accumulator::new();
        assert!(acc.mean().is_none());
        for x in [3.0, 1.0, 2.0] {
            acc.add(x);
        }
        assert_eq!(acc.count(), 3);
        assert_eq!(acc.mean(), Some(2.0));
        assert_eq!(acc.min(), Some(1.0));
        assert_eq!(acc.max(), Some(3.0));
        assert_eq!(acc.sum(), 6.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The five-number summary is ordered and bounded by the sample.
        #[test]
        fn summary_is_ordered(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::of(&values).unwrap();
            prop_assert!(s.min <= s.q1);
            prop_assert!(s.q1 <= s.median);
            prop_assert!(s.median <= s.q3);
            prop_assert!(s.q3 <= s.max);
            prop_assert!(s.mean >= s.min && s.mean <= s.max);
        }

        /// Quantile is monotone in q.
        #[test]
        fn quantile_monotone(mut values in proptest::collection::vec(-1e6f64..1e6, 2..50),
                             qa in 0.0f64..1.0, qb in 0.0f64..1.0) {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            prop_assert!(quantile(&values, lo) <= quantile(&values, hi) + 1e-9);
        }
    }
}
