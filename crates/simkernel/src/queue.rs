//! The future event list: a deterministic priority queue of timestamped
//! events with lazy cancellation.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is assigned
//! at insertion, so simultaneous events fire in insertion order. Cancellation
//! is *lazy*: cancelled entries stay in the heap and are skipped when popped,
//! identified by a generation counter stored alongside the target. This is
//! the standard technique for activities whose completion time is
//! rescheduled every time resource sharing changes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// What an event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An activity (see [`crate::activity`]) has exhausted its work.
    /// Carries the activity index and the generation the schedule was made
    /// for; a mismatch with the activity's current generation means the
    /// event was superseded by a rate change and must be ignored.
    ActivityComplete {
        /// Activity slot index.
        index: u32,
        /// Slot generation (instance identity) at scheduling time.
        generation: u32,
        /// Schedule counter at scheduling time; a mismatch means the
        /// completion was superseded by a rate or work change.
        sched: u32,
    },
    /// A timer set by an actor; wakes the actor with the given user key.
    Timer {
        /// Actor to wake.
        actor: u32,
        /// Opaque key handed back to the actor.
        key: u64,
    },
}

#[derive(Debug)]
struct Entry {
    at: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `kind` to fire at `at`. Events scheduled for the same
    /// instant fire in the order they were pushed.
    pub fn push(&mut self, at: Time, kind: EventKind) {
        debug_assert!(!at.is_never(), "cannot schedule an event at NEVER");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, kind });
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<(Time, EventKind)> {
        self.heap.pop().map(|e| (e.at, e.kind))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending entries, including superseded (stale) ones.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(actor: u32, key: u64) -> EventKind {
        EventKind::Timer { actor, key }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(3.0), timer(0, 3));
        q.push(Time::from_secs(1.0), timer(0, 1));
        q.push(Time::from_secs(2.0), timer(0, 2));
        let keys: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(5.0);
        for key in 0..10u64 {
            q.push(t, timer(0, key));
        }
        let keys: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(2.0), timer(0, 0));
        q.push(Time::from_secs(1.0), timer(0, 1));
        assert_eq!(q.peek_time(), Some(Time::from_secs(1.0)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_secs(1.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping yields a non-decreasing sequence of times regardless of
        /// insertion order.
        #[test]
        fn pop_order_is_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(Time::from_secs(*t), EventKind::Timer { actor: 0, key: i as u64 });
            }
            let mut last = Time::ZERO;
            let mut n = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                n += 1;
            }
            prop_assert_eq!(n, times.len());
        }

        /// FIFO among equal timestamps holds for any partition of keys into
        /// timestamp groups.
        #[test]
        fn fifo_within_groups(groups in proptest::collection::vec(0u8..4, 1..100)) {
            let mut q = EventQueue::new();
            for (i, g) in groups.iter().enumerate() {
                q.push(Time::from_secs(*g as f64), EventKind::Timer { actor: 0, key: i as u64 });
            }
            let mut seen_per_group: [Option<u64>; 4] = [None; 4];
            while let Some((t, EventKind::Timer { key, .. })) = q.pop() {
                let g = t.as_secs() as usize;
                if let Some(prev) = seen_per_group[g] {
                    prop_assert!(key > prev, "FIFO violated in group {}", g);
                }
                seen_per_group[g] = Some(key);
            }
        }
    }
}
