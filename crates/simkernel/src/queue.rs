//! The future event list: a deterministic priority queue of timestamped
//! events with lazy cancellation.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is assigned
//! at insertion, so simultaneous events fire in insertion order. Cancellation
//! is *lazy*: cancelled entries stay in the heap and are skipped when popped,
//! identified by a generation counter stored alongside the target. This is
//! the standard technique for activities whose completion time is
//! rescheduled every time resource sharing changes.
//!
//! Lazy cancellation has a pathology: workloads that re-share rates much
//! more often than activities complete (large max-min components under
//! churn) can grow the heap mostly full of dead entries, making every push
//! and pop pay `O(log dead)`. The queue therefore tracks how many entries
//! its owner has reported superseded ([`EventQueue::note_superseded`]) and
//! supports an explicit rebuild ([`EventQueue::compact`]) that the owner
//! triggers once stale entries exceed half the heap
//! ([`EventQueue::should_compact`]).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// What an event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An activity (see [`crate::activity`]) has exhausted its work.
    /// Carries the activity index and the generation the schedule was made
    /// for; a mismatch with the activity's current generation means the
    /// event was superseded by a rate change and must be ignored.
    ActivityComplete {
        /// Activity slot index.
        index: u32,
        /// Slot generation (instance identity) at scheduling time.
        generation: u32,
        /// Schedule counter at scheduling time; a mismatch means the
        /// completion was superseded by a rate or work change.
        sched: u32,
    },
    /// A timer set by an actor; wakes the actor with the given user key.
    Timer {
        /// Actor to wake.
        actor: u32,
        /// Opaque key handed back to the actor.
        key: u64,
    },
}

#[derive(Debug)]
struct Entry {
    at: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Once the heap holds at least this many entries, a majority of stale
/// ones triggers [`EventQueue::should_compact`]. Below it, compaction would
/// churn allocations without a measurable win.
const MIN_COMPACT_LEN: usize = 64;

/// Deterministic future event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
    /// Entries still in the heap that the owner has reported superseded.
    stale: usize,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            stale: 0,
        }
    }

    /// Schedules `kind` to fire at `at`. Events scheduled for the same
    /// instant fire in the order they were pushed.
    pub fn push(&mut self, at: Time, kind: EventKind) {
        debug_assert!(!at.is_never(), "cannot schedule an event at NEVER");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, kind });
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Stale entries are returned like any other; the owner detects
    /// them (generation/schedule mismatch) and must report the skip with
    /// [`EventQueue::note_stale_popped`].
    pub fn pop(&mut self) -> Option<(Time, EventKind)> {
        self.heap.pop().map(|e| (e.at, e.kind))
    }

    /// The timestamp of the earliest pending entry — a *lower bound* on the
    /// next live event's time, since the earliest entry may be a stale one
    /// that will be skipped. Always `O(1)`, compaction or not.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending entries, *including* superseded (stale) ones that
    /// will be skipped when popped. Use [`EventQueue::live_len`] for the
    /// number of events that will actually fire.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of pending entries that are still live (will fire), assuming
    /// every superseded entry was reported via
    /// [`EventQueue::note_superseded`].
    pub fn live_len(&self) -> usize {
        self.heap.len() - self.stale
    }

    /// Number of entries reported superseded and not yet popped or
    /// compacted away.
    pub fn stale_len(&self) -> usize {
        self.stale
    }

    /// `true` when no entries are pending (live or stale).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Records that one entry currently in the heap has been superseded
    /// (its target was rescheduled or cancelled) and will be skipped when
    /// popped.
    pub fn note_superseded(&mut self) {
        debug_assert!(self.stale < self.heap.len(), "more stale entries than entries");
        self.stale += 1;
    }

    /// Records that a popped entry turned out to be stale (the owner
    /// skipped it).
    pub fn note_stale_popped(&mut self) {
        debug_assert!(self.stale > 0, "stale pop without a matching note_superseded");
        self.stale = self.stale.saturating_sub(1);
    }

    /// `true` when stale entries dominate the heap and a
    /// [`EventQueue::compact`] would more than halve it.
    pub fn should_compact(&self) -> bool {
        self.heap.len() >= MIN_COMPACT_LEN && self.stale * 2 > self.heap.len()
    }

    /// Rebuilds the heap keeping only entries for which `keep` returns
    /// `true`, and resets the stale count. `O(n)`: the retained entries are
    /// re-heapified in bulk. Pop order of the survivors is unchanged — it
    /// is fully determined by each entry's `(time, sequence)` key, which
    /// compaction does not touch.
    pub fn compact(&mut self, mut keep: impl FnMut(&EventKind) -> bool) {
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|e| keep(&e.kind));
        self.heap = BinaryHeap::from(entries);
        self.stale = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(actor: u32, key: u64) -> EventKind {
        EventKind::Timer { actor, key }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(3.0), timer(0, 3));
        q.push(Time::from_secs(1.0), timer(0, 1));
        q.push(Time::from_secs(2.0), timer(0, 2));
        let keys: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(5.0);
        for key in 0..10u64 {
            q.push(t, timer(0, key));
        }
        let keys: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(2.0), timer(0, 0));
        q.push(Time::from_secs(1.0), timer(0, 1));
        assert_eq!(q.peek_time(), Some(Time::from_secs(1.0)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_secs(1.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
        assert_eq!(q.live_len(), 0);
        assert_eq!(q.stale_len(), 0);
    }

    #[test]
    fn stale_accounting_tracks_live_len() {
        let mut q = EventQueue::new();
        for key in 0..4u64 {
            q.push(Time::from_secs(key as f64), timer(0, key));
        }
        q.note_superseded();
        q.note_superseded();
        assert_eq!(q.len(), 4);
        assert_eq!(q.live_len(), 2);
        assert_eq!(q.stale_len(), 2);
        let _ = q.pop();
        q.note_stale_popped();
        assert_eq!(q.len(), 3);
        assert_eq!(q.live_len(), 2);
    }

    #[test]
    fn compact_drops_only_filtered_entries_and_preserves_order() {
        let mut q = EventQueue::new();
        // Interleave keepers (keys divisible by 3) and stale entries at
        // identical timestamps so FIFO order is exercised across a rebuild.
        for key in 0..99u64 {
            q.push(Time::from_secs((key / 10) as f64), timer(0, key));
            if key % 3 != 0 {
                q.note_superseded();
            }
        }
        assert!(q.should_compact(), "2/3 stale is a strict majority");
        q.compact(|k| matches!(k, EventKind::Timer { key, .. } if key % 3 == 0));
        assert_eq!(q.len(), 33);
        assert_eq!(q.live_len(), 33);
        assert_eq!(q.stale_len(), 0);
        assert!(!q.should_compact());
        let keys: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        let expect: Vec<u64> = (0..99).filter(|k| k % 3 == 0).collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn should_compact_needs_majority_and_minimum_size() {
        let mut q = EventQueue::new();
        for key in 0..10u64 {
            q.push(Time::from_secs(key as f64), timer(0, key));
        }
        for _ in 0..9 {
            q.note_superseded();
        }
        // 90% stale but below the size floor: not worth a rebuild.
        assert!(!q.should_compact());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping yields a non-decreasing sequence of times regardless of
        /// insertion order.
        #[test]
        fn pop_order_is_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(Time::from_secs(*t), EventKind::Timer { actor: 0, key: i as u64 });
            }
            let mut last = Time::ZERO;
            let mut n = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                n += 1;
            }
            prop_assert_eq!(n, times.len());
        }

        /// Compacting away a random subset of entries never perturbs the
        /// relative pop order of the survivors.
        #[test]
        fn compact_preserves_survivor_order(
            entries in proptest::collection::vec((0.0f64..100.0, proptest::prelude::any::<bool>()), 1..300),
        ) {
            let mut q = EventQueue::new();
            let mut reference = EventQueue::new();
            for (i, (t, live)) in entries.iter().enumerate() {
                q.push(Time::from_secs(*t), EventKind::Timer { actor: u32::from(*live), key: i as u64 });
                if *live {
                    reference.push(Time::from_secs(*t), EventKind::Timer { actor: 1, key: i as u64 });
                } else {
                    q.note_superseded();
                }
            }
            q.compact(|k| matches!(k, EventKind::Timer { actor: 1, .. }));
            prop_assert_eq!(q.stale_len(), 0);
            while let Some((t, EventKind::Timer { key, .. })) = q.pop() {
                // The reference queue saw the live entries pushed in the same
                // relative order, so (time, seq) ranks them identically.
                let (rt, EventKind::Timer { key: rkey, .. }) = reference.pop().unwrap() else {
                    unreachable!()
                };
                prop_assert_eq!(t, rt);
                prop_assert_eq!(key, rkey);
            }
            prop_assert!(reference.is_empty());
        }

        /// FIFO among equal timestamps holds for any partition of keys into
        /// timestamp groups.
        #[test]
        fn fifo_within_groups(groups in proptest::collection::vec(0u8..4, 1..100)) {
            let mut q = EventQueue::new();
            for (i, g) in groups.iter().enumerate() {
                q.push(Time::from_secs(*g as f64), EventKind::Timer { actor: 0, key: i as u64 });
            }
            let mut seen_per_group: [Option<u64>; 4] = [None; 4];
            while let Some((t, EventKind::Timer { key, .. })) = q.pop() {
                let g = t.as_secs() as usize;
                if let Some(prev) = seen_per_group[g] {
                    prop_assert!(key > prev, "FIFO violated in group {}", g);
                }
                seen_per_group[g] = Some(key);
            }
        }
    }
}
