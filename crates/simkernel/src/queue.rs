//! The future event list: a deterministic priority queue of timestamped
//! events with lazy cancellation, available in two implementations behind
//! one API.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is assigned
//! at insertion, so simultaneous events fire in insertion order. Cancellation
//! is *lazy*: cancelled entries stay queued and are skipped when popped,
//! identified by a generation counter stored alongside the target. This is
//! the standard technique for activities whose completion time is
//! rescheduled every time resource sharing changes.
//!
//! Two implementations are selected by [`FelImpl`]:
//!
//! * [`FelImpl::Heap`] — a binary heap, `O(log n)` push and pop. Kept as
//!   the reference implementation; the differential tests in this module
//!   prove the ladder pops the exact same `(time, seq)` sequence.
//! * [`FelImpl::Ladder`] — the default: a ladder (calendar) queue. Events
//!   land in one of [`LADDER_BUCKETS`] unsorted buckets partitioning the
//!   current *epoch* of simulated time, `O(1)` per push; each bucket is
//!   sorted once, when the simulation clock reaches it. Far-future events
//!   wait in an overflow list that reseeds the next epoch. Because the
//!   buckets partition time and `(time, seq)` is a unique total key, the
//!   concatenation of per-bucket sorts reproduces the heap's pop order bit
//!   for bit.
//!
//! Lazy cancellation has a pathology: workloads that re-share rates much
//! more often than activities complete (large max-min components under
//! churn) can grow the queue mostly full of dead entries, making every
//! push and pop pay for the dead weight. The queue therefore tracks how
//! many entries its owner has reported superseded
//! ([`EventQueue::note_superseded`]) and supports an explicit purge
//! ([`EventQueue::compact`]) that the owner triggers once stale entries
//! form a strict majority of a queue at least [`MIN_COMPACT_LEN`] entries
//! long ([`EventQueue::should_compact`]). For the heap this is an `O(n)`
//! rebuild; the ladder instead drops dead entries in place at bucket
//! granularity (`Vec::retain` per bucket), never re-sorting survivors.
//!
//! With the `profile` cargo feature enabled the queue additionally counts
//! scheduling traffic (events scheduled / superseded / popped, ladder
//! bucket sorts, epoch reseeds, overflow spills, compactions) in a
//! [`FelProfile`]; without the feature the counters compile to nothing.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// What an event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An activity (see [`crate::activity`]) has exhausted its work.
    /// Carries the activity index and the generation the schedule was made
    /// for; a mismatch with the activity's current generation means the
    /// event was superseded by a rate change and must be ignored.
    ActivityComplete {
        /// Activity slot index.
        index: u32,
        /// Slot generation (instance identity) at scheduling time.
        generation: u32,
        /// Schedule counter at scheduling time; a mismatch means the
        /// completion was superseded by a rate or work change.
        sched: u32,
    },
    /// A timer set by an actor; wakes the actor with the given user key.
    Timer {
        /// Actor to wake.
        actor: u32,
        /// Opaque key handed back to the actor.
        key: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    at: Time,
    seq: u64,
    kind: EventKind,
}

impl Entry {
    /// The total order key: `(time, insertion sequence)`. Unique, since
    /// `seq` is unique.
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Once the queue holds at least this many entries, a *strict majority* of
/// stale ones triggers [`EventQueue::should_compact`]. Below this floor,
/// compaction would churn memory without a measurable win. DESIGN.md §4
/// ("Performance model") documents the same constant.
pub const MIN_COMPACT_LEN: usize = 64;

/// Number of rung buckets in the ladder implementation. Each epoch of
/// simulated time is split evenly across this many unsorted buckets;
/// events past the epoch wait in an overflow list.
pub const LADDER_BUCKETS: usize = 64;

/// Selects the future-event-list implementation backing an
/// [`EventQueue`]. Both implementations pop the exact same `(time, seq)`
/// sequence for the same pushes; they differ only in cost profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FelImpl {
    /// Binary heap: `O(log n)` push/pop. The reference implementation.
    Heap,
    /// Ladder (calendar) queue: `O(1)` amortized push, one unstable sort
    /// per bucket as the clock reaches it. The default.
    #[default]
    Ladder,
}

/// Hot-path counters for the event core, surfaced by
/// [`EventQueue::profile`] and aggregated into `BENCH_replay.json` by the
/// bench harness. All increments are compiled out unless the `profile`
/// cargo feature is enabled, so shipping the fields costs nothing on the
/// replay hot path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FelProfile {
    /// Events pushed.
    pub scheduled: u64,
    /// Entries reported superseded (cumulative; `stale_len` is the live
    /// count).
    pub superseded: u64,
    /// Entries popped, stale or live.
    pub popped: u64,
    /// Popped entries the owner reported as stale skips.
    pub stale_popped: u64,
    /// Ladder pushes that landed past the current epoch (overflow
    /// spills).
    pub spills: u64,
    /// Ladder buckets sorted into the consumption buffer.
    pub bucket_sorts: u64,
    /// Ladder epoch reseeds from the overflow list.
    pub reseeds: u64,
    /// Explicit compactions performed.
    pub compactions: u64,
}

impl FelProfile {
    /// Events popped and actually delivered (popped minus stale skips).
    pub fn fired(&self) -> u64 {
        self.popped - self.stale_popped
    }
}

/// Whether the `profile` cargo feature compiled the FEL counters in.
/// Lets consumers (the `obs::Metrics` snapshot, reports) distinguish
/// "zero events" from "not measured" without recompiling.
pub const fn profile_enabled() -> bool {
    cfg!(feature = "profile")
}

/// Increments a profile counter; compiles to nothing without the
/// `profile` feature.
#[inline(always)]
fn bump(_counter: &mut u64) {
    #[cfg(feature = "profile")]
    {
        *_counter += 1;
    }
}

/// The ladder queue. `bottom` holds the already-reached part of the
/// epoch, sorted *descending* by `(time, seq)` so the next event pops
/// from the back; `buckets[cur..]` partition the rest of the epoch into
/// unsorted time slices; `overflow` holds everything past the epoch and
/// seeds the next one. All buffers are recycled (swap + `drain`), so a
/// warmed-up ladder performs no allocation.
#[derive(Debug)]
struct Ladder {
    bottom: Vec<Entry>,
    buckets: Vec<Vec<Entry>>,
    /// First bucket not yet drained into `bottom`.
    cur: usize,
    /// Epoch origin, seconds. Meaningless until the first reseed.
    epoch_start: f64,
    /// Bucket width, seconds; zero until the first reseed.
    width: f64,
    overflow: Vec<Entry>,
    /// Reusable reseed buffer.
    scratch: Vec<Entry>,
    len: usize,
}

impl Ladder {
    fn with_capacity(capacity: usize) -> Ladder {
        Ladder {
            bottom: Vec::new(),
            buckets: std::iter::repeat_with(Vec::new)
                .take(LADDER_BUCKETS)
                .collect(),
            cur: LADDER_BUCKETS,
            epoch_start: 0.0,
            width: 0.0,
            overflow: Vec::with_capacity(capacity),
            scratch: Vec::new(),
            len: 0,
        }
    }

    /// Bucket index of `t` under the current epoch. The `f64 → usize`
    /// cast saturates, so times before the epoch map to 0 and far-future
    /// times map past [`LADDER_BUCKETS`]; callers route on the result.
    /// This is the *single* placement formula — push, reseed, and peek
    /// all use it, so an entry's segment is always consistent with the
    /// drain order.
    #[inline]
    fn slot(&self, t: f64) -> usize {
        ((t - self.epoch_start) / self.width) as usize
    }

    fn push(&mut self, e: Entry, profile: &mut FelProfile) {
        self.len += 1;
        if self.width == 0.0 {
            // No epoch yet: everything collects in overflow until the
            // first pop reseeds.
            self.overflow.push(e);
            return;
        }
        let s = self.slot(e.at.as_secs());
        if s < self.cur {
            // The event lands in the already-drained region: merge it
            // into the sorted bottom (descending, earliest at the back).
            // Keys are unique, so the insertion point is unambiguous.
            let key = e.key();
            let pos = self.bottom.partition_point(|x| x.key() > key);
            self.bottom.insert(pos, e);
        } else if s < LADDER_BUCKETS {
            self.buckets[s].push(e);
        } else {
            bump(&mut profile.spills);
            self.overflow.push(e);
        }
    }

    fn pop(&mut self, profile: &mut FelProfile) -> Option<Entry> {
        loop {
            if let Some(e) = self.bottom.pop() {
                self.len -= 1;
                return Some(e);
            }
            while self.cur < LADDER_BUCKETS {
                if self.buckets[self.cur].is_empty() {
                    self.cur += 1;
                    continue;
                }
                // Reuse the bottom's storage for the bucket and vice
                // versa; capacities circulate instead of reallocating.
                std::mem::swap(&mut self.bottom, &mut self.buckets[self.cur]);
                self.cur += 1;
                // Unstable sort allocates nothing; keys are unique so
                // stability is irrelevant. Descending: pop from the back.
                self.bottom
                    .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                bump(&mut profile.bucket_sorts);
                break;
            }
            if !self.bottom.is_empty() {
                continue;
            }
            if self.overflow.is_empty() {
                return None;
            }
            self.reseed(profile);
        }
    }

    /// Starts a new epoch over the overflow list. The entry at the
    /// minimum time always lands in bucket 0, so every reseed makes
    /// progress; entries the placement formula still puts past the last
    /// bucket (at most a rounding fringe) stay in overflow for the epoch
    /// after.
    fn reseed(&mut self, profile: &mut FelProfile) {
        debug_assert!(self.bottom.is_empty());
        debug_assert!(self.buckets.iter().all(Vec::is_empty));
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for e in &self.overflow {
            let t = e.at.as_secs();
            min = min.min(t);
            max = max.max(t);
        }
        self.epoch_start = min;
        let span = max - min;
        self.width = if span > 0.0 {
            span / LADDER_BUCKETS as f64
        } else {
            1.0
        };
        self.cur = 0;
        std::mem::swap(&mut self.overflow, &mut self.scratch);
        let (epoch_start, width) = (self.epoch_start, self.width);
        for e in self.scratch.drain(..) {
            // Same placement formula as `slot` (inlined: `drain` holds a
            // field borrow).
            let s = ((e.at.as_secs() - epoch_start) / width) as usize;
            if s < LADDER_BUCKETS {
                self.buckets[s].push(e);
            } else {
                self.overflow.push(e);
            }
        }
        bump(&mut profile.reseeds);
    }

    /// Earliest pending time. Bottom answers in `O(1)`; otherwise the
    /// first non-empty segment is scanned (segments are ordered by time,
    /// so its minimum is the global minimum).
    fn peek_time(&self) -> Option<Time> {
        if let Some(e) = self.bottom.last() {
            return Some(e.at);
        }
        for b in &self.buckets[self.cur.min(LADDER_BUCKETS)..] {
            if !b.is_empty() {
                return b.iter().map(|e| e.at).min();
            }
        }
        self.overflow.iter().map(|e| e.at).min()
    }

    /// Drops dead entries in place, bucket by bucket. `Vec::retain`
    /// preserves relative order (and the bottom's sortedness), so
    /// survivors keep their exact pop ranks without any re-sort.
    fn compact(&mut self, keep: &mut impl FnMut(&EventKind) -> bool) {
        self.bottom.retain(|e| keep(&e.kind));
        for b in &mut self.buckets {
            b.retain(|e| keep(&e.kind));
        }
        self.overflow.retain(|e| keep(&e.kind));
        self.len = self.bottom.len()
            + self.buckets.iter().map(Vec::len).sum::<usize>()
            + self.overflow.len();
    }
}

#[derive(Debug)]
enum Fel {
    Heap(BinaryHeap<Entry>),
    Ladder(Ladder),
}

/// Deterministic future event list. See the [module docs](self).
#[derive(Debug)]
pub struct EventQueue {
    fel: Fel,
    next_seq: u64,
    /// Entries still queued that the owner has reported superseded.
    stale: usize,
    profile: FelProfile,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty queue with the default implementation
    /// ([`FelImpl::Ladder`]).
    pub fn new() -> Self {
        Self::with_fel(FelImpl::default())
    }

    /// Creates an empty queue backed by `fel`.
    pub fn with_fel(fel: FelImpl) -> Self {
        Self::with_capacity_fel(0, fel)
    }

    /// Creates an empty queue with room for `capacity` events, using the
    /// default implementation.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_fel(capacity, FelImpl::default())
    }

    /// Creates an empty queue with room for `capacity` events, backed by
    /// `fel`.
    pub fn with_capacity_fel(capacity: usize, fel: FelImpl) -> Self {
        let fel = match fel {
            FelImpl::Heap => Fel::Heap(BinaryHeap::with_capacity(capacity)),
            FelImpl::Ladder => Fel::Ladder(Ladder::with_capacity(capacity)),
        };
        EventQueue {
            fel,
            next_seq: 0,
            stale: 0,
            profile: FelProfile::default(),
        }
    }

    /// Which implementation backs this queue.
    pub fn fel(&self) -> FelImpl {
        match self.fel {
            Fel::Heap(_) => FelImpl::Heap,
            Fel::Ladder(_) => FelImpl::Ladder,
        }
    }

    /// The hot-path counters gathered so far (all zero unless the
    /// `profile` cargo feature is enabled).
    pub fn profile(&self) -> FelProfile {
        self.profile
    }

    /// Schedules `kind` to fire at `at`. Events scheduled for the same
    /// instant fire in the order they were pushed.
    pub fn push(&mut self, at: Time, kind: EventKind) {
        debug_assert!(!at.is_never(), "cannot schedule an event at NEVER");
        let seq = self.next_seq;
        self.next_seq += 1;
        bump(&mut self.profile.scheduled);
        let e = Entry { at, seq, kind };
        match &mut self.fel {
            Fel::Heap(h) => h.push(e),
            Fel::Ladder(l) => l.push(e, &mut self.profile),
        }
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Stale entries are returned like any other; the owner detects
    /// them (generation/schedule mismatch) and must report the skip with
    /// [`EventQueue::note_stale_popped`].
    pub fn pop(&mut self) -> Option<(Time, EventKind)> {
        let e = match &mut self.fel {
            Fel::Heap(h) => h.pop(),
            Fel::Ladder(l) => l.pop(&mut self.profile),
        }?;
        bump(&mut self.profile.popped);
        Some((e.at, e.kind))
    }

    /// The timestamp of the earliest pending entry — a *lower bound* on the
    /// next live event's time, since the earliest entry may be a stale one
    /// that will be skipped. `O(1)` for the heap; the ladder may scan its
    /// first non-empty segment.
    pub fn peek_time(&self) -> Option<Time> {
        match &self.fel {
            Fel::Heap(h) => h.peek().map(|e| e.at),
            Fel::Ladder(l) => l.peek_time(),
        }
    }

    /// Number of pending entries, *including* superseded (stale) ones that
    /// will be skipped when popped. Use [`EventQueue::live_len`] for the
    /// number of events that will actually fire.
    pub fn len(&self) -> usize {
        match &self.fel {
            Fel::Heap(h) => h.len(),
            Fel::Ladder(l) => l.len,
        }
    }

    /// Number of pending entries that are still live (will fire), assuming
    /// every superseded entry was reported via
    /// [`EventQueue::note_superseded`].
    pub fn live_len(&self) -> usize {
        self.len() - self.stale
    }

    /// Number of entries reported superseded and not yet popped or
    /// compacted away.
    pub fn stale_len(&self) -> usize {
        self.stale
    }

    /// `true` when no entries are pending (live or stale).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records that one entry currently queued has been superseded (its
    /// target was rescheduled or cancelled) and will be skipped when
    /// popped.
    pub fn note_superseded(&mut self) {
        debug_assert!(self.stale < self.len(), "more stale entries than entries");
        self.stale += 1;
        bump(&mut self.profile.superseded);
    }

    /// Records that a popped entry turned out to be stale (the owner
    /// skipped it).
    pub fn note_stale_popped(&mut self) {
        debug_assert!(
            self.stale > 0,
            "stale pop without a matching note_superseded"
        );
        self.stale = self.stale.saturating_sub(1);
        bump(&mut self.profile.stale_popped);
    }

    /// `true` when stale entries form a strict majority of a queue at
    /// least [`MIN_COMPACT_LEN`] entries long, so an
    /// [`EventQueue::compact`] would more than halve it.
    pub fn should_compact(&self) -> bool {
        self.len() >= MIN_COMPACT_LEN && self.stale * 2 > self.len()
    }

    /// Drops every entry for which `keep` returns `false` and resets the
    /// stale count. Pop order of the survivors is unchanged — it is fully
    /// determined by each entry's `(time, sequence)` key, which compaction
    /// does not touch. `O(n)` for the heap (bulk re-heapify); the ladder
    /// retains in place at bucket granularity without re-sorting.
    pub fn compact(&mut self, mut keep: impl FnMut(&EventKind) -> bool) {
        match &mut self.fel {
            Fel::Heap(h) => {
                let mut entries = std::mem::take(h).into_vec();
                entries.retain(|e| keep(&e.kind));
                *h = BinaryHeap::from(entries);
            }
            Fel::Ladder(l) => l.compact(&mut keep),
        }
        self.stale = 0;
        bump(&mut self.profile.compactions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(actor: u32, key: u64) -> EventKind {
        EventKind::Timer { actor, key }
    }

    fn drain_keys(q: &mut EventQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { key, .. } => key,
                EventKind::ActivityComplete { .. } => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn default_impl_is_ladder() {
        assert_eq!(EventQueue::new().fel(), FelImpl::Ladder);
        assert_eq!(EventQueue::with_capacity(16).fel(), FelImpl::Ladder);
        assert_eq!(FelImpl::default(), FelImpl::Ladder);
    }

    #[test]
    fn pops_in_time_order() {
        for fel in [FelImpl::Heap, FelImpl::Ladder] {
            let mut q = EventQueue::with_fel(fel);
            q.push(Time::from_secs(3.0), timer(0, 3));
            q.push(Time::from_secs(1.0), timer(0, 1));
            q.push(Time::from_secs(2.0), timer(0, 2));
            assert_eq!(drain_keys(&mut q), vec![1, 2, 3], "{fel:?}");
        }
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        for fel in [FelImpl::Heap, FelImpl::Ladder] {
            let mut q = EventQueue::with_fel(fel);
            let t = Time::from_secs(5.0);
            for key in 0..10u64 {
                q.push(t, timer(0, key));
            }
            assert_eq!(drain_keys(&mut q), (0..10).collect::<Vec<_>>(), "{fel:?}");
        }
    }

    #[test]
    fn peek_matches_pop() {
        for fel in [FelImpl::Heap, FelImpl::Ladder] {
            let mut q = EventQueue::with_fel(fel);
            q.push(Time::from_secs(2.0), timer(0, 0));
            q.push(Time::from_secs(1.0), timer(0, 1));
            assert_eq!(q.peek_time(), Some(Time::from_secs(1.0)), "{fel:?}");
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, Time::from_secs(1.0));
            assert_eq!(q.peek_time(), Some(Time::from_secs(2.0)), "{fel:?}");
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn empty_queue_behaviour() {
        for fel in [FelImpl::Heap, FelImpl::Ladder] {
            let mut q = EventQueue::with_fel(fel);
            assert!(q.pop().is_none());
            assert!(q.peek_time().is_none());
            assert!(q.is_empty());
            assert_eq!(q.live_len(), 0);
            assert_eq!(q.stale_len(), 0);
        }
    }

    #[test]
    fn stale_accounting_tracks_live_len() {
        let mut q = EventQueue::new();
        for key in 0..4u64 {
            q.push(Time::from_secs(key as f64), timer(0, key));
        }
        q.note_superseded();
        q.note_superseded();
        assert_eq!(q.len(), 4);
        assert_eq!(q.live_len(), 2);
        assert_eq!(q.stale_len(), 2);
        let _ = q.pop();
        q.note_stale_popped();
        assert_eq!(q.len(), 3);
        assert_eq!(q.live_len(), 2);
    }

    #[test]
    fn compact_drops_only_filtered_entries_and_preserves_order() {
        for fel in [FelImpl::Heap, FelImpl::Ladder] {
            let mut q = EventQueue::with_fel(fel);
            // Interleave keepers (keys divisible by 3) and stale entries at
            // identical timestamps so FIFO order is exercised across a
            // purge.
            for key in 0..99u64 {
                q.push(Time::from_secs((key / 10) as f64), timer(0, key));
                if key % 3 != 0 {
                    q.note_superseded();
                }
            }
            assert!(q.should_compact(), "2/3 stale is a strict majority");
            q.compact(|k| matches!(k, EventKind::Timer { key, .. } if key % 3 == 0));
            assert_eq!(q.len(), 33);
            assert_eq!(q.live_len(), 33);
            assert_eq!(q.stale_len(), 0);
            assert!(!q.should_compact());
            let expect: Vec<u64> = (0..99).filter(|k| k % 3 == 0).collect();
            assert_eq!(drain_keys(&mut q), expect, "{fel:?}");
        }
    }

    #[test]
    fn should_compact_needs_majority_and_minimum_size() {
        let mut q = EventQueue::new();
        for key in 0..10u64 {
            q.push(Time::from_secs(key as f64), timer(0, key));
        }
        for _ in 0..9 {
            q.note_superseded();
        }
        // 90% stale but below the size floor: not worth a purge.
        assert!(!q.should_compact());
    }

    #[test]
    fn ladder_reseeds_across_sparse_epochs() {
        // Clusters of events separated by huge gaps force epoch turnover:
        // every cluster past the first starts life in overflow.
        let mut q = EventQueue::with_fel(FelImpl::Ladder);
        let mut expect = Vec::new();
        let mut key = 0u64;
        for cluster in 0..5 {
            let base = cluster as f64 * 1e9;
            for i in 0..50u64 {
                let t = base + ((i * 37) % 50) as f64;
                q.push(Time::from_secs(t), timer(0, key));
                expect.push((t, key));
                key += 1;
            }
        }
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got: Vec<(f64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, k)| match k {
                EventKind::Timer { key, .. } => (t.as_secs(), key),
                EventKind::ActivityComplete { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn ladder_accepts_pushes_into_the_drained_region() {
        // Pop half an epoch, then push events earlier than everything
        // still queued (but later than the last pop): they must merge into
        // the bottom and pop next.
        let mut q = EventQueue::with_fel(FelImpl::Ladder);
        for key in 0..100u64 {
            q.push(Time::from_secs(key as f64), timer(0, key));
        }
        for expect in 0..50u64 {
            let (_, EventKind::Timer { key, .. }) = q.pop().unwrap() else {
                unreachable!()
            };
            assert_eq!(key, expect);
        }
        q.push(Time::from_secs(49.5), timer(0, 1000));
        q.push(Time::from_secs(49.25), timer(0, 1001));
        assert_eq!(q.peek_time(), Some(Time::from_secs(49.25)));
        assert_eq!(drain_keys(&mut q), {
            let mut v = vec![1001, 1000];
            v.extend(50..100);
            v
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        /// Popping yields a non-decreasing sequence of times regardless of
        /// insertion order, for both implementations.
        #[test]
        fn pop_order_is_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            for fel in [FelImpl::Heap, FelImpl::Ladder] {
                let mut q = EventQueue::with_fel(fel);
                for (i, t) in times.iter().enumerate() {
                    q.push(Time::from_secs(*t), EventKind::Timer { actor: 0, key: i as u64 });
                }
                let mut last = Time::ZERO;
                let mut n = 0;
                while let Some((t, _)) = q.pop() {
                    prop_assert!(t >= last);
                    last = t;
                    n += 1;
                }
                prop_assert_eq!(n, times.len());
            }
        }

        /// Compacting away a random subset of entries never perturbs the
        /// relative pop order of the survivors.
        #[test]
        fn compact_preserves_survivor_order(
            entries in proptest::collection::vec((0.0f64..100.0, proptest::prelude::any::<bool>()), 1..300),
        ) {
            for fel in [FelImpl::Heap, FelImpl::Ladder] {
                let mut q = EventQueue::with_fel(fel);
                let mut reference = EventQueue::with_fel(fel);
                for (i, (t, live)) in entries.iter().enumerate() {
                    q.push(Time::from_secs(*t), EventKind::Timer { actor: u32::from(*live), key: i as u64 });
                    if *live {
                        reference.push(Time::from_secs(*t), EventKind::Timer { actor: 1, key: i as u64 });
                    } else {
                        q.note_superseded();
                    }
                }
                q.compact(|k| matches!(k, EventKind::Timer { actor: 1, .. }));
                prop_assert_eq!(q.stale_len(), 0);
                while let Some((t, EventKind::Timer { key, .. })) = q.pop() {
                    // The reference queue saw the live entries pushed in the
                    // same relative order, so (time, seq) ranks them
                    // identically.
                    let (rt, EventKind::Timer { key: rkey, .. }) = reference.pop().unwrap() else {
                        unreachable!()
                    };
                    prop_assert_eq!(t, rt);
                    prop_assert_eq!(key, rkey);
                }
                prop_assert!(reference.is_empty());
            }
        }

        /// FIFO among equal timestamps holds for any partition of keys into
        /// timestamp groups.
        #[test]
        fn fifo_within_groups(groups in proptest::collection::vec(0u8..4, 1..100)) {
            for fel in [FelImpl::Heap, FelImpl::Ladder] {
                let mut q = EventQueue::with_fel(fel);
                for (i, g) in groups.iter().enumerate() {
                    q.push(Time::from_secs(*g as f64), EventKind::Timer { actor: 0, key: i as u64 });
                }
                let mut seen_per_group: [Option<u64>; 4] = [None; 4];
                while let Some((t, EventKind::Timer { key, .. })) = q.pop() {
                    let g = t.as_secs() as usize;
                    if let Some(prev) = seen_per_group[g] {
                        prop_assert!(key > prev, "FIFO violated in group {}", g);
                    }
                    seen_per_group[g] = Some(key);
                }
            }
        }

        /// The differential acceptance test for the ladder: any random
        /// interleaving of pushes (including time clusters far apart and
        /// duplicate timestamps), pops, supersedes, and compactions
        /// produces a pop sequence bit-identical to the binary heap's.
        #[test]
        fn fel_heap_vs_ladder_identical(
            ops in proptest::collection::vec((0u8..12, 0u32..4, 0.0f64..100.0), 1..400),
        ) {
            let mut heap = EventQueue::with_fel(FelImpl::Heap);
            let mut ladder = EventQueue::with_fel(FelImpl::Ladder);
            // Keys pushed and not yet popped, oldest first, plus the set
            // already marked superseded — the "owner" state driving both
            // queues identically.
            let mut pending: Vec<u64> = Vec::new();
            let mut dead: HashSet<u64> = HashSet::new();
            let mut next_key = 0u64;
            let pop_both = |heap: &mut EventQueue,
                            ladder: &mut EventQueue,
                            pending: &mut Vec<u64>,
                            dead: &mut HashSet<u64>| {
                let a = heap.pop();
                let b = ladder.pop();
                prop_assert_eq!(a, b, "heap and ladder disagree");
                if let Some((_, EventKind::Timer { key, .. })) = a {
                    pending.retain(|k| *k != key);
                    if dead.remove(&key) {
                        heap.note_stale_popped();
                        ladder.note_stale_popped();
                    }
                }
            };
            for (op, cluster, t) in ops {
                match op {
                    // Push: timestamps drawn from one of four clusters a
                    // billion seconds apart, to exercise epoch reseeds.
                    0..=5 => {
                        let at = Time::from_secs(f64::from(cluster) * 1e9 + t);
                        let key = next_key;
                        next_key += 1;
                        heap.push(at, EventKind::Timer { actor: 0, key });
                        ladder.push(at, EventKind::Timer { actor: 0, key });
                        pending.push(key);
                    }
                    // Pop and compare.
                    6..=8 => {
                        pop_both(&mut heap, &mut ladder, &mut pending, &mut dead);
                    }
                    // Supersede the oldest still-live pending entry.
                    9..=10 => {
                        if let Some(&key) = pending.iter().find(|k| !dead.contains(k)) {
                            dead.insert(key);
                            heap.note_superseded();
                            ladder.note_superseded();
                        }
                    }
                    // Compact both, dropping the dead set.
                    _ => {
                        prop_assert_eq!(heap.should_compact(), ladder.should_compact());
                        heap.compact(|k| matches!(k, EventKind::Timer { key, .. } if !dead.contains(key)));
                        ladder.compact(|k| matches!(k, EventKind::Timer { key, .. } if !dead.contains(key)));
                        pending.retain(|k| !dead.contains(k));
                        dead.clear();
                    }
                }
                prop_assert_eq!(heap.len(), ladder.len());
                prop_assert_eq!(heap.live_len(), ladder.live_len());
                prop_assert_eq!(heap.peek_time(), ladder.peek_time());
            }
            while !heap.is_empty() || !ladder.is_empty() {
                pop_both(&mut heap, &mut ladder, &mut pending, &mut dead);
            }
            prop_assert!(heap.pop().is_none() && ladder.pop().is_none());
        }
    }
}
