//! Simulated time and durations.
//!
//! Both types wrap a finite, non-negative `f64` number of seconds. The
//! wrappers exist to (a) make simulated time impossible to confuse with
//! other floating point quantities (bytes, rates, instruction counts) and
//! (b) provide a total order so times can live in ordered collections.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulated clock, in seconds since the start
/// of the simulation.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Time(f64);

/// A span of simulated time, in seconds. Always finite and non-negative.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Duration(f64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0.0);

    /// A time later than every completion the kernel can schedule; used as
    /// a sentinel for "never".
    pub const NEVER: Time = Time(f64::MAX);

    /// Builds a time from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN, or infinite.
    #[inline]
    pub fn from_secs(secs: f64) -> Time {
        assert!(secs.is_finite() && secs >= 0.0, "invalid Time: {secs}");
        Time(secs)
    }

    /// The number of seconds since the simulation epoch.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `true` when this is the [`Time::NEVER`] sentinel.
    #[inline]
    pub fn is_never(self) -> bool {
        self.0 == f64::MAX
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `earlier` is later than `self`; a
    /// non-negative duration is returned in release builds by clamping, as
    /// tiny negative residues can appear after long floating-point event
    /// chains.
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(
            self.0 >= earlier.0 - 1e-9 * earlier.0.abs().max(1.0),
            "time went backwards: {} -> {}",
            earlier.0,
            self.0
        );
        Duration((self.0 - earlier.0).max(0.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Builds a duration from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN, or infinite.
    #[inline]
    pub fn from_secs(secs: f64) -> Duration {
        assert!(secs.is_finite() && secs >= 0.0, "invalid Duration: {secs}");
        Duration(secs)
    }

    /// The number of seconds in this duration.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Amount of `work` units processed over this duration at `rate`
    /// units per second.
    #[inline]
    pub fn work_at(self, rate: f64) -> f64 {
        self.0 * rate
    }

    /// Duration needed to process `work` units at `rate` units/second.
    /// Returns `None` when the rate is zero or non-positive (the work will
    /// never finish at that rate).
    #[inline]
    pub fn for_work(work: f64, rate: f64) -> Option<Duration> {
        if rate > 0.0 {
            Some(Duration((work / rate).max(0.0)))
        } else {
            None
        }
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: construction guarantees the payload is never NaN.
        self.0.partial_cmp(&other.0).expect("Time is never NaN")
    }
}

impl Eq for Duration {}

impl PartialOrd for Duration {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Duration {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("Duration is never NaN")
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        if self.is_never() {
            Time::NEVER
        } else {
            Time(self.0 + rhs.0)
        }
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: f64) -> Duration {
        Duration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: f64) -> Duration {
        Duration::from_secs(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_never() {
            write!(f, "Time(NEVER)")
        } else {
            write!(f, "Time({:.9}s)", self.0)
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Duration({:.9}s)", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Time::from_secs(1.5);
        assert_eq!(t.as_secs(), 1.5);
        let d = Duration::from_secs(0.25);
        assert_eq!(d.as_secs(), 0.25);
        assert_eq!(Time::ZERO.as_secs(), 0.0);
        assert!(Time::NEVER.is_never());
        assert!(!t.is_never());
    }

    #[test]
    #[should_panic(expected = "invalid Time")]
    fn negative_time_rejected() {
        let _ = Time::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid Time")]
    fn nan_time_rejected() {
        let _ = Time::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid Duration")]
    fn infinite_duration_rejected() {
        let _ = Duration::from_secs(f64::INFINITY);
    }

    #[test]
    fn ordering_is_total() {
        let a = Time::from_secs(1.0);
        let b = Time::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(Time::NEVER > b);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(1.0) + Duration::from_secs(0.5);
        assert_eq!(t.as_secs(), 1.5);
        let d = t - Time::from_secs(1.0);
        assert!((d.as_secs() - 0.5).abs() < 1e-12);
        assert_eq!((Duration::from_secs(2.0) * 3.0).as_secs(), 6.0);
        assert_eq!((Duration::from_secs(6.0) / 3.0).as_secs(), 2.0);
        // Saturating subtraction of durations.
        assert_eq!(
            (Duration::from_secs(1.0) - Duration::from_secs(2.0)).as_secs(),
            0.0
        );
    }

    #[test]
    fn never_is_absorbing_under_addition() {
        assert!((Time::NEVER + Duration::from_secs(1.0)).is_never());
    }

    #[test]
    fn work_rate_roundtrip() {
        let d = Duration::for_work(100.0, 25.0).unwrap();
        assert_eq!(d.as_secs(), 4.0);
        assert_eq!(d.work_at(25.0), 100.0);
        assert!(Duration::for_work(1.0, 0.0).is_none());
        assert!(Duration::for_work(1.0, -5.0).is_none());
    }

    #[test]
    fn since_clamps_tiny_negative_residue() {
        let a = Time::from_secs(1.0);
        let b = Time::from_secs(1.0 - 1e-13);
        assert_eq!(b.since(a).as_secs(), 0.0);
    }
}
