//! Deterministic pseudo-random number generation for simulation jitter.
//!
//! The kernel itself never uses randomness; this generator exists for the
//! layers that model measurement noise (hardware counter jitter, per-rank
//! variability). It is a small, self-contained xoshiro256**-style generator
//! seeded through SplitMix64, so results are bit-reproducible across
//! platforms and independent of any external crate's version.

/// Deterministic RNG (xoshiro256**).
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> DetRng {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent stream for a sub-component (e.g. one rank).
    /// Streams derived with different `stream` values are statistically
    /// independent of each other and of the parent.
    pub fn derive(&self, stream: u64) -> DetRng {
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA24BAED4963EE407);
        DetRng::new(splitmix64(&mut sm))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // n values used in simulation (≪ 2^32).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard normal draw (Box–Muller; one value per call, the pair's
    /// second value is discarded to keep the call sequence simple and
    /// deterministic).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.uniform();
            if u1 > 1e-300 {
                let u2 = self.uniform();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// A multiplicative jitter factor `exp(sigma * N(0,1))`, clamped to
    /// `[1/(1+5σ), 1+5σ]` so pathological tails cannot destabilise
    /// calibration-sensitive models.
    pub fn lognormal_jitter(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 1.0;
        }
        let f = (sigma * self.normal()).exp();
        let hi = 1.0 + 5.0 * sigma;
        f.clamp(1.0 / hi, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        let root = DetRng::new(7);
        let mut s1 = root.derive(0);
        let mut s1b = root.derive(0);
        let mut s2 = root.derive(1);
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = DetRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn below_is_in_range() {
        let mut r = DetRng::new(5);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = DetRng::new(9);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn lognormal_jitter_is_clamped_and_centered() {
        let mut r = DetRng::new(13);
        let sigma = 0.02;
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let f = r.lognormal_jitter(sigma);
            assert!(f >= 1.0 / (1.0 + 5.0 * sigma) && f <= 1.0 + 5.0 * sigma);
            sum += f;
        }
        let mean: f64 = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.005, "mean = {mean}");
        assert_eq!(r.lognormal_jitter(0.0), 1.0);
    }
}
