//! Cross-engine observability: simulated-time span recording, a unified
//! metrics snapshot, trace exporters, and critical-path analysis.
//!
//! The paper validates its replay fixes by *looking at* executions —
//! Gantt charts, per-process distributions — not just end-to-end times.
//! This module gives every back-end the same vocabulary for doing so:
//!
//! * a [`Recorder`] trait the runtimes call at state transitions
//!   (zero-cost when no recorder is installed: worlds hold an
//!   `Option<Box<dyn Recorder>>` and skip the call when `None`);
//! * [`SpanLog`], the concrete recorder, storing per-rank simulated-time
//!   [`Span`]s and per-flow network activity;
//! * exporters: [`chrome_trace`] (Chrome/Perfetto JSON) and
//!   [`state_csv`] (flat state timeline);
//! * [`critical_path`], a backward walk over the recorded spans that
//!   reports the chain of actions determining the makespan plus a
//!   per-rank compute/communication breakdown;
//! * [`Metrics`], the unified counter snapshot (kernel, FEL profile,
//!   protocol, network sharing) every runner can fill;
//! * [`Manifest`], the per-run provenance record.
//!
//! Everything here is dependency-free: JSON is emitted by hand through
//! `f64`'s `Display` (shortest round-trip representation), so exports are
//! byte-deterministic whenever the underlying simulation is.

use crate::kernel::Kernel;
use crate::queue::FelProfile;

// ---------------------------------------------------------------------
// Spans and the recorder trait
// ---------------------------------------------------------------------

/// What a rank was doing during a recorded interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Executing a compute block.
    Compute,
    /// Blocked in a send (rendezvous wait for the matching receive).
    Send,
    /// Blocked in a receive, waiting for data.
    Recv,
    /// Blocked in `wait`/`waitall` on outstanding requests.
    Wait,
    /// Blocked inside a collective (sub-program or monolithic sync).
    Collective,
    /// Fixed delays: MPI software overhead, probes, eager copies.
    Overhead,
}

/// Number of [`SpanKind`] variants (array-indexing helper).
pub const SPAN_KINDS: usize = 6;

impl SpanKind {
    /// Stable machine-readable label (used by every exporter).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Send => "send",
            SpanKind::Recv => "recv",
            SpanKind::Wait => "wait",
            SpanKind::Collective => "collective",
            SpanKind::Overhead => "overhead",
        }
    }

    /// Dense index (inverse of the variant order).
    pub fn index(self) -> usize {
        match self {
            SpanKind::Compute => 0,
            SpanKind::Send => 1,
            SpanKind::Recv => 2,
            SpanKind::Wait => 3,
            SpanKind::Collective => 4,
            SpanKind::Overhead => 5,
        }
    }
}

/// One recorded per-rank interval of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Start instant, seconds.
    pub start: f64,
    /// End instant, seconds.
    pub end: f64,
    /// Activity classification.
    pub kind: SpanKind,
    /// The remote rank that resolved this blocking condition, when the
    /// runtime knows it (send/recv partner). Drives the critical-path
    /// walk's rank-to-rank jumps.
    pub peer: Option<u32>,
}

/// One network flow's lifetime (open to close, simulated seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpan {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Payload bytes.
    pub bytes: u64,
    /// Flow-open instant, seconds.
    pub start: f64,
    /// Flow-close instant, seconds (equals `start` until closed).
    pub end: f64,
}

/// Event counters a recorder accumulates alongside spans. These cover
/// signals that are otherwise invisible without recompiling (the
/// `profile` feature tracks only high-water marks of the match queues).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// smpi: messages queued as unexpected (send before recv).
    UnexpectedEnqueued,
    /// smpi: receives queued as posted (recv before send).
    PostedEnqueued,
    /// msgsim: tasks deposited into a mailbox before any receive.
    MailboxEnqueued,
    /// msgsim: receives pending before any matching deposit.
    PendingEnqueued,
    /// Intra-host transfers served by the loopback path (no flow).
    LoopbackTransfers,
}

/// Number of [`Counter`] variants.
pub const COUNTERS: usize = 5;

impl Counter {
    /// Dense index.
    pub fn index(self) -> usize {
        match self {
            Counter::UnexpectedEnqueued => 0,
            Counter::PostedEnqueued => 1,
            Counter::MailboxEnqueued => 2,
            Counter::PendingEnqueued => 3,
            Counter::LoopbackTransfers => 4,
        }
    }

    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Counter::UnexpectedEnqueued => "unexpected_enqueued",
            Counter::PostedEnqueued => "posted_enqueued",
            Counter::MailboxEnqueued => "mailbox_enqueued",
            Counter::PendingEnqueued => "pending_enqueued",
            Counter::LoopbackTransfers => "loopback_transfers",
        }
    }
}

/// All counter variants in index order (for iteration in exporters).
pub const COUNTER_LIST: [Counter; COUNTERS] = [
    Counter::UnexpectedEnqueued,
    Counter::PostedEnqueued,
    Counter::MailboxEnqueued,
    Counter::PendingEnqueued,
    Counter::LoopbackTransfers,
];

/// Sink for simulated-time observations. Runtimes call these methods at
/// state transitions; installing no recorder costs nothing (the call
/// sites check an `Option`).
pub trait Recorder {
    /// Records a closed per-rank interval. Zero-length intervals may be
    /// dropped by implementations.
    fn span(&mut self, rank: u32, start: f64, end: f64, kind: SpanKind, peer: Option<u32>);
    /// A network flow opened. `key` must be unique among open flows and
    /// match the later [`Recorder::flow_close`].
    fn flow_open(&mut self, key: u64, src: u32, dst: u32, bytes: u64, at: f64);
    /// The flow opened under `key` drained.
    fn flow_close(&mut self, key: u64, at: f64);
    /// Bumps an event counter.
    fn count(&mut self, counter: Counter, delta: u64);
    /// Consumes the recorder, yielding its span log if it kept one.
    fn finish(self: Box<Self>) -> Option<SpanLog>;
}

/// The standard recorder: per-rank span vectors plus flow lifetimes.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    per_rank: Vec<Vec<Span>>,
    flows: Vec<FlowSpan>,
    /// Open flows, `(key, index into flows)`. Small (bounded by in-flight
    /// transfers), so linear scans beat hashing and stay deterministic.
    open: Vec<(u64, u32)>,
    counts: [u64; COUNTERS],
}

impl SpanLog {
    /// Empty log for `ranks` processes.
    pub fn new(ranks: u32) -> SpanLog {
        SpanLog {
            per_rank: (0..ranks).map(|_| Vec::new()).collect(),
            flows: Vec::new(),
            open: Vec::new(),
            counts: [0; COUNTERS],
        }
    }

    /// Number of ranks.
    pub fn rank_count(&self) -> u32 {
        self.per_rank.len() as u32
    }

    /// The spans of one rank, in recording order (non-decreasing ends).
    pub fn rank(&self, rank: u32) -> &[Span] {
        &self.per_rank[rank as usize]
    }

    /// All flow lifetimes, in open order.
    pub fn flows(&self) -> &[FlowSpan] {
        &self.flows
    }

    /// Flows opened but never closed (must be 0 after a clean run).
    pub fn open_flows(&self) -> usize {
        self.open.len()
    }

    /// Total spans across all ranks.
    pub fn total_spans(&self) -> usize {
        self.per_rank.iter().map(Vec::len).sum()
    }

    /// Total seconds `rank` spent in `kind`.
    pub fn total(&self, rank: u32, kind: SpanKind) -> f64 {
        self.per_rank[rank as usize]
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Value of one event counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counts[c.index()]
    }

    /// All event counters, indexed by [`Counter::index`].
    pub fn counts(&self) -> [u64; COUNTERS] {
        self.counts
    }
}

/// What an observed run yields besides its engine result: the unified
/// metrics snapshot and, when span recording was requested, the span
/// log itself.
#[derive(Debug, Clone, Default)]
pub struct RunObservation {
    /// Unified counter snapshot.
    pub metrics: Metrics,
    /// Recorded spans (present iff a [`SpanLog`] recorder was installed).
    pub spans: Option<SpanLog>,
}

/// A [`Recorder`] adapter for partitioned replay: the wrapped engine
/// records with partition-local rank ids while the inner [`SpanLog`] is
/// sized for the global rank count; `map[local]` gives the global rank.
/// Flow keys pass through unchanged (each partition closes only flows it
/// opened, and the inner log is per-partition, so keys never collide).
#[derive(Debug)]
pub struct RankMappedRecorder {
    inner: SpanLog,
    map: Vec<u32>,
}

impl RankMappedRecorder {
    /// A recorder over `global_ranks` lanes; local rank `i` of the
    /// wrapped engine records into global lane `map[i]`.
    pub fn new(global_ranks: u32, map: Vec<u32>) -> RankMappedRecorder {
        RankMappedRecorder {
            inner: SpanLog::new(global_ranks),
            map,
        }
    }
}

impl Recorder for RankMappedRecorder {
    fn span(&mut self, rank: u32, start: f64, end: f64, kind: SpanKind, peer: Option<u32>) {
        let peer = peer.map(|p| self.map[p as usize]);
        Recorder::span(
            &mut self.inner,
            self.map[rank as usize],
            start,
            end,
            kind,
            peer,
        );
    }

    fn flow_open(&mut self, key: u64, src: u32, dst: u32, bytes: u64, at: f64) {
        self.inner.flow_open(
            key,
            self.map[src as usize],
            self.map[dst as usize],
            bytes,
            at,
        );
    }

    fn flow_close(&mut self, key: u64, at: f64) {
        self.inner.flow_close(key, at);
    }

    fn count(&mut self, counter: Counter, delta: u64) {
        self.inner.count(counter, delta);
    }

    fn finish(self: Box<Self>) -> Option<SpanLog> {
        Some(self.inner)
    }
}

/// Merges the per-partition span logs of a partitioned replay into one
/// global log. All parts must be sized for the global rank count (see
/// [`RankMappedRecorder`]) and each rank's lane must be populated by at
/// most one part (its owning partition). Flows are concatenated in part
/// order; the exporters order flow records canonically, so the merged
/// log exports byte-identically to a sequential run's log. Counters sum.
pub fn merge_span_logs(parts: Vec<SpanLog>) -> SpanLog {
    let mut parts = parts.into_iter();
    let mut merged = parts.next().expect("merge_span_logs needs >= 1 part");
    for mut part in parts {
        assert_eq!(
            merged.per_rank.len(),
            part.per_rank.len(),
            "span logs sized for different rank counts"
        );
        for (lane, other) in merged.per_rank.iter_mut().zip(part.per_rank.iter_mut()) {
            if !other.is_empty() {
                assert!(lane.is_empty(), "rank recorded by more than one partition");
                std::mem::swap(lane, other);
            }
        }
        merged.flows.append(&mut part.flows);
        merged.open.append(&mut part.open);
        for (c, d) in merged.counts.iter_mut().zip(part.counts.iter()) {
            *c += d;
        }
    }
    merged
}

impl Recorder for SpanLog {
    fn span(&mut self, rank: u32, start: f64, end: f64, kind: SpanKind, peer: Option<u32>) {
        if end > start {
            self.per_rank[rank as usize].push(Span {
                start,
                end,
                kind,
                peer,
            });
        }
    }

    fn flow_open(&mut self, key: u64, src: u32, dst: u32, bytes: u64, at: f64) {
        let index = self.flows.len() as u32;
        self.flows.push(FlowSpan {
            src,
            dst,
            bytes,
            start: at,
            end: at,
        });
        self.open.push((key, index));
    }

    fn flow_close(&mut self, key: u64, at: f64) {
        if let Some(pos) = self.open.iter().position(|(k, _)| *k == key) {
            let (_, index) = self.open.swap_remove(pos);
            self.flows[index as usize].end = at;
        }
    }

    fn count(&mut self, counter: Counter, delta: u64) {
        self.counts[counter.index()] += delta;
    }

    fn finish(self: Box<Self>) -> Option<SpanLog> {
        Some(*self)
    }
}

// ---------------------------------------------------------------------
// Unified metrics snapshot
// ---------------------------------------------------------------------

/// One run's counters, unified across engines: kernel event-core
/// figures, the (feature-gated) FEL profile, protocol counters, and
/// network-sharing work. Produced by the `*_observed` runners; exported
/// with [`Metrics::to_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Back-end name (`"smpi"` or `"msg"`).
    pub engine: String,
    /// Number of ranks simulated.
    pub ranks: u32,
    /// Application makespan, seconds.
    pub simulated_time_s: f64,
    /// Kernel events processed.
    pub events_processed: u64,
    /// FEL compactions triggered by lazy-cancellation pressure.
    pub queue_compactions: u64,
    /// Whether the `profile` cargo feature compiled the FEL counters in.
    /// When `false`, [`Metrics::fel`] holds zeros that mean "not
    /// measured", and the JSON says so explicitly.
    pub fel_profile_enabled: bool,
    /// FEL hot-path counters (all zero when compiled out).
    pub fel: FelProfile,
    /// Point-to-point messages created.
    pub messages: u64,
    /// Messages using the eager/asynchronous protocol.
    pub eager_messages: u64,
    /// Messages using the rendezvous/blocking protocol.
    pub rendezvous_messages: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Collective operations (smpi: participations; msg: occurrences).
    pub collectives: u64,
    /// Network flows opened.
    pub flows_created: u64,
    /// Network flows closed.
    pub flows_resolved: u64,
    /// Bandwidth-sharing re-solves performed by the network model.
    pub sharing_resolves: u64,
    /// Flow-rate changes pushed to the kernel by the sharing solver.
    pub sharing_rate_updates: u64,
    /// Deferred-batch flushes performed by the network model (0 when
    /// collective aggregation is off).
    pub sharing_flushes: u64,
    /// High-water mark of concurrently live flows.
    pub live_flow_hwm: u64,
    /// High-water mark of live *entities* — flows, minus the surplus
    /// members folded into aggregates. Equals `live_flow_hwm` when
    /// aggregation is off; the aggregation win is the gap between them.
    pub live_entity_hwm: u64,
    /// Aggregate entities formed from uniform deferred batches.
    pub agg_formed: u64,
    /// Total member flows folded into aggregates.
    pub agg_members: u64,
    /// Aggregates dissolved early by outside traffic touching a member.
    pub agg_splits: u64,
    /// Whether match-queue depths were tracked (the `profile` feature).
    pub match_depth_tracked: bool,
    /// High-water unexpected-queue depth (0 when untracked).
    pub max_unexpected_depth: u64,
    /// High-water posted-queue depth (0 when untracked).
    pub max_posted_depth: u64,
    /// Recorder event counters, present when a span recorder ran.
    pub recorder_counts: Option<[u64; COUNTERS]>,
}

impl Metrics {
    /// Empty snapshot for `engine`/`ranks`.
    pub fn new(engine: &str, ranks: u32) -> Metrics {
        Metrics {
            engine: engine.to_string(),
            ranks,
            ..Metrics::default()
        }
    }

    /// Folds the kernel's own counters in (events, compactions, FEL
    /// profile and whether it was compiled in). See [`Kernel::observe`].
    pub fn fold_kernel(&mut self, kernel: &Kernel) {
        kernel.observe(self);
    }

    /// Serialises the snapshot as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"engine\": {},\n", json_string(&self.engine)));
        out.push_str(&format!("  \"ranks\": {},\n", self.ranks));
        out.push_str(&format!(
            "  \"simulated_time_s\": {},\n",
            json_f64(self.simulated_time_s)
        ));
        out.push_str(&format!(
            "  \"kernel\": {{\"events_processed\": {}, \"queue_compactions\": {}}},\n",
            self.events_processed, self.queue_compactions
        ));
        if self.fel_profile_enabled {
            out.push_str(&format!(
                "  \"fel_profile\": {{\"enabled\": true, \"scheduled\": {}, \"superseded\": {}, \
                 \"popped\": {}, \"stale_popped\": {}, \"fired\": {}, \"spills\": {}, \
                 \"bucket_sorts\": {}, \"reseeds\": {}, \"compactions\": {}}},\n",
                self.fel.scheduled,
                self.fel.superseded,
                self.fel.popped,
                self.fel.stale_popped,
                self.fel.fired(),
                self.fel.spills,
                self.fel.bucket_sorts,
                self.fel.reseeds,
                self.fel.compactions
            ));
        } else {
            out.push_str(
                "  \"fel_profile\": {\"enabled\": false, \
                 \"note\": \"compiled out; rebuild with --features profile\"},\n",
            );
        }
        out.push_str(&format!(
            "  \"replay\": {{\"messages\": {}, \"eager_messages\": {}, \
             \"rendezvous_messages\": {}, \"bytes\": {}, \"collectives\": {}}},\n",
            self.messages,
            self.eager_messages,
            self.rendezvous_messages,
            self.bytes,
            self.collectives
        ));
        out.push_str(&format!(
            "  \"network\": {{\"flows_created\": {}, \"flows_resolved\": {}, \
             \"sharing_resolves\": {}, \"sharing_rate_updates\": {}}},\n",
            self.flows_created,
            self.flows_resolved,
            self.sharing_resolves,
            self.sharing_rate_updates
        ));
        out.push_str(&format!(
            "  \"aggregation\": {{\"sharing_flushes\": {}, \"live_flow_hwm\": {}, \
             \"live_entity_hwm\": {}, \"agg_formed\": {}, \"agg_members\": {}, \
             \"agg_splits\": {}}},\n",
            self.sharing_flushes,
            self.live_flow_hwm,
            self.live_entity_hwm,
            self.agg_formed,
            self.agg_members,
            self.agg_splits
        ));
        if self.match_depth_tracked {
            out.push_str(&format!(
                "  \"match_queues\": {{\"tracked\": true, \"max_unexpected_depth\": {}, \
                 \"max_posted_depth\": {}}},\n",
                self.max_unexpected_depth, self.max_posted_depth
            ));
        } else {
            out.push_str(
                "  \"match_queues\": {\"tracked\": false, \
                 \"note\": \"compiled out; rebuild with --features profile\"},\n",
            );
        }
        match &self.recorder_counts {
            Some(counts) => {
                out.push_str("  \"recorder\": {");
                for (i, c) in COUNTER_LIST.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {}", c.label(), counts[c.index()]));
                }
                out.push_str("}\n");
            }
            None => out.push_str("  \"recorder\": null\n"),
        }
        out.push('}');
        out
    }
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

/// Flow records in canonical export order: by start instant, then
/// source, destination, end, and size. A sequential replay logs flows in
/// global open order while a partitioned replay logs them grouped by
/// partition; both hold the same multiset, so exporting in canonical
/// order makes the artifacts byte-identical regardless of how the replay
/// was executed.
fn canonical_flows(log: &SpanLog) -> Vec<FlowSpan> {
    let mut flows = log.flows().to_vec();
    flows.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then_with(|| a.src.cmp(&b.src))
            .then_with(|| a.dst.cmp(&b.dst))
            .then_with(|| a.end.total_cmp(&b.end))
            .then_with(|| a.bytes.cmp(&b.bytes))
    });
    flows
}

/// Exports a span log as Chrome-trace JSON (loadable in Perfetto or
/// `chrome://tracing`). Rank spans become complete (`"X"`) events under
/// process 0 (one thread per rank); flow lifetimes live under process 1,
/// one lane per sending rank, in canonical `(start, src, dst)` order.
/// Timestamps are microseconds of simulated time. The output is
/// byte-deterministic for identical logs.
pub fn chrome_trace(log: &SpanLog) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"ranks\"}}",
    );
    out.push_str(
        ",\n{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"network\"}}",
    );
    for rank in 0..log.rank_count() {
        for s in log.rank(rank) {
            out.push_str(&format!(
                ",\n{{\"name\":\"{}\",\"cat\":\"rank\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
                 \"ts\":{},\"dur\":{}",
                s.kind.label(),
                rank,
                json_f64(s.start * 1e6),
                json_f64((s.end - s.start) * 1e6)
            ));
            if let Some(p) = s.peer {
                out.push_str(&format!(",\"args\":{{\"peer\":{p}}}"));
            }
            out.push('}');
        }
    }
    for f in canonical_flows(log) {
        out.push_str(&format!(
            ",\n{{\"name\":\"flow {}->{}\",\"cat\":\"flow\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"src\":{},\"dst\":{},\"bytes\":{}}}}}",
            f.src,
            f.dst,
            f.src,
            json_f64(f.start * 1e6),
            json_f64((f.end - f.start) * 1e6),
            f.src,
            f.dst,
            f.bytes
        ));
    }
    out.push_str("\n]}");
    out
}

/// Exports a span log as a flat CSV state timeline:
/// `rank,start_s,end_s,state,peer,bytes`. Rank spans come first (empty
/// `bytes`), then flow rows (`state` = `flow`, `rank` = source, `peer` =
/// destination) in canonical `(start, src, dst)` order.
pub fn state_csv(log: &SpanLog) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("rank,start_s,end_s,state,peer,bytes\n");
    for rank in 0..log.rank_count() {
        for s in log.rank(rank) {
            let peer = s.peer.map(|p| p.to_string()).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},\n",
                rank,
                json_f64(s.start),
                json_f64(s.end),
                s.kind.label(),
                peer
            ));
        }
    }
    for f in canonical_flows(log) {
        out.push_str(&format!(
            "{},{},{},flow,{},{}\n",
            f.src,
            json_f64(f.start),
            json_f64(f.end),
            f.dst,
            f.bytes
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------

/// One link of the critical chain. Steps tile `[0, end_s]` in time order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    /// Rank the step is attributed to (for `comm` steps: the sender).
    pub rank: u32,
    /// Start instant, seconds.
    pub start_s: f64,
    /// End instant, seconds.
    pub end_s: f64,
    /// Step label: a [`SpanKind::label`], `"comm"` (in-flight transfer
    /// gating the receiver), or `"idle"` (untracked gap).
    pub kind: &'static str,
}

/// Per-rank decomposition of where simulated time went.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankBreakdown {
    /// Rank.
    pub rank: u32,
    /// Seconds per [`SpanKind`], indexed by [`SpanKind::index`].
    pub by_kind: [f64; SPAN_KINDS],
    /// Finish time minus tracked time (idle / untracked overhead).
    pub idle_s: f64,
    /// The rank's finish time, seconds.
    pub finish_s: f64,
}

/// Output of [`critical_path`].
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The makespan the chain explains; bit-equal to
    /// `max(rank_times)` and therefore to the run's reported simulated
    /// time.
    pub end_s: f64,
    /// The makespan-determining chain, earliest step first.
    pub steps: Vec<PathStep>,
    /// Per-rank time decomposition.
    pub breakdown: Vec<RankBreakdown>,
}

impl CriticalPath {
    /// Serialises path and breakdown as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"end_s\": {},\n", json_f64(self.end_s)));
        out.push_str("  \"steps\": [\n");
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rank\": {}, \"start_s\": {}, \"end_s\": {}, \"kind\": \"{}\"}}{}\n",
                s.rank,
                json_f64(s.start_s),
                json_f64(s.end_s),
                s.kind,
                if i + 1 < self.steps.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"breakdown\": [\n");
        for (i, b) in self.breakdown.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rank\": {}, \"compute_s\": {}, \"send_s\": {}, \"recv_s\": {}, \
                 \"wait_s\": {}, \"collective_s\": {}, \"overhead_s\": {}, \"idle_s\": {}, \
                 \"finish_s\": {}}}{}\n",
                b.rank,
                json_f64(b.by_kind[0]),
                json_f64(b.by_kind[1]),
                json_f64(b.by_kind[2]),
                json_f64(b.by_kind[3]),
                json_f64(b.by_kind[4]),
                json_f64(b.by_kind[5]),
                json_f64(b.idle_s),
                json_f64(b.finish_s),
                if i + 1 < self.breakdown.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Walks the recorded spans backwards from the last rank to finish,
/// reporting the chain of actions that determines the makespan.
///
/// The walk sits at `(rank, t)` and asks what ended at `t`:
///
/// * a span of `rank` ending exactly at `t` whose blocking condition was
///   resolved by a known peer (a send/recv/collective partner) jumps the
///   walk to that peer at the same instant — the peer's history explains
///   the release;
/// * otherwise the covering span itself is the step and the walk moves to
///   its start;
/// * a gap before `t` right after a jump is attributed to the in-flight
///   transfer (`"comm"`); a gap with no preceding jump is `"idle"`.
///
/// At most one jump is taken per instant, so the walk always progresses
/// backwards and terminates. Steps tile `[0, end_s]`; `end_s` is computed
/// exactly as the runners compute the makespan, so it bit-matches the
/// reported simulated time.
pub fn critical_path(log: &SpanLog, rank_times: &[f64]) -> CriticalPath {
    assert_eq!(
        rank_times.len(),
        log.rank_count() as usize,
        "one finish time per recorded rank"
    );
    let end_s = rank_times.iter().copied().fold(0.0, f64::max);
    let breakdown = (0..log.rank_count())
        .map(|r| {
            let mut by_kind = [0.0; SPAN_KINDS];
            for s in log.rank(r) {
                by_kind[s.kind.index()] += s.end - s.start;
            }
            let tracked: f64 = by_kind.iter().sum();
            RankBreakdown {
                rank: r,
                by_kind,
                idle_s: (rank_times[r as usize] - tracked).max(0.0),
                finish_s: rank_times[r as usize],
            }
        })
        .collect();

    let mut steps: Vec<PathStep> = Vec::new();
    let mut rank = rank_times
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite finish times"))
        .map_or(0, |(i, _)| i);
    let mut t = end_s;
    let mut jumped = false;
    // Backstop: each iteration either consumes a span, closes a gap, or
    // takes the (single-per-instant) jump — bounded well below this.
    let guard = 2 * log.total_spans() + 2 * rank_times.len() + 16;
    while t > 0.0 && steps.len() < guard {
        let spans = log.rank(rank as u32);
        let i = spans.partition_point(|s| s.end <= t);
        if i == 0 {
            // No tracked activity before t on this rank.
            steps.push(PathStep {
                rank: rank as u32,
                start_s: 0.0,
                end_s: t,
                kind: if jumped { "comm" } else { "idle" },
            });
            break;
        }
        let s = spans[i - 1];
        if s.end < t {
            steps.push(PathStep {
                rank: rank as u32,
                start_s: s.end,
                end_s: t,
                kind: if jumped { "comm" } else { "idle" },
            });
            t = s.end;
            jumped = false;
            continue;
        }
        // A span ends exactly at t.
        if !jumped {
            if let Some(p) = s.peer {
                if p as usize != rank && (p as usize) < rank_times.len() {
                    rank = p as usize;
                    jumped = true;
                    continue;
                }
            }
        }
        steps.push(PathStep {
            rank: rank as u32,
            start_s: s.start,
            end_s: t,
            kind: s.kind.label(),
        });
        t = s.start;
        jumped = false;
    }
    steps.reverse();
    CriticalPath {
        end_s,
        steps,
        breakdown,
    }
}

// ---------------------------------------------------------------------
// Run manifest
// ---------------------------------------------------------------------

/// Per-run provenance record: what was replayed, how, and what came out.
/// The only place wall-clock time appears — trace and metrics exports
/// stay bit-deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Producing tool (name/version).
    pub tool: String,
    /// Platform description name.
    pub platform: String,
    /// Number of ranks replayed.
    pub ranks: u32,
    /// Input trace identity (path/size or shape).
    pub trace_signature: String,
    /// Flat key/value rendering of the replay configuration.
    pub config: Vec<(String, String)>,
    /// Reported simulated time, seconds.
    pub simulated_time_s: f64,
    /// Wall-clock seconds the replay took.
    pub wall_time_s: f64,
    /// Full counter snapshot.
    pub metrics: Metrics,
}

impl Manifest {
    /// Serialises the manifest as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"tool\": {},\n", json_string(&self.tool)));
        out.push_str(&format!(
            "  \"platform\": {},\n",
            json_string(&self.platform)
        ));
        out.push_str(&format!("  \"ranks\": {},\n", self.ranks));
        out.push_str(&format!(
            "  \"trace_signature\": {},\n",
            json_string(&self.trace_signature)
        ));
        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(k), json_string(v)));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"simulated_time_s\": {},\n",
            json_f64(self.simulated_time_s)
        ));
        out.push_str(&format!(
            "  \"wall_time_s\": {},\n",
            json_f64(self.wall_time_s)
        ));
        let metrics = self.metrics.to_json();
        out.push_str("  \"metrics\": ");
        for (i, line) in metrics.lines().enumerate() {
            if i > 0 {
                out.push_str("\n  ");
            }
            out.push_str(line);
        }
        out.push_str("\n}");
        out
    }
}

// ---------------------------------------------------------------------
// JSON primitives
// ---------------------------------------------------------------------

/// Renders an `f64` as a JSON number. Rust's `Display` for floats is the
/// shortest decimal that round-trips (and never scientific notation), so
/// the output is both valid JSON and deterministic. Non-finite values
/// (which indicate a bug upstream) render as `null` to keep documents
/// parseable.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders a JSON string literal with minimal escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        log: &mut SpanLog,
        rank: u32,
        start: f64,
        end: f64,
        kind: SpanKind,
        peer: Option<u32>,
    ) {
        Recorder::span(log, rank, start, end, kind, peer);
    }

    /// Recording the same run whole vs split across two rank-mapped
    /// partition recorders merges and exports byte-identically, even
    /// though the partitions log their flows in a different global
    /// interleaving than the sequential recorder.
    #[test]
    fn partition_merge_exports_match_sequential() {
        let mut seq = SpanLog::new(4);
        // Global open order interleaves the two pairs: (0->1), (2->3),
        // then a second (0->1).
        seq.flow_open(7, 0, 1, 100, 0.0);
        seq.flow_open(9, 2, 3, 200, 0.5);
        seq.flow_open(8, 0, 1, 50, 1.0);
        seq.flow_close(7, 2.0);
        seq.flow_close(9, 2.5);
        seq.flow_close(8, 3.0);
        record(&mut seq, 1, 0.0, 2.0, SpanKind::Recv, Some(0));
        record(&mut seq, 3, 0.5, 2.5, SpanKind::Recv, Some(2));
        record(&mut seq, 0, 0.0, 1.0, SpanKind::Compute, None);
        seq.count(Counter::UnexpectedEnqueued, 2);

        // Partition A owns global ranks {0, 1}, partition B owns {2, 3};
        // each records with local ids and its own flow-key space.
        let mut a = Box::new(RankMappedRecorder::new(4, vec![0, 1]));
        a.flow_open(1, 0, 1, 100, 0.0);
        a.flow_open(2, 0, 1, 50, 1.0);
        a.flow_close(1, 2.0);
        a.flow_close(2, 3.0);
        a.span(1, 0.0, 2.0, SpanKind::Recv, Some(0));
        a.span(0, 0.0, 1.0, SpanKind::Compute, None);
        a.count(Counter::UnexpectedEnqueued, 2);
        let mut b = Box::new(RankMappedRecorder::new(4, vec![2, 3]));
        b.flow_open(1, 0, 1, 200, 0.5);
        b.flow_close(1, 2.5);
        b.span(1, 0.5, 2.5, SpanKind::Recv, Some(0));

        let merged = merge_span_logs(vec![a.finish().unwrap(), b.finish().unwrap()]);
        assert_eq!(merged.rank_count(), 4);
        assert_eq!(merged.open_flows(), 0);
        assert_eq!(merged.counter(Counter::UnexpectedEnqueued), 2);
        assert_eq!(chrome_trace(&merged), chrome_trace(&seq));
        assert_eq!(state_csv(&merged), state_csv(&seq));
    }

    #[test]
    #[should_panic(expected = "more than one partition")]
    fn merge_rejects_overlapping_rank_lanes() {
        let mut a = SpanLog::new(2);
        record(&mut a, 0, 0.0, 1.0, SpanKind::Compute, None);
        let mut b = SpanLog::new(2);
        record(&mut b, 0, 0.0, 1.0, SpanKind::Compute, None);
        merge_span_logs(vec![a, b]);
    }

    /// A hand-built 3-rank exchange:
    /// rank 0 computes [0,1] then eagerly sends to rank 1 (arrival 1.4);
    /// rank 1 waits for it [0,1.4], computes [1.4,2.4], sends to rank 2
    /// (arrival 2.9); rank 2 waits the whole run [0,2.9].
    fn three_rank_log() -> (SpanLog, Vec<f64>) {
        let mut log = SpanLog::new(3);
        record(&mut log, 0, 0.0, 1.0, SpanKind::Compute, None);
        record(&mut log, 1, 0.0, 1.4, SpanKind::Recv, Some(0));
        record(&mut log, 1, 1.4, 2.4, SpanKind::Compute, None);
        record(&mut log, 2, 0.0, 2.9, SpanKind::Recv, Some(1));
        (log, vec![1.0, 2.4, 2.9])
    }

    #[test]
    fn critical_path_follows_peer_jumps() {
        let (log, times) = three_rank_log();
        let cp = critical_path(&log, &times);
        assert_eq!(cp.end_s, 2.9);
        let shape: Vec<(u32, &str)> = cp.steps.iter().map(|s| (s.rank, s.kind)).collect();
        assert_eq!(
            shape,
            vec![(0, "compute"), (0, "comm"), (1, "compute"), (1, "comm")],
            "{:?}",
            cp.steps
        );
        // Steps tile [0, end_s].
        assert_eq!(cp.steps.first().unwrap().start_s, 0.0);
        assert_eq!(cp.steps.last().unwrap().end_s, cp.end_s);
        for w in cp.steps.windows(2) {
            assert_eq!(w[0].end_s, w[1].start_s);
        }
        let total: f64 = cp.steps.iter().map(|s| s.end_s - s.start_s).sum();
        assert!((total - cp.end_s).abs() < 1e-12);
    }

    #[test]
    fn critical_path_breakdown_accounts_all_time() {
        let (log, times) = three_rank_log();
        let cp = critical_path(&log, &times);
        assert_eq!(cp.breakdown.len(), 3);
        let b1 = &cp.breakdown[1];
        assert!((b1.by_kind[SpanKind::Recv.index()] - 1.4).abs() < 1e-12);
        assert!((b1.by_kind[SpanKind::Compute.index()] - 1.0).abs() < 1e-12);
        assert!(b1.idle_s.abs() < 1e-12);
        for b in &cp.breakdown {
            let tracked: f64 = b.by_kind.iter().sum();
            assert!(tracked + b.idle_s <= b.finish_s + 1e-12);
        }
    }

    #[test]
    fn critical_path_without_spans_is_idle() {
        let log = SpanLog::new(2);
        let cp = critical_path(&log, &[0.0, 3.0]);
        assert_eq!(cp.end_s, 3.0);
        assert_eq!(cp.steps.len(), 1);
        assert_eq!(cp.steps[0].kind, "idle");
        assert_eq!(cp.steps[0].end_s, 3.0);
    }

    #[test]
    fn critical_path_end_is_exact_max_of_rank_times() {
        // Same fold the runners use for the makespan: bit-equality, not
        // approximate equality.
        let (log, times) = three_rank_log();
        let cp = critical_path(&log, &times);
        let makespan = times.iter().copied().fold(0.0, f64::max);
        assert_eq!(cp.end_s.to_bits(), makespan.to_bits());
    }

    #[test]
    fn self_peer_does_not_loop() {
        let mut log = SpanLog::new(1);
        record(&mut log, 0, 0.0, 1.0, SpanKind::Recv, Some(0));
        let cp = critical_path(&log, &[1.0]);
        assert_eq!(cp.steps.len(), 1);
        assert_eq!(cp.steps[0].kind, "recv");
    }

    #[test]
    fn mutual_peer_waits_terminate() {
        // Two ranks whose final waits end at the same instant pointing at
        // each other: the one-jump-per-instant rule breaks the cycle.
        let mut log = SpanLog::new(2);
        record(&mut log, 0, 0.0, 1.0, SpanKind::Recv, Some(1));
        record(&mut log, 1, 0.0, 1.0, SpanKind::Recv, Some(0));
        let cp = critical_path(&log, &[1.0, 1.0]);
        assert!(!cp.steps.is_empty());
        let total: f64 = cp.steps.iter().map(|s| s.end_s - s.start_s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn span_log_drops_zero_length_and_tracks_flows() {
        let mut log = SpanLog::new(2);
        record(&mut log, 0, 0.5, 0.5, SpanKind::Wait, None);
        assert_eq!(log.total_spans(), 0);
        let boxed: &mut dyn Recorder = &mut log;
        boxed.flow_open(7, 0, 1, 4096, 0.25);
        assert_eq!(log.open_flows(), 1);
        let boxed: &mut dyn Recorder = &mut log;
        boxed.flow_close(7, 0.75);
        assert_eq!(log.open_flows(), 0);
        assert_eq!(log.flows().len(), 1);
        let f = log.flows()[0];
        assert_eq!((f.src, f.dst, f.bytes), (0, 1, 4096));
        assert!((f.end - f.start - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counters_accumulate() {
        let mut log = SpanLog::new(1);
        let r: &mut dyn Recorder = &mut log;
        r.count(Counter::UnexpectedEnqueued, 2);
        r.count(Counter::UnexpectedEnqueued, 1);
        r.count(Counter::LoopbackTransfers, 5);
        assert_eq!(log.counter(Counter::UnexpectedEnqueued), 3);
        assert_eq!(log.counter(Counter::LoopbackTransfers), 5);
        assert_eq!(log.counter(Counter::MailboxEnqueued), 0);
    }

    #[test]
    fn chrome_trace_shape() {
        let (log, _) = three_rank_log();
        let json = chrome_trace(&log);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"compute\""));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"args\":{\"peer\":0}"));
        // Balanced braces/brackets (cheap structural sanity; full JSON
        // validation happens in CI with a real parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        let (a, _) = three_rank_log();
        let (b, _) = three_rank_log();
        assert_eq!(chrome_trace(&a), chrome_trace(&b));
    }

    #[test]
    fn state_csv_shape() {
        let (mut log, _) = three_rank_log();
        {
            let r: &mut dyn Recorder = &mut log;
            r.flow_open(1, 0, 1, 1000, 1.0);
            r.flow_close(1, 1.4);
        }
        let csv = state_csv(&log);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("rank,start_s,end_s,state,peer,bytes"));
        assert_eq!(csv.lines().count(), 1 + log.total_spans() + 1);
        assert!(csv.contains("1,0,1.4,recv,0,"));
        assert!(csv.contains("0,1,1.4,flow,1,1000"));
    }

    #[test]
    fn metrics_json_marks_compiled_out_profile() {
        let mut m = Metrics::new("smpi", 4);
        m.fel_profile_enabled = crate::queue::profile_enabled();
        let json = m.to_json();
        if crate::queue::profile_enabled() {
            assert!(json.contains("\"enabled\": true"));
            assert!(json.contains("\"scheduled\""));
        } else {
            assert!(json.contains("\"enabled\": false"));
            assert!(json.contains("compiled out"));
        }
        assert!(json.contains("\"recorder\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn manifest_json_embeds_metrics() {
        let man = Manifest {
            tool: "titreplay".into(),
            platform: "griffon \"test\"".into(),
            ranks: 8,
            trace_signature: "ranks=8 actions=100".into(),
            config: vec![("engine".into(), "smpi".into())],
            simulated_time_s: 1.5,
            wall_time_s: 0.01,
            metrics: Metrics::new("smpi", 8),
        };
        let json = man.to_json();
        assert!(json.contains("\\\"test\\\""), "escaping: {json}");
        assert!(json.contains("\"engine\": \"smpi\""));
        assert!(json.contains("\"simulated_time_s\": 1.5"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_f64_is_plain_decimal() {
        assert_eq!(json_f64(0.0), "0");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(1e-7), "0.0000001");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn span_kind_labels_are_distinct() {
        let labels: Vec<&str> = [
            SpanKind::Compute,
            SpanKind::Send,
            SpanKind::Recv,
            SpanKind::Wait,
            SpanKind::Collective,
            SpanKind::Overhead,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
