//! Runtime (wall-clock) telemetry primitives: counters, gauges, and
//! fixed-bucket histograms behind an atomics-based registry.
//!
//! This module is the *runtime* counterpart of [`crate::obs`]: where `obs`
//! records what happened in **simulated** time (spans, protocol counters,
//! critical paths — all deterministic), `telemetry` records what the host
//! spends **wall-clock** time and resources on (request latencies, barrier
//! waits, queue depths). The two never mix: nothing in this module feeds
//! back into simulated times, metrics snapshots, manifests, or exports, so
//! every deterministic output stays byte-identical whether telemetry is
//! collected or not.
//!
//! Design discipline (mirrors `obs`):
//!
//! * **No dependencies** — plain `std::sync::atomic` plus hand-written
//!   Prometheus text rendering.
//! * **Zero cost when disabled** — instrumentation sites either hold an
//!   `Option` of a metric handle or consult a [`Stopwatch`] started with
//!   `enabled = false`, which never reads the host clock.
//! * **Lock-free hot path** — recording is a relaxed atomic add; only
//!   registration (done once at startup) allocates.
//!
//! Rendering follows the Prometheus text exposition format (version
//! 0.0.4): `# HELP` / `# TYPE` headers per family, cumulative `_bucket`
//! series with an `le` label, plus `_sum` and `_count` for histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous level that can move both ways (queue depth, in-flight
/// requests). Signed so that a racy `dec` observed before its matching
/// `inc` saturates at a small negative instead of wrapping to 2^64.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the level outright.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds in seconds: 500µs .. 10s, roughly
/// geometric, chosen so that both a memoized cache hit (~1ms) and a cold
/// replay of a large trace (seconds) land in the interior of the range.
pub const LATENCY_BUCKETS_S: [f64; 14] = [
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Fixed-bucket histogram of wall-clock durations (seconds).
///
/// Bucket bounds are fixed at construction; observation is one relaxed
/// atomic add per bucket touched plus count and sum. The sum is kept in
/// integer nanoseconds (there is no portable atomic f64 add) and converted
/// to seconds at render time.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus the implicit `+Inf` overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given upper bounds (must be finite,
    /// strictly increasing, non-empty).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation of `seconds` of wall time. Negative or
    /// non-finite values are clamped to zero.
    pub fn observe(&self, seconds: f64) {
        let s = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        let idx = self.bounds.partition_point(|b| *b < s);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add((s * 1e9) as u64, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in seconds.
    pub fn sum_s(&self) -> f64 {
        self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Cumulative bucket counts in bound order, ending with the `+Inf`
    /// bucket (== `count()`).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.buckets
            .iter()
            .map(|b| {
                acc += b.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }
}

/// Kind tag for rendering.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    /// Family name without labels, e.g. `titserved_requests_total`.
    name: &'static str,
    /// Optional label set rendered inside `{...}`, e.g. `endpoint="/predict"`.
    labels: Option<&'static str>,
    help: &'static str,
    metric: Metric,
}

/// A named collection of metrics rendered in registration order.
///
/// The registry is built once at startup (registration allocates and takes
/// `&mut self`), then shared behind an `Arc`; recording through the handed
/// out `Arc<Counter>` / `Arc<Gauge>` / `Arc<Histogram>` handles is
/// lock-free. `# HELP`/`# TYPE` headers are emitted once per family, on
/// the first entry of that name, so registering several labelled series
/// under one family renders a single well-formed group.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Entry>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers and returns an unlabelled counter.
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, None, help)
    }

    /// Registers and returns a counter carrying a fixed label set
    /// (e.g. `endpoint="/predict"`).
    pub fn counter_with(
        &mut self,
        name: &'static str,
        labels: Option<&'static str>,
        help: &'static str,
    ) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.entries.push(Entry {
            name,
            labels,
            help,
            metric: Metric::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Registers and returns an unlabelled gauge.
    pub fn gauge(&mut self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.entries.push(Entry {
            name,
            labels: None,
            help,
            metric: Metric::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Registers and returns a histogram with the given bucket bounds,
    /// carrying an optional fixed label set.
    pub fn histogram_with(
        &mut self,
        name: &'static str,
        labels: Option<&'static str>,
        help: &'static str,
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new(bounds));
        self.entries.push(Entry {
            name,
            labels,
            help,
            metric: Metric::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (content type `text/plain; version=0.0.4`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 96);
        let mut seen: Vec<&'static str> = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            if !seen.contains(&e.name) {
                seen.push(e.name);
                let kind = match e.metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!(
                    "# HELP {} {}\n# TYPE {} {}\n",
                    e.name, e.help, e.name, kind
                ));
            }
            match &e.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{} {}\n", series(e.name, e.labels, None), c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{} {}\n", series(e.name, e.labels, None), g.get()));
                }
                Metric::Histogram(h) => {
                    let cum = h.cumulative();
                    for (i, bound) in h.bounds.iter().enumerate() {
                        out.push_str(&format!(
                            "{} {}\n",
                            series(
                                &format!("{}_bucket", e.name),
                                e.labels,
                                Some(&format!("le=\"{}\"", fmt_f64(*bound)))
                            ),
                            cum[i]
                        ));
                    }
                    out.push_str(&format!(
                        "{} {}\n",
                        series(&format!("{}_bucket", e.name), e.labels, Some("le=\"+Inf\"")),
                        cum[h.bounds.len()]
                    ));
                    out.push_str(&format!(
                        "{} {}\n",
                        series(&format!("{}_sum", e.name), e.labels, None),
                        fmt_f64(h.sum_s())
                    ));
                    out.push_str(&format!(
                        "{} {}\n",
                        series(&format!("{}_count", e.name), e.labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }
}

/// Renders `name{labels,extra}` with either, both, or neither label part.
fn series(name: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    match (labels, extra) {
        (None, None) => name.to_string(),
        (Some(l), None) => format!("{name}{{{l}}}"),
        (None, Some(x)) => format!("{name}{{{x}}}"),
        (Some(l), Some(x)) => format!("{name}{{{l},{x}}}"),
    }
}

/// Plain decimal float rendering (no exponent for the magnitudes used
/// here); mirrors the discipline of `obs::json_f64`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "NaN".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{}", v.trunc());
    }
    let s = format!("{v}");
    if s.contains('e') {
        format!("{v:.9}")
    } else {
        s
    }
}

/// Wall-clock stopwatch that is a no-op (never reads the host clock) when
/// started disabled. The enabled/disabled decision is the single branch
/// instrumentation sites pay on the disabled path.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<std::time::Instant>);

impl Stopwatch {
    /// Starts the stopwatch; when `enabled` is false no clock is read and
    /// [`Stopwatch::elapsed_s`] always returns zero.
    pub fn start(enabled: bool) -> Self {
        Self(if enabled {
            Some(std::time::Instant::now())
        } else {
            None
        })
    }

    /// Seconds since start (zero when disabled).
    pub fn elapsed_s(&self) -> f64 {
        self.0.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0)
    }

    /// Whether the stopwatch is live.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_le() {
        let h = Histogram::new(&[0.01, 0.1, 1.0]);
        h.observe(0.005); // -> first bucket
        h.observe(0.01); // boundary counts as le
        h.observe(0.5); // -> third bucket
        h.observe(50.0); // -> +Inf
        h.observe(-1.0); // clamped to 0 -> first bucket
        assert_eq!(h.count(), 5);
        assert_eq!(h.cumulative(), vec![3, 3, 4, 5]);
        let sum = h.sum_s();
        assert!((sum - 50.515).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let mut reg = Registry::new();
        let c = reg.counter_with(
            "t_requests_total",
            Some("endpoint=\"/predict\""),
            "Requests served.",
        );
        let c2 = reg.counter_with(
            "t_requests_total",
            Some("endpoint=\"/stats\""),
            "Requests served.",
        );
        let g = reg.gauge("t_in_flight", "In-flight requests.");
        let h = reg.histogram_with("t_latency_seconds", None, "Request latency.", &[0.001, 0.1]);
        c.add(3);
        c2.inc();
        g.set(2);
        h.observe(0.0005);
        h.observe(5.0);
        let text = reg.render_prometheus();
        // One header per family even with two labelled series.
        assert_eq!(text.matches("# TYPE t_requests_total counter").count(), 1);
        assert!(text.contains("t_requests_total{endpoint=\"/predict\"} 3\n"));
        assert!(text.contains("t_requests_total{endpoint=\"/stats\"} 1\n"));
        assert!(text.contains("# TYPE t_in_flight gauge\n"));
        assert!(text.contains("t_in_flight 2\n"));
        assert!(text.contains("# TYPE t_latency_seconds histogram\n"));
        assert!(text.contains("t_latency_seconds_bucket{le=\"0.001\"} 1\n"));
        assert!(text.contains("t_latency_seconds_bucket{le=\"0.1\"} 1\n"));
        assert!(text.contains("t_latency_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("t_latency_seconds_count 2\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparsable sample value in {line:?}"
            );
            assert!(parts.next().is_some());
        }
    }

    #[test]
    fn fmt_f64_plain_decimal() {
        assert_eq!(fmt_f64(0.005), "0.005");
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(10.0), "10");
        assert_eq!(fmt_f64(0.0005), "0.0005");
        assert!(!fmt_f64(1e-7).contains('e'));
    }

    #[test]
    fn disabled_stopwatch_reads_zero() {
        let sw = Stopwatch::start(false);
        assert!(!sw.enabled());
        assert_eq!(sw.elapsed_s(), 0.0);
        let live = Stopwatch::start(true);
        assert!(live.enabled());
        assert!(live.elapsed_s() >= 0.0);
    }
}
