//! The kernel: simulated clock, future event list, activity table, and the
//! actor ready-queue.
//!
//! The kernel is deliberately domain-free. Network models and MPI runtimes
//! manipulate activities (creating flows, re-sharing rates) and wake actors;
//! the kernel only guarantees exact work accounting and deterministic event
//! delivery.

use std::collections::VecDeque;

use crate::activity::{ActivityId, ActivityState, Slot};
use crate::actor::{ActorId, Wake};
use crate::queue::{EventKind, EventQueue, FelImpl, FelProfile};
use crate::time::{Duration, Time};

const NO_FREE: u32 = u32::MAX;

/// Upper bound on concurrently in-flight activities per simulated rank
/// during a trace replay: one compute or blocking transfer plus a bounded
/// window of detached eager sends. Used by [`replay_sizing`].
pub const IN_FLIGHT_PER_RANK: usize = 8;

/// The pre-sizing heuristic shared by the replay runners (`smpi::runner`
/// and `msgsim::runner`): a `ranks`-process replay keeps at most
/// [`IN_FLIGHT_PER_RANK`] activities in flight per rank, and each live
/// activity accounts for at most two queued events (its scheduled
/// completion plus one superseded predecessor awaiting its lazy skip).
/// Returns `(activities, events)` suitable for
/// [`Kernel::with_capacity`] / [`crate::sim::Sim::with_capacity`], so the
/// activity slab and event queue never regrow mid-replay.
pub fn replay_sizing(ranks: usize) -> (usize, usize) {
    let activities = ranks * IN_FLIGHT_PER_RANK;
    (activities, 2 * activities)
}

/// Outcome of one [`Kernel::next_wake_before`] scheduling step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelStep {
    /// An actor is due to run (its wake-up reason attached).
    Wake(ActorId, Wake),
    /// The next pending event lies strictly past the horizon; the clock
    /// did not advance beyond it.
    Horizon,
    /// No wake, timer, or event remains anywhere — the kernel cannot
    /// advance regardless of horizon.
    Quiesced,
}

/// The simulation kernel. See the [module documentation](self).
#[derive(Debug)]
pub struct Kernel {
    now: Time,
    queue: EventQueue,
    slots: Vec<Slot>,
    free_head: u32,
    ready: VecDeque<(ActorId, Wake)>,
    live_activities: usize,
    events_processed: u64,
    compactions: u64,
    /// Reusable buffer swapped with a completing activity's waiter list,
    /// so completions recycle capacity instead of allocating.
    wake_scratch: Vec<u32>,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Creates a kernel with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// Creates a kernel pre-sized for `activities` concurrent activities
    /// and `events` pending events, so the hot slab and heap never
    /// reallocate during steady-state replay. Callers that know their
    /// workload (e.g. a trace replayer with `P` ranks and a bounded number
    /// of in-flight transfers per rank) should use this; see
    /// [`replay_sizing`] for the replay runners' shared heuristic.
    pub fn with_capacity(activities: usize, events: usize) -> Self {
        Self::with_capacity_fel(activities, events, FelImpl::default())
    }

    /// [`Kernel::with_capacity`] with an explicit future-event-list
    /// implementation (see [`FelImpl`]). Both implementations deliver
    /// bit-identical event orders; `fel` only selects the cost profile.
    pub fn with_capacity_fel(activities: usize, events: usize, fel: FelImpl) -> Self {
        Kernel {
            now: Time::ZERO,
            queue: EventQueue::with_capacity_fel(events, fel),
            slots: Vec::with_capacity(activities),
            free_head: NO_FREE,
            ready: VecDeque::new(),
            live_activities: 0,
            events_processed: 0,
            compactions: 0,
            wake_scratch: Vec::new(),
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far (a cheap progress/performance
    /// metric for the bench harness).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of live (running) activities.
    pub fn live_activities(&self) -> usize {
        self.live_activities
    }

    /// Number of queued events that will actually fire (excludes entries
    /// already superseded by rate changes or cancellations).
    pub fn pending_events(&self) -> usize {
        self.queue.live_len()
    }

    /// Number of times the event queue was compacted to shed superseded
    /// entries (a diagnostic for re-sharing-heavy workloads).
    pub fn queue_compactions(&self) -> u64 {
        self.compactions
    }

    /// Which future-event-list implementation backs this kernel.
    pub fn fel(&self) -> FelImpl {
        self.queue.fel()
    }

    /// The event queue's hot-path counters (all zero unless the `profile`
    /// cargo feature is enabled).
    pub fn queue_profile(&self) -> FelProfile {
        self.queue.profile()
    }

    /// Fills the kernel-owned fields of a metrics snapshot: events
    /// processed, queue compactions, and the FEL profile together with
    /// whether its counters were compiled in.
    pub fn observe(&self, metrics: &mut crate::obs::Metrics) {
        metrics.events_processed = self.events_processed();
        metrics.queue_compactions = self.queue_compactions();
        metrics.fel_profile_enabled = crate::queue::profile_enabled();
        metrics.fel = self.queue_profile();
    }

    // ------------------------------------------------------------------
    // Activities
    // ------------------------------------------------------------------

    /// Starts an activity with `work` units remaining, progressing at
    /// `rate` units/second (zero suspends it until [`Kernel::set_rate`]).
    ///
    /// # Panics
    /// Panics if `work` or `rate` is negative or non-finite.
    pub fn start_activity(&mut self, work: f64, rate: f64) -> ActivityId {
        assert!(work.is_finite() && work >= 0.0, "invalid work: {work}");
        assert!(rate.is_finite() && rate >= 0.0, "invalid rate: {rate}");
        let index = if self.free_head != NO_FREE {
            let index = self.free_head;
            let slot = &mut self.slots[index as usize];
            self.free_head = slot.next_free;
            slot.remaining = work;
            slot.rate = rate;
            slot.settled_at = self.now;
            slot.generation = slot.generation.wrapping_add(1);
            slot.sched = 0;
            slot.state = ActivityState::Running;
            slot.queued = false;
            slot.waiters.clear();
            slot.next_free = NO_FREE;
            index
        } else {
            let index = u32::try_from(self.slots.len()).expect("too many activities");
            self.slots.push(Slot {
                remaining: work,
                rate,
                settled_at: self.now,
                generation: 0,
                sched: 0,
                state: ActivityState::Running,
                queued: false,
                waiters: Vec::new(),
                next_free: NO_FREE,
            });
            index
        };
        self.live_activities += 1;
        let generation = self.slots[index as usize].generation;
        let id = ActivityId { index, generation };
        self.schedule_completion(id);
        id
    }

    /// Changes the rate of a running activity, settling its remaining work
    /// at the current instant first. A rate of zero suspends the activity.
    ///
    /// Calling this on a completed or cancelled activity is a no-op, since
    /// resource re-sharing commonly races with completions within the same
    /// instant.
    pub fn set_rate(&mut self, id: ActivityId, rate: f64) {
        assert!(rate.is_finite() && rate >= 0.0, "invalid rate: {rate}");
        let Some(slot) = self.slot_mut(id) else {
            return;
        };
        if slot.state != ActivityState::Running {
            return;
        }
        let now = self.now;
        let slot = &mut self.slots[id.index as usize];
        slot.settle(now);
        if slot.rate == rate {
            return;
        }
        slot.rate = rate;
        slot.sched = slot.sched.wrapping_add(1);
        self.orphan_queued(id.index);
        self.schedule_completion(id);
    }

    /// Adds `extra` work units to a running activity (used to model
    /// perturbations injected while an activity is already in flight).
    pub fn add_work(&mut self, id: ActivityId, extra: f64) {
        assert!(extra.is_finite() && extra >= 0.0, "invalid work: {extra}");
        if self.slot_mut(id).is_none() {
            return;
        }
        let now = self.now;
        let slot = &mut self.slots[id.index as usize];
        if slot.state != ActivityState::Running {
            return;
        }
        slot.settle(now);
        slot.remaining += extra;
        slot.sched = slot.sched.wrapping_add(1);
        self.orphan_queued(id.index);
        self.schedule_completion(id);
    }

    /// Cancels a running activity; its waiters are *not* woken. No-op when
    /// already finished.
    pub fn cancel(&mut self, id: ActivityId) {
        let now = self.now;
        let Some(slot) = self.slot_mut(id) else {
            return;
        };
        if slot.state == ActivityState::Running {
            slot.settle(now);
            slot.state = ActivityState::Cancelled;
            slot.waiters.clear();
            let index = id.index;
            self.live_activities -= 1;
            self.orphan_queued(index);
            self.release(index);
        }
    }

    /// Registers `actor` to be woken with [`Wake::Activity`] when `id`
    /// completes. If the activity already completed, the actor is woken
    /// immediately (same instant, after currently queued wakes).
    pub fn subscribe(&mut self, id: ActivityId, actor: ActorId) {
        // Completed-and-recycled slots are gone; id mismatch means "already
        // completed" from the subscriber's point of view.
        let index = id.index as usize;
        let matches = self
            .slots
            .get(index)
            .is_some_and(|s| s.next_free == NO_FREE && s.generation == id.generation);
        if matches && self.slots[index].state == ActivityState::Running {
            self.slots[index].waiters.push(actor.0);
        } else {
            self.ready.push_back((actor, Wake::Activity(id)));
        }
    }

    /// Current state of an activity, or `None` when the handle is stale
    /// (slot recycled). A completed activity whose slot has been recycled
    /// reports `None`, so callers that need completion notifications should
    /// use [`Kernel::subscribe`].
    pub fn activity_state(&self, id: ActivityId) -> Option<ActivityState> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.next_free != NO_FREE || slot.generation != id.generation {
            return None;
        }
        Some(slot.state)
    }

    /// Remaining work units of a running activity, settled to "now".
    pub fn remaining_work(&self, id: ActivityId) -> Option<f64> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.next_free != NO_FREE
            || slot.generation != id.generation
            || slot.state != ActivityState::Running
        {
            return None;
        }
        let elapsed = self.now.since(slot.settled_at);
        Some((slot.remaining - elapsed.work_at(slot.rate)).max(0.0))
    }

    // ------------------------------------------------------------------
    // Timers and wakes
    // ------------------------------------------------------------------

    /// Wakes `actor` after `delay` with [`Wake::Timer`] carrying `key`.
    pub fn set_timer(&mut self, actor: ActorId, delay: Duration, key: u64) {
        self.queue.push(
            self.now + delay,
            EventKind::Timer {
                actor: actor.0,
                key,
            },
        );
    }

    /// Wakes `actor` at the absolute instant `at` with [`Wake::Timer`]
    /// carrying `key`. The windowed parallel replay engine uses this to
    /// inject cross-shard arrivals at the exact simulated time the merged
    /// run would deliver them — the timestamp is shipped between kernels,
    /// not re-derived, so the float is bit-identical.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock.
    pub fn set_timer_at(&mut self, actor: ActorId, at: Time, key: u64) {
        assert!(at >= self.now, "timer scheduled in the past");
        self.queue.push(
            at,
            EventKind::Timer {
                actor: actor.0,
                key,
            },
        );
    }

    /// Immediately enqueues a wake for `actor` (delivered at the current
    /// instant, in FIFO order with other pending wakes).
    pub fn wake(&mut self, actor: ActorId, wake: Wake) {
        self.ready.push_back((actor, wake));
    }

    /// The earliest instant at which this kernel has anything to do:
    /// `now` when same-instant wakes are queued, otherwise the timestamp
    /// of the next queued event (which may be a superseded entry — a
    /// lower bound, never an overestimate — so conservative horizon
    /// computations remain safe), or `None` when fully quiesced.
    pub fn next_pending_time(&self) -> Option<Time> {
        if !self.ready.is_empty() {
            return Some(self.now);
        }
        self.queue.peek_time()
    }

    // ------------------------------------------------------------------
    // Event loop plumbing (driven by `sim::Sim`)
    // ------------------------------------------------------------------

    /// Pops the next actor wake-up. Drains same-instant wakes first, then
    /// advances the clock to the next event. Returns `None` when the
    /// simulation has quiesced (no wakes, no events).
    ///
    /// [`crate::sim::Sim::run`] drives this loop; it is public so that
    /// embedders (tests, custom drivers) can step a kernel manually.
    pub fn next_wake(&mut self) -> Option<(ActorId, Wake)> {
        match self.next_wake_before(Time::NEVER) {
            KernelStep::Wake(actor, wake) => Some((actor, wake)),
            KernelStep::Quiesced => None,
            // No finite event time exceeds `Time::NEVER`.
            KernelStep::Horizon => unreachable!("event scheduled past Time::NEVER"),
        }
    }

    /// Horizon-bounded variant of [`Kernel::next_wake`]: delivers the next
    /// wake-up only if it lies at or before `horizon` (simulated time).
    /// Same-instant ready wakes (at the current clock) always drain first.
    /// The clock never advances past `horizon`, so a caller can interleave
    /// several kernels window by window — the windowed parallel replay
    /// engine drives this. `next_wake_before(Time::NEVER)` is exactly
    /// [`Kernel::next_wake`]; the event pop order (and therefore
    /// `events_processed`) is identical for any horizon schedule.
    pub fn next_wake_before(&mut self, horizon: Time) -> KernelStep {
        loop {
            if let Some((actor, wake)) = self.ready.pop_front() {
                return KernelStep::Wake(actor, wake);
            }
            let at = match self.queue.peek_time() {
                None => return KernelStep::Quiesced,
                Some(at) if at > horizon => return KernelStep::Horizon,
                Some(at) => at,
            };
            let (_, kind) = self.queue.pop().expect("peeked event vanished");
            debug_assert!(at >= self.now, "event list went backwards");
            self.now = at;
            self.events_processed += 1;
            match kind {
                EventKind::Timer { actor, key } => {
                    return KernelStep::Wake(ActorId(actor), Wake::Timer(key));
                }
                EventKind::ActivityComplete {
                    index,
                    generation,
                    sched,
                } => {
                    if let Some(w) = self.complete_activity(index, generation, sched) {
                        return KernelStep::Wake(w.0, w.1);
                    }
                    // Stale event; keep looping.
                }
            }
        }
    }

    fn complete_activity(
        &mut self,
        index: u32,
        generation: u32,
        sched: u32,
    ) -> Option<(ActorId, Wake)> {
        let slot = &mut self.slots[index as usize];
        if slot.generation != generation
            || slot.sched != sched
            || slot.state != ActivityState::Running
            || slot.next_free != NO_FREE
        {
            // Superseded entry reaching the head of the queue: account for
            // the skip so live_len stays exact.
            self.queue.note_stale_popped();
            return None;
        }
        slot.queued = false;
        let now = self.now;
        slot.settle(now);
        debug_assert!(slot.remaining <= 1e-6 * (1.0 + slot.rate));
        slot.remaining = 0.0;
        slot.state = ActivityState::Done;
        let id = ActivityId { index, generation };
        // Swap the waiter list with a reusable scratch buffer: capacities
        // circulate between the scratch and the slots, so steady-state
        // completions never touch the allocator.
        let mut waiters = std::mem::take(&mut self.wake_scratch);
        debug_assert!(waiters.is_empty());
        std::mem::swap(&mut self.slots[index as usize].waiters, &mut waiters);
        self.live_activities -= 1;
        self.release(index);
        let mut first = None;
        for (i, &w) in waiters.iter().enumerate() {
            if i == 0 {
                first = Some((ActorId(w), Wake::Activity(id)));
            } else {
                self.ready.push_back((ActorId(w), Wake::Activity(id)));
            }
        }
        waiters.clear();
        self.wake_scratch = waiters;
        first.or_else(|| self.ready.pop_front())
    }

    fn schedule_completion(&mut self, id: ActivityId) {
        let slot = &mut self.slots[id.index as usize];
        let eta = slot.eta();
        if !eta.is_never() {
            slot.queued = true;
            let sched = slot.sched;
            self.queue.push(
                eta,
                EventKind::ActivityComplete {
                    index: id.index,
                    generation: id.generation,
                    sched,
                },
            );
        }
    }

    /// Reports the queued completion (if any) for slot `index` as
    /// superseded, and compacts the event queue once dead entries dominate
    /// it. Called whenever a rate/work change or a cancellation orphans a
    /// previously scheduled completion.
    fn orphan_queued(&mut self, index: u32) {
        let slot = &mut self.slots[index as usize];
        if !slot.queued {
            return;
        }
        slot.queued = false;
        self.queue.note_superseded();
        if self.queue.should_compact() {
            let Kernel { queue, slots, .. } = self;
            queue.compact(|kind| match *kind {
                EventKind::ActivityComplete {
                    index,
                    generation,
                    sched,
                } => {
                    let s = &slots[index as usize];
                    s.next_free == NO_FREE
                        && s.generation == generation
                        && s.sched == sched
                        && s.state == ActivityState::Running
                }
                EventKind::Timer { .. } => true,
            });
            self.compactions += 1;
        }
    }

    fn slot_mut(&mut self, id: ActivityId) -> Option<&mut Slot> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.next_free != NO_FREE
            || slot.generation != id.generation
            || slot.state != ActivityState::Running
        {
            return None;
        }
        Some(slot)
    }

    fn release(&mut self, index: u32) {
        let slot = &mut self.slots[index as usize];
        slot.next_free = self.free_head;
        self.free_head = index;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_completes_at_expected_time() {
        let mut k = Kernel::new();
        let a = k.start_activity(100.0, 10.0);
        k.subscribe(a, ActorId(7));
        let (actor, wake) = k.next_wake().unwrap();
        assert_eq!(actor, ActorId(7));
        assert_eq!(wake, Wake::Activity(a));
        assert_eq!(k.now(), Time::from_secs(10.0));
    }

    #[test]
    fn rate_change_reschedules_exactly() {
        let mut k = Kernel::new();
        let a = k.start_activity(100.0, 10.0);
        k.subscribe(a, ActorId(0));
        // Let 2 seconds pass via a timer, then double the rate.
        k.set_timer(ActorId(1), Duration::from_secs(2.0), 0);
        let (actor, _) = k.next_wake().unwrap();
        assert_eq!(actor, ActorId(1));
        assert_eq!(k.now(), Time::from_secs(2.0));
        k.set_rate(a, 20.0); // 80 units left at 20/s => completes at t=6.
        let (actor, wake) = k.next_wake().unwrap();
        assert_eq!(actor, ActorId(0));
        assert_eq!(wake, Wake::Activity(a));
        assert_eq!(k.now(), Time::from_secs(6.0));
    }

    #[test]
    fn suspend_and_resume() {
        let mut k = Kernel::new();
        let a = k.start_activity(10.0, 10.0);
        k.subscribe(a, ActorId(0));
        k.set_timer(ActorId(9), Duration::from_secs(0.5), 0);
        let _ = k.next_wake().unwrap(); // timer at 0.5, 5 units remain
        k.set_rate(a, 0.0); // suspend
        k.set_timer(ActorId(9), Duration::from_secs(10.0), 1);
        let (actor, _) = k.next_wake().unwrap();
        assert_eq!(actor, ActorId(9)); // completion did NOT fire while suspended
        assert_eq!(k.now(), Time::from_secs(10.5));
        k.set_rate(a, 5.0); // 5 units at 5/s => completes at 11.5
        let (actor, wake) = k.next_wake().unwrap();
        assert_eq!(actor, ActorId(0));
        assert_eq!(wake, Wake::Activity(a));
        assert_eq!(k.now(), Time::from_secs(11.5));
    }

    #[test]
    fn subscribe_after_completion_wakes_immediately() {
        let mut k = Kernel::new();
        let a = k.start_activity(1.0, 1.0);
        // Drain the completion without a subscriber.
        assert!(k.next_wake().is_none());
        assert_eq!(k.now(), Time::from_secs(1.0));
        k.subscribe(a, ActorId(3));
        let (actor, wake) = k.next_wake().unwrap();
        assert_eq!(actor, ActorId(3));
        assert_eq!(wake, Wake::Activity(a));
        assert_eq!(k.now(), Time::from_secs(1.0)); // no time passed
    }

    #[test]
    fn cancelled_activity_never_fires() {
        let mut k = Kernel::new();
        let a = k.start_activity(1.0, 1.0);
        k.subscribe(a, ActorId(0));
        k.cancel(a);
        assert!(k.next_wake().is_none());
        assert_eq!(k.live_activities(), 0);
    }

    #[test]
    fn slot_recycling_does_not_alias() {
        let mut k = Kernel::new();
        let a = k.start_activity(1.0, 1.0);
        k.cancel(a);
        let b = k.start_activity(5.0, 1.0);
        assert_eq!(a.index, b.index, "slot should be recycled");
        assert_ne!(a.generation, b.generation);
        assert!(k.activity_state(a).is_none() || a != b);
        k.subscribe(b, ActorId(1));
        let (actor, wake) = k.next_wake().unwrap();
        assert_eq!(actor, ActorId(1));
        assert_eq!(wake, Wake::Activity(b));
        assert_eq!(k.now(), Time::from_secs(5.0));
    }

    #[test]
    fn add_work_extends_completion() {
        let mut k = Kernel::new();
        let a = k.start_activity(10.0, 1.0);
        k.subscribe(a, ActorId(0));
        k.add_work(a, 5.0);
        let (_, _) = k.next_wake().unwrap();
        assert_eq!(k.now(), Time::from_secs(15.0));
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut k = Kernel::new();
        let a = k.start_activity(0.0, 1.0);
        k.subscribe(a, ActorId(0));
        let (_, wake) = k.next_wake().unwrap();
        assert_eq!(wake, Wake::Activity(a));
        assert_eq!(k.now(), Time::ZERO);
    }

    #[test]
    fn multiple_waiters_all_wake() {
        let mut k = Kernel::new();
        let a = k.start_activity(1.0, 1.0);
        k.subscribe(a, ActorId(0));
        k.subscribe(a, ActorId(1));
        k.subscribe(a, ActorId(2));
        let mut woken = Vec::new();
        while let Some((actor, _)) = k.next_wake() {
            woken.push(actor.0);
        }
        assert_eq!(woken, vec![0, 1, 2]);
    }

    #[test]
    fn remaining_work_settles_to_now() {
        let mut k = Kernel::new();
        let a = k.start_activity(100.0, 10.0);
        k.set_timer(ActorId(0), Duration::from_secs(3.0), 0);
        let _ = k.next_wake();
        assert_eq!(k.remaining_work(a), Some(70.0));
    }

    #[test]
    fn rate_churn_keeps_queue_compact() {
        // 64 long-lived activities re-shared 1000 times each: without
        // compaction the heap would hold ~64_000 dead entries.
        let mut k = Kernel::new();
        let acts: Vec<_> = (0..64).map(|_| k.start_activity(1e9, 1.0)).collect();
        for round in 0..1000u32 {
            for &a in &acts {
                k.set_rate(a, 1.0 + f64::from(round % 7));
            }
        }
        assert_eq!(k.pending_events(), 64, "one live completion per activity");
        assert!(
            k.queue_compactions() > 0,
            "sustained churn must trigger compaction"
        );
        assert!(
            k.queue.len() < 64 * 4,
            "heap should stay near its live size, got {}",
            k.queue.len()
        );
        // Work accounting survives all of it: every activity still
        // completes, at the final rate, in a deterministic order.
        for (i, &a) in acts.iter().enumerate() {
            k.subscribe(a, ActorId(i as u32));
        }
        let mut done = 0;
        while k.next_wake().is_some() {
            done += 1;
        }
        assert_eq!(done, 64);
        assert_eq!(k.pending_events(), 0);
        assert_eq!(k.live_activities(), 0);
    }

    #[test]
    fn pending_events_excludes_superseded_and_cancelled() {
        let mut k = Kernel::new();
        let a = k.start_activity(100.0, 1.0);
        let b = k.start_activity(100.0, 1.0);
        assert_eq!(k.pending_events(), 2);
        k.set_rate(a, 2.0); // orphans a's first completion
        assert_eq!(k.pending_events(), 2);
        k.cancel(b); // orphans b's completion
        assert_eq!(k.pending_events(), 1);
        k.set_rate(a, 0.0); // suspend: no live completion at all
        assert_eq!(k.pending_events(), 0);
        assert!(!k.queue.is_empty(), "stale entries drain lazily");
        assert!(k.next_wake().is_none());
        assert_eq!(k.pending_events(), 0);
    }

    #[test]
    fn absolute_timer_fires_at_exact_instant() {
        let mut k = Kernel::new();
        k.set_timer(ActorId(0), Duration::from_secs(1.0), 0);
        let _ = k.next_wake().unwrap();
        assert_eq!(k.now(), Time::from_secs(1.0));
        // An absolute timer is delivered at precisely the shipped instant,
        // not a re-derived now+delta.
        let at = Time::from_secs(2.5);
        k.set_timer_at(ActorId(1), at, 42);
        let (actor, wake) = k.next_wake().unwrap();
        assert_eq!(actor, ActorId(1));
        assert_eq!(wake, Wake::Timer(42));
        assert_eq!(k.now().as_secs().to_bits(), at.as_secs().to_bits());
    }

    #[test]
    fn next_pending_time_tracks_ready_and_queue() {
        let mut k = Kernel::new();
        assert_eq!(k.next_pending_time(), None);
        k.set_timer(ActorId(0), Duration::from_secs(3.0), 0);
        assert_eq!(k.next_pending_time(), Some(Time::from_secs(3.0)));
        k.wake(ActorId(1), Wake::Timer(9));
        assert_eq!(k.next_pending_time(), Some(Time::ZERO));
        let _ = k.next_wake().unwrap(); // drains the ready wake
        assert_eq!(k.next_pending_time(), Some(Time::from_secs(3.0)));
        let _ = k.next_wake().unwrap();
        assert_eq!(k.next_pending_time(), None);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut k = Kernel::with_capacity(128, 512);
        let a = k.start_activity(10.0, 2.0);
        k.subscribe(a, ActorId(0));
        let (actor, wake) = k.next_wake().unwrap();
        assert_eq!(actor, ActorId(0));
        assert_eq!(wake, Wake::Activity(a));
        assert_eq!(k.now(), Time::from_secs(5.0));
    }

    #[test]
    fn replay_sizing_is_the_runners_heuristic() {
        let (activities, events) = crate::kernel::replay_sizing(16);
        assert_eq!(activities, 16 * IN_FLIGHT_PER_RANK);
        assert_eq!(events, 2 * activities);
    }

    /// The kernel-level differential check: an identical churn-heavy
    /// workload (rate changes, timers, cancellations, compactions) run
    /// under both FEL implementations must produce the same wake sequence
    /// at bit-identical times.
    #[test]
    fn heap_and_ladder_kernels_agree_under_churn() {
        let run = |fel: FelImpl| {
            let mut k = Kernel::with_capacity_fel(0, 0, fel);
            assert_eq!(k.fel(), fel);
            let acts: Vec<_> = (0..48)
                .map(|i| k.start_activity(1e6 + f64::from(i as u32), 1.0))
                .collect();
            let mut trace: Vec<(u32, f64)> = Vec::new();
            for round in 0..200u32 {
                for (i, &a) in acts.iter().enumerate() {
                    k.set_rate(a, 1.0 + f64::from((round as usize + i) as u32 % 11));
                }
                k.set_timer(
                    ActorId(999),
                    Duration::from_secs(f64::from(round) * 0.01),
                    u64::from(round),
                );
                if round % 7 == 0 {
                    let (actor, _) = k.next_wake().unwrap();
                    trace.push((actor.0, k.now().as_secs()));
                }
                if round == 150 {
                    k.cancel(acts[3]);
                }
            }
            for (i, &a) in acts.iter().enumerate() {
                k.subscribe(a, ActorId(i as u32));
            }
            while let Some((actor, _)) = k.next_wake() {
                trace.push((actor.0, k.now().as_secs()));
            }
            assert!(k.queue_compactions() > 0, "churn must trigger compaction");
            (trace, k.now().as_secs().to_bits(), k.events_processed())
        };
        assert_eq!(run(FelImpl::Heap), run(FelImpl::Ladder));
    }
}
