//! Actors: cooperative state machines driven by the event loop.
//!
//! Rust has no stable stackful coroutines, so simulated processes are
//! explicit state machines: the scheduler calls [`Actor::resume`] with the
//! reason for the wake-up, the actor performs as much work as it can
//! (starting activities, sending messages through a runtime held in the
//! shared world `W`), and returns whether it is blocked or finished.
//!
//! The world type `W` carries all cross-actor state — network model, MPI
//! matching queues, statistics — and is passed `&mut` alongside the kernel,
//! which keeps the whole simulator free of interior mutability.

use crate::activity::ActivityId;
use crate::kernel::Kernel;

/// Identifier of an actor within a [`crate::sim::Sim`]. Dense, assigned in
/// spawn order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u32);

impl ActorId {
    /// The actor index as a usize (for indexing per-actor tables).
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// Why an actor was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// First resume after spawn.
    Start,
    /// An activity the actor subscribed to has completed.
    Activity(ActivityId),
    /// A timer set via [`Kernel::set_timer`] fired; carries the user key.
    Timer(u64),
    /// Another actor (through the world/runtime) requested a wake with an
    /// opaque payload.
    Signal(u64),
}

/// Result of a resume step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The actor is waiting for a subscription, timer, or signal.
    Blocked,
    /// The actor is done and will never be resumed again.
    Finished,
}

/// A simulated process.
///
/// Implementations must be *run-to-block*: `resume` performs every
/// non-blocking step available and only returns [`Status::Blocked`] after
/// registering (via subscriptions, timers, or world-level queues) for the
/// wake-up that will unblock it. Returning `Blocked` without a registered
/// wake-up deadlocks the actor, which [`crate::sim::Sim::run`] reports.
pub trait Actor<W> {
    /// Advances the actor until it blocks or finishes.
    fn resume(&mut self, kernel: &mut Kernel, world: &mut W, wake: Wake) -> Status;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_id_roundtrip() {
        assert_eq!(ActorId(5).as_usize(), 5);
        assert!(ActorId(1) < ActorId(2));
    }

    #[test]
    fn wake_equality() {
        assert_eq!(Wake::Timer(3), Wake::Timer(3));
        assert_ne!(Wake::Timer(3), Wake::Signal(3));
        assert_eq!(Wake::Start, Wake::Start);
    }
}
