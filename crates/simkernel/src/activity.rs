//! Activities: quantities of work progressing at a mutable rate.
//!
//! An activity models anything with measurable progress — a compute burst
//! (work = instructions, rate = instructions/second) or a network transfer
//! (work = bytes, rate = allotted bandwidth). Rates change whenever resource
//! sharing changes; the kernel settles the remaining work before applying a
//! new rate, so progress accounting is exact under arbitrary re-sharing.
//!
//! Slots are recycled through a free list; stale completion events are
//! detected with per-slot generation counters.

use crate::time::{Duration, Time};

/// Handle to an activity slot. Includes the slot generation, so a handle to
/// a completed-and-recycled activity can never alias a live one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActivityId {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

impl ActivityId {
    /// The raw slot index (stable for the lifetime of the activity; reused
    /// afterwards). Mostly useful as a map key together with the full id.
    pub fn index(self) -> u32 {
        self.index
    }

    /// The slot generation (instance identity). Together with
    /// [`ActivityId::index`] this uniquely identifies an activity
    /// instance, letting side tables index by slot and validate by
    /// generation instead of hashing the whole id.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// Lifecycle state of an activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivityState {
    /// Progressing (possibly at rate zero, i.e. suspended).
    Running,
    /// All work done. The slot stays observable until recycled.
    Done,
    /// Explicitly cancelled before completion.
    Cancelled,
}

#[derive(Debug)]
pub(crate) struct Slot {
    /// Work still to do, in work units.
    pub remaining: f64,
    /// Current processing rate, work units per second.
    pub rate: f64,
    /// Instant at which `remaining` was last settled.
    pub settled_at: Time,
    /// Instance identity: bumped when the slot is recycled for a new
    /// activity, so stale handles can never alias a live one.
    pub generation: u32,
    /// Schedule counter: bumped on every rate or work change; completion
    /// events carry the value they were scheduled under and are ignored on
    /// mismatch.
    pub sched: u32,
    pub state: ActivityState,
    /// `true` while a completion event for the *current* `sched` value sits
    /// in the event queue. Lets the kernel keep the queue's stale-entry
    /// count exact: a rate/work change or cancel that orphans the queued
    /// completion reports exactly one superseded entry.
    pub queued: bool,
    /// Actors to wake on completion (usually exactly one).
    pub waiters: Vec<u32>,
    /// Free-list linkage; `u32::MAX` when occupied.
    pub next_free: u32,
}

impl Slot {
    /// Settles `remaining` down to the current instant `now`.
    pub fn settle(&mut self, now: Time) {
        if self.state == ActivityState::Running {
            let elapsed = now.since(self.settled_at);
            self.remaining = (self.remaining - elapsed.work_at(self.rate)).max(0.0);
        }
        self.settled_at = now;
    }

    /// Time at which the activity will complete at the current rate, or
    /// `Time::NEVER` when suspended (rate == 0).
    pub fn eta(&self) -> Time {
        match Duration::for_work(self.remaining, self.rate) {
            Some(d) => self.settled_at + d,
            None => Time::NEVER,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(remaining: f64, rate: f64, at: f64) -> Slot {
        Slot {
            remaining,
            rate,
            settled_at: Time::from_secs(at),
            generation: 0,
            sched: 0,
            state: ActivityState::Running,
            queued: false,
            waiters: Vec::new(),
            next_free: u32::MAX,
        }
    }

    #[test]
    fn settle_consumes_work() {
        let mut s = slot(100.0, 10.0, 0.0);
        s.settle(Time::from_secs(4.0));
        assert_eq!(s.remaining, 60.0);
        assert_eq!(s.settled_at, Time::from_secs(4.0));
    }

    #[test]
    fn settle_clamps_at_zero() {
        let mut s = slot(10.0, 10.0, 0.0);
        s.settle(Time::from_secs(100.0));
        assert_eq!(s.remaining, 0.0);
    }

    #[test]
    fn eta_at_positive_rate() {
        let s = slot(50.0, 25.0, 1.0);
        assert_eq!(s.eta(), Time::from_secs(3.0));
    }

    #[test]
    fn eta_suspended_is_never() {
        let s = slot(50.0, 0.0, 1.0);
        assert!(s.eta().is_never());
    }

    #[test]
    fn settle_is_exact_under_rate_change_sequence() {
        // 100 units: 2s at 10/s, then 4s at 15/s, then finish at 5/s.
        let mut s = slot(100.0, 10.0, 0.0);
        s.settle(Time::from_secs(2.0));
        assert_eq!(s.remaining, 80.0);
        s.rate = 15.0;
        s.settle(Time::from_secs(6.0));
        assert_eq!(s.remaining, 20.0);
        s.rate = 5.0;
        assert_eq!(s.eta(), Time::from_secs(10.0));
    }

    #[test]
    fn done_activities_do_not_progress() {
        let mut s = slot(100.0, 10.0, 0.0);
        s.state = ActivityState::Done;
        s.settle(Time::from_secs(5.0));
        assert_eq!(s.remaining, 100.0);
    }
}
