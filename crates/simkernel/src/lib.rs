//! Discrete-event simulation kernel for the Time-Independent Trace Replay
//! (TiTR) toolkit.
//!
//! The kernel follows the architecture of flow-level simulators such as
//! SimGrid: simulated work is represented by activity records (see
//! [`activity`])
//! (a quantity of *remaining work* progressing at a *rate*), simulated
//! entities are [`actor::Actor`] state machines scheduled by the
//! [`sim::Sim`] event loop, and all time is the totally ordered [`time::Time`].
//!
//! Design invariants:
//!
//! * **Determinism** — identical inputs produce identical event orderings.
//!   Ties in simulated time are broken by a monotonically increasing
//!   sequence number, and the only randomness is the seedable
//!   [`rng::DetRng`].
//! * **No wall-clock dependence** — nothing in the kernel reads host time.
//! * **Rate changes are exact** — when an activity's rate changes, its
//!   remaining work is settled at the current simulated instant before the
//!   new completion event is scheduled, so resource re-sharing (e.g. a new
//!   network flow joining a link) never loses or duplicates work.
//!
//! Higher layers (the `netmodel`, `smpi`, and `msgsim` crates) build
//! network flows, MPI semantics, and mailbox semantics out of these
//! primitives.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod activity;
pub mod actor;
pub mod kernel;
pub mod obs;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use activity::{ActivityId, ActivityState};
pub use actor::{Actor, ActorId, Status, Wake};
pub use kernel::{replay_sizing, Kernel, KernelStep, IN_FLIGHT_PER_RANK};
pub use queue::{profile_enabled, FelImpl, FelProfile};
pub use rng::DetRng;
pub use sim::{Sim, SimOutcome, SimStep};
pub use time::{Duration, Time};
