//! The top-level simulation driver: owns the kernel, the world, and the
//! actor set, and runs the event loop to quiescence.

use crate::actor::{Actor, ActorId, Status, Wake};
use crate::kernel::{Kernel, KernelStep};
use crate::queue::FelImpl;
use crate::time::Time;

/// Why [`Sim::step_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimStep {
    /// The next pending event lies strictly past the horizon; call again
    /// with a later horizon to continue.
    Horizon,
    /// Nothing remains to run at any time. Terminal: inspect
    /// [`Sim::outcome`] to distinguish completion from deadlock.
    Quiesced,
}

/// Why [`Sim::run`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOutcome {
    /// Every actor finished.
    AllFinished,
    /// No event, timer, or wake remained but some actors were still
    /// blocked: a deadlock. Carries the blocked actor ids (spawn order).
    Deadlock(Vec<ActorId>),
}

impl SimOutcome {
    /// Panics with a descriptive message unless every actor finished.
    pub fn expect_finished(&self) {
        if let SimOutcome::Deadlock(blocked) = self {
            panic!(
                "simulation deadlocked with {} blocked actor(s): {:?}",
                blocked.len(),
                &blocked[..blocked.len().min(16)]
            );
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActorRun {
    Blocked,
    Finished,
    Daemon,
}

/// A complete simulation: kernel + shared world `W` + actors.
pub struct Sim<W> {
    /// The event kernel. Public so that setup code can schedule initial
    /// timers before [`Sim::run`].
    pub kernel: Kernel,
    /// The shared, domain-specific world state.
    pub world: W,
    actors: Vec<Box<dyn Actor<W>>>,
    states: Vec<ActorRun>,
    finish_times: Vec<Time>,
}

impl<W> Sim<W> {
    /// Creates a simulation around `world`.
    pub fn new(world: W) -> Self {
        Self::with_capacity(world, 0, 0)
    }

    /// Creates a simulation around `world` with the kernel's activity slab
    /// and event heap pre-sized (see [`Kernel::with_capacity`]). Runners
    /// that know the rank count and a per-rank in-flight bound should use
    /// this to avoid reallocation during replay.
    pub fn with_capacity(world: W, activities: usize, events: usize) -> Self {
        Self::with_capacity_fel(world, activities, events, FelImpl::default())
    }

    /// [`Sim::with_capacity`] with an explicit future-event-list
    /// implementation (see [`FelImpl`]).
    pub fn with_capacity_fel(world: W, activities: usize, events: usize, fel: FelImpl) -> Self {
        Sim {
            kernel: Kernel::with_capacity_fel(activities, events, fel),
            world,
            actors: Vec::new(),
            states: Vec::new(),
            finish_times: Vec::new(),
        }
    }

    /// Registers an actor; it will receive [`Wake::Start`] when the
    /// simulation runs. Returns its id (dense, spawn order).
    pub fn spawn(&mut self, actor: Box<dyn Actor<W>>) -> ActorId {
        let id = ActorId(u32::try_from(self.actors.len()).expect("too many actors"));
        self.actors.push(actor);
        self.states.push(ActorRun::Blocked);
        self.finish_times.push(Time::NEVER);
        id
    }

    /// Registers a *daemon* actor: a passive service (e.g. a message
    /// transport) that handles wakes forever and is exempt from the
    /// deadlock check — a simulation where only daemons remain blocked is
    /// considered finished.
    pub fn spawn_daemon(&mut self, actor: Box<dyn Actor<W>>) -> ActorId {
        let id = self.spawn(actor);
        self.states[id.as_usize()] = ActorRun::Daemon;
        id
    }

    /// Number of spawned actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Simulated instant at which `actor` finished, or `Time::NEVER` if it
    /// has not (yet) finished.
    pub fn finish_time(&self, actor: ActorId) -> Time {
        self.finish_times[actor.as_usize()]
    }

    /// Finish times of all actors, in spawn order.
    pub fn finish_times(&self) -> &[Time] {
        &self.finish_times
    }

    /// Runs every actor to completion (or deadlock). Returns the outcome;
    /// the final simulated time is `self.kernel.now()`.
    pub fn run(&mut self) -> SimOutcome {
        self.start();
        let step = self.step_until(Time::NEVER);
        debug_assert_eq!(step, SimStep::Quiesced);
        self.outcome()
    }

    /// Delivers the `Wake::Start` wake to every actor at t=0, in spawn
    /// order. Must be called exactly once, before [`Sim::step_until`];
    /// [`Sim::run`] does it implicitly.
    pub fn start(&mut self) {
        for i in 0..self.actors.len() {
            self.step(ActorId(i as u32), Wake::Start);
        }
    }

    /// Advances the simulation until either the next pending event lies
    /// strictly past `horizon` ([`SimStep::Horizon`]) or nothing remains
    /// to run at any time ([`SimStep::Quiesced`]). Quiescence is terminal
    /// regardless of horizon — once returned, later calls with larger
    /// horizons return it again and [`Sim::outcome`] is meaningful (so
    /// deadlock detection works under windowed stepping). The event
    /// delivery order is identical for any horizon schedule: a run split
    /// into windows pops exactly the same events, in the same order, as a
    /// single `step_until(Time::NEVER)`.
    pub fn step_until(&mut self, horizon: Time) -> SimStep {
        loop {
            match self.kernel.next_wake_before(horizon) {
                KernelStep::Wake(actor, wake) => self.step(actor, wake),
                KernelStep::Horizon => return SimStep::Horizon,
                KernelStep::Quiesced => return SimStep::Quiesced,
            }
        }
    }

    /// Classifies the final state once [`Sim::step_until`] has returned
    /// [`SimStep::Quiesced`]: all actors finished, or the still-blocked
    /// ones (a deadlock).
    pub fn outcome(&self) -> SimOutcome {
        let blocked: Vec<ActorId> = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ActorRun::Blocked)
            .map(|(i, _)| ActorId(i as u32))
            .collect();
        if blocked.is_empty() {
            SimOutcome::AllFinished
        } else {
            SimOutcome::Deadlock(blocked)
        }
    }

    fn step(&mut self, id: ActorId, wake: Wake) {
        let idx = id.as_usize();
        if self.states[idx] == ActorRun::Finished {
            // Spurious wake after finish (e.g. a broadcast completion the
            // actor no longer cares about) — ignore.
            return;
        }
        let status = self.actors[idx].resume(&mut self.kernel, &mut self.world, wake);
        if status == Status::Finished && self.states[idx] != ActorRun::Daemon {
            self.states[idx] = ActorRun::Finished;
            self.finish_times[idx] = self.kernel.now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    /// Counts down `n` one-second timers then finishes.
    struct TickActor {
        remaining: u32,
        me: ActorId,
        log: Vec<f64>,
    }

    impl Actor<Vec<String>> for TickActor {
        fn resume(&mut self, k: &mut Kernel, world: &mut Vec<String>, wake: Wake) -> Status {
            match wake {
                Wake::Start => {}
                Wake::Timer(_) => {
                    self.remaining -= 1;
                    self.log.push(k.now().as_secs());
                }
                other => panic!("unexpected wake {other:?}"),
            }
            if self.remaining == 0 {
                world.push(format!("actor {} done at {}", self.me.0, k.now()));
                return Status::Finished;
            }
            k.set_timer(self.me, Duration::from_secs(1.0), 0);
            Status::Blocked
        }
    }

    #[test]
    fn timers_drive_actors_to_completion() {
        let mut sim: Sim<Vec<String>> = Sim::new(Vec::new());
        let a = sim.spawn(Box::new(TickActor {
            remaining: 3,
            me: ActorId(0),
            log: vec![],
        }));
        let b = sim.spawn(Box::new(TickActor {
            remaining: 5,
            me: ActorId(1),
            log: vec![],
        }));
        let outcome = sim.run();
        assert_eq!(outcome, SimOutcome::AllFinished);
        assert_eq!(sim.kernel.now(), Time::from_secs(5.0));
        assert_eq!(sim.finish_time(a), Time::from_secs(3.0));
        assert_eq!(sim.finish_time(b), Time::from_secs(5.0));
        assert_eq!(sim.world.len(), 2);
    }

    /// Blocks forever (never registers a wake-up source after start).
    struct StuckActor;

    impl Actor<()> for StuckActor {
        fn resume(&mut self, _: &mut Kernel, _: &mut (), _: Wake) -> Status {
            Status::Blocked
        }
    }

    #[test]
    fn deadlock_is_reported() {
        let mut sim: Sim<()> = Sim::new(());
        let id = sim.spawn(Box::new(StuckActor));
        match sim.run() {
            SimOutcome::Deadlock(blocked) => assert_eq!(blocked, vec![id]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn expect_finished_panics_on_deadlock() {
        SimOutcome::Deadlock(vec![ActorId(0)]).expect_finished();
    }

    /// Two actors sharing a compute resource via activities; checks that
    /// the world sees deterministic interleaving.
    struct ComputeActor {
        me: ActorId,
        work: f64,
        rate: f64,
        started: bool,
    }

    impl Actor<Vec<u32>> for ComputeActor {
        fn resume(&mut self, k: &mut Kernel, world: &mut Vec<u32>, wake: Wake) -> Status {
            match wake {
                Wake::Start => {
                    let act = k.start_activity(self.work, self.rate);
                    k.subscribe(act, self.me);
                    self.started = true;
                    Status::Blocked
                }
                Wake::Activity(_) => {
                    world.push(self.me.0);
                    Status::Finished
                }
                other => panic!("unexpected wake {other:?}"),
            }
        }
    }

    #[test]
    fn completion_order_follows_work() {
        let mut sim: Sim<Vec<u32>> = Sim::new(Vec::new());
        for (i, work) in [30.0, 10.0, 20.0].iter().enumerate() {
            sim.spawn(Box::new(ComputeActor {
                me: ActorId(i as u32),
                work: *work,
                rate: 10.0,
                started: false,
            }));
        }
        sim.run().expect_finished();
        assert_eq!(sim.world, vec![1, 2, 0]);
        assert_eq!(sim.kernel.now(), Time::from_secs(3.0));
    }

    /// Windowed stepping delivers exactly the events a monolithic run
    /// does: same world log, same clock, same `events_processed`.
    #[test]
    fn windowed_stepping_matches_monolithic_run() {
        let build = || {
            let mut sim: Sim<Vec<String>> = Sim::new(Vec::new());
            for i in 0..3u32 {
                sim.spawn(Box::new(TickActor {
                    remaining: i + 2,
                    me: ActorId(i),
                    log: vec![],
                }));
            }
            sim
        };
        let mut whole = build();
        whole.run().expect_finished();

        let mut windowed = build();
        windowed.start();
        let mut k = 1u64;
        loop {
            // Deliberately awkward window (1.3 s) so horizons fall both
            // between and exactly on event times over the run.
            let horizon = Time::from_secs(1.3 * k as f64);
            match windowed.step_until(horizon) {
                SimStep::Horizon => k += 1,
                SimStep::Quiesced => break,
            }
        }
        windowed.outcome().expect_finished();
        assert_eq!(windowed.world, whole.world);
        assert_eq!(windowed.kernel.now(), whole.kernel.now());
        assert_eq!(
            windowed.kernel.events_processed(),
            whole.kernel.events_processed()
        );
        assert_eq!(windowed.finish_times(), whole.finish_times());
    }

    /// Quiescence is terminal: a deadlocked sim reports `Quiesced` from
    /// any horizon, and `outcome` identifies the blocked actors.
    #[test]
    fn windowed_stepping_detects_deadlock() {
        let mut sim: Sim<()> = Sim::new(());
        let id = sim.spawn(Box::new(StuckActor));
        sim.start();
        assert_eq!(sim.step_until(Time::from_secs(1.0)), SimStep::Quiesced);
        assert_eq!(sim.step_until(Time::NEVER), SimStep::Quiesced);
        assert_eq!(sim.outcome(), SimOutcome::Deadlock(vec![id]));
    }

    #[test]
    fn determinism_two_identical_runs() {
        let run = || {
            let mut sim: Sim<Vec<u32>> = Sim::new(Vec::new());
            for i in 0..8u32 {
                sim.spawn(Box::new(ComputeActor {
                    me: ActorId(i),
                    work: ((i * 7 + 3) % 5 + 1) as f64,
                    rate: 2.0,
                    started: false,
                }));
            }
            sim.run().expect_finished();
            (sim.world.clone(), sim.kernel.now())
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod daemon_tests {
    use super::*;

    struct Idle;
    impl Actor<()> for Idle {
        fn resume(&mut self, _: &mut Kernel, _: &mut (), _: Wake) -> Status {
            Status::Blocked
        }
    }

    struct OneShot;
    impl Actor<()> for OneShot {
        fn resume(&mut self, _: &mut Kernel, _: &mut (), _: Wake) -> Status {
            Status::Finished
        }
    }

    #[test]
    fn blocked_daemon_is_not_a_deadlock() {
        let mut sim: Sim<()> = Sim::new(());
        sim.spawn_daemon(Box::new(Idle));
        sim.spawn(Box::new(OneShot));
        assert_eq!(sim.run(), SimOutcome::AllFinished);
    }

    #[test]
    fn blocked_regular_actor_still_deadlocks() {
        let mut sim: Sim<()> = Sim::new(());
        sim.spawn_daemon(Box::new(Idle));
        let stuck = sim.spawn(Box::new(Idle));
        match sim.run() {
            SimOutcome::Deadlock(b) => assert_eq!(b, vec![stuck]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}
