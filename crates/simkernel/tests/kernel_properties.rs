//! Property tests of the kernel's central invariant: work accounting is
//! exact under arbitrary interleavings of rate changes, suspensions and
//! completions.

use proptest::prelude::*;
use simkernel::{ActorId, Duration, Kernel};

/// A random schedule: an activity with `work` units, subjected to `ops`
/// rate changes at increasing instants, must complete exactly when the
/// integral of its rate reaches `work`.
#[derive(Debug, Clone)]
struct RateStep {
    delay: f64,
    rate: f64,
}

fn arb_schedule() -> impl Strategy<Value = (f64, Vec<RateStep>)> {
    (
        1.0f64..1e6,
        proptest::collection::vec(
            (1e-3f64..10.0, 0.0f64..1e4).prop_map(|(delay, rate)| RateStep { delay, rate }),
            0..20,
        ),
    )
}

/// Replays the same schedule analytically.
fn analytic_completion(work: f64, initial_rate: f64, steps: &[RateStep]) -> Option<f64> {
    let mut t = 0.0;
    let mut remaining = work;
    let mut rate = initial_rate;
    for s in steps {
        let done = remaining.min(rate * s.delay);
        if (remaining - done) <= 1e-12 * work && rate > 0.0 {
            return Some(t + remaining / rate);
        }
        remaining -= done;
        t += s.delay;
        rate = s.rate;
    }
    if rate > 0.0 {
        Some(t + remaining / rate)
    } else {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn completion_matches_analytic_integral((work, steps) in arb_schedule(), initial_rate in 1.0f64..1e4) {
        let mut k = Kernel::new();
        let act = k.start_activity(work, initial_rate);
        k.subscribe(act, ActorId(0));
        // Interleave timers driving the rate changes.
        let mut at = 0.0;
        for (i, s) in steps.iter().enumerate() {
            // Timer for the cumulative instant of this step.
            at += s.delay;
            k.set_timer(ActorId(1), Duration::from_secs(at), i as u64);
        }
        let mut applied = 0usize;
        let mut completed_at: Option<f64> = None;
        while let Some((actor, wake)) = k.next_wake() {
            match (actor, wake) {
                (ActorId(0), simkernel::Wake::Activity(_)) => {
                    completed_at = Some(k.now().as_secs());
                }
                (ActorId(1), simkernel::Wake::Timer(i)) => {
                    // Apply the rate change scheduled at this instant —
                    // unless the activity already completed.
                    prop_assert_eq!(i as usize, applied);
                    k.set_rate(act, steps[applied].rate);
                    applied += 1;
                }
                other => prop_assert!(false, "unexpected wake {other:?}"),
            }
        }
        let expect = analytic_completion(work, initial_rate, &steps);
        match (completed_at, expect) {
            (Some(got), Some(want)) => {
                prop_assert!(
                    (got - want).abs() <= 1e-6 * want.max(1.0),
                    "completed at {got}, analytic {want}"
                );
            }
            (None, None) => {} // suspended forever: consistent
            (got, want) => prop_assert!(false, "kernel {got:?} vs analytic {want:?}"),
        }
    }

    /// Starting N independent activities, the completion order matches
    /// the sort order of work/rate, and the final clock is their max.
    #[test]
    fn independent_activities_complete_in_duration_order(
        jobs in proptest::collection::vec((1.0f64..1e5, 1.0f64..1e3), 1..40),
    ) {
        let mut k = Kernel::new();
        let mut expected: Vec<(f64, usize)> = Vec::new();
        for (i, (work, rate)) in jobs.iter().enumerate() {
            let a = k.start_activity(*work, *rate);
            k.subscribe(a, ActorId(i as u32));
            expected.push((work / rate, i));
        }
        expected.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut order = Vec::new();
        let mut last_t = 0.0;
        while let Some((actor, _)) = k.next_wake() {
            prop_assert!(k.now().as_secs() >= last_t);
            last_t = k.now().as_secs();
            order.push(actor.as_usize());
        }
        let expected_order: Vec<usize> = expected.iter().map(|(_, i)| *i).collect();
        prop_assert_eq!(order, expected_order);
        let max_dur = expected.last().unwrap().0;
        prop_assert!((last_t - max_dur).abs() <= 1e-9 * max_dur.max(1.0));
    }
}
